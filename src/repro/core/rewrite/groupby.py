"""Group-by / join commutation (Section 4.1.3).

Two transformations from the paper's Figure 4:

* **Invariant pushdown** (Fig. 4b): when the join is a foreign-key join
  into a relation whose key the group-by columns cover, and the
  aggregated columns come from the group-by side, the entire group-by
  moves below the join -- the join can only eliminate whole partitions,
  never change them.
* **Staged aggregation** (Fig. 4c): otherwise, when every aggregate is
  decomposable, an *introduced* partial group-by runs below the join and
  the original group-by above it combines the partials (e.g. total sales
  per product below, summed per division above).

Both are applied cost-based when an estimator is available, as the paper
insists transformations must be.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.catalog.catalog import Catalog
from repro.expr.aggregates import AggFunc, AggregateCall
from repro.expr.expressions import (
    ColumnRef,
    Comparison,
    ComparisonOp,
    conjuncts,
)
from repro.logical.operators import (
    Filter,
    Get,
    GroupBy,
    Join,
    JoinKind,
    LogicalOp,
    Project,
    ProjectItem,
)
from repro.core.rewrite.engine import RewriteContext, RewriteRule


def _base_get(op: LogicalOp) -> Optional[Get]:
    """The single base-table access under an optional filter chain."""
    while isinstance(op, Filter):
        op = op.child
    return op if isinstance(op, Get) else None


def _equi_pairs(
    join: Join, left_aliases: Set[str], right_aliases: Set[str]
) -> Optional[List[Tuple[ColumnRef, ColumnRef]]]:
    """(left_col, right_col) pairs when the predicate is purely equijoin."""
    pairs: List[Tuple[ColumnRef, ColumnRef]] = []
    for conjunct in conjuncts(join.predicate):
        if not (
            isinstance(conjunct, Comparison)
            and conjunct.op is ComparisonOp.EQ
            and isinstance(conjunct.left, ColumnRef)
            and isinstance(conjunct.right, ColumnRef)
        ):
            return None
        l, r = conjunct.left, conjunct.right
        if l.table in left_aliases and r.table in right_aliases:
            pairs.append((l, r))
        elif r.table in left_aliases and l.table in right_aliases:
            pairs.append((r, l))
        else:
            return None
    return pairs if pairs else None


class GroupByPushdownRule(RewriteRule):
    """Push a GroupBy below an inner join when provably invariant (Fig 4b).

    Args:
        require_benefit: when True (default) and an estimator is present,
            fire only if grouping below the join reduces the stream; set
            False to always fire when legal (used by ablation benches).
    """

    name = "groupby-pushdown"

    def __init__(self, require_benefit: bool = True) -> None:
        self.require_benefit = require_benefit

    def apply(self, op: LogicalOp, context: RewriteContext) -> Optional[LogicalOp]:
        if not (isinstance(op, GroupBy) and isinstance(op.child, Join)):
            return None
        join = op.child
        if join.kind is not JoinKind.INNER:
            return None
        for left, right in ((join.left, join.right), (join.right, join.left)):
            rewritten = self._try_side(op, join, left, right, context)
            if rewritten is not None:
                return rewritten
        return None

    def _try_side(
        self,
        group: GroupBy,
        join: Join,
        left: LogicalOp,
        right: LogicalOp,
        context: RewriteContext,
    ) -> Optional[LogicalOp]:
        left_aliases = set(left.tables())
        right_aliases = set(right.tables())
        pairs = _equi_pairs(join, left_aliases, right_aliases)
        if pairs is None:
            return None
        # (a) The join must be a foreign-key join: the right side is a base
        # relation and the join columns cover its primary key.
        base = _base_get(right)
        if base is None or not context.catalog.has_table(base.table):
            return None
        right_cols = [r.column for _l, r in pairs]
        if not context.catalog.schema(base.table).is_key(right_cols):
            return None
        # (b) Aggregated columns come from the left side only.
        for call in group.aggregates:
            if call.tables() and not call.tables() <= left_aliases:
                return None
        # (c) Group keys are left-side columns covering the foreign key.
        key_set = set(group.keys)
        if not all(key.table in left_aliases for key in group.keys):
            return None
        if not {l for l, _r in pairs} <= key_set:
            return None
        if self.require_benefit and context.estimator is not None:
            input_rows = context.estimator.estimate(left)
            groups = context.estimator.group_count(group.keys, input_rows)
            if groups >= input_rows:
                return None
        pushed = GroupBy(left, group.keys, group.aggregates, group.output_alias)
        new_join = Join(pushed, right, join.predicate, JoinKind.INNER)
        # Keep the original output schema: keys then aggregate columns.
        items = [
            ProjectItem(key, key.column, alias=key.table) for key in group.keys
        ]
        items.extend(
            ProjectItem(
                ColumnRef(group.output_alias, call.alias),
                call.alias,
                alias=group.output_alias,
            )
            for call in group.aggregates
        )
        return Project(new_join, items)


_STAGEABLE = {AggFunc.COUNT, AggFunc.SUM, AggFunc.MIN, AggFunc.MAX}

_COMBINER = {
    AggFunc.COUNT: AggFunc.SUM,
    AggFunc.SUM: AggFunc.SUM,
    AggFunc.MIN: AggFunc.MIN,
    AggFunc.MAX: AggFunc.MAX,
}


class StagedAggregationRule(RewriteRule):
    """Introduce a partial GroupBy below a join, recombined above (Fig 4c).

    Fires on GroupBy(Join) when every aggregate is COUNT/SUM/MIN/MAX
    without DISTINCT and aggregates only one join side.  The lower
    group-by keys are the original keys on that side plus the side's
    join columns, so the join and the final combination stay correct.
    """

    name = "staged-aggregation"

    def __init__(self, require_benefit: bool = True) -> None:
        self.require_benefit = require_benefit

    def apply(self, op: LogicalOp, context: RewriteContext) -> Optional[LogicalOp]:
        if not (isinstance(op, GroupBy) and isinstance(op.child, Join)):
            return None
        join = op.child
        if join.kind is not JoinKind.INNER:
            return None
        if not op.aggregates or any(
            call.func not in _STAGEABLE or call.distinct or call.is_star
            for call in op.aggregates
        ):
            return None
        left_aliases = set(join.left.tables())
        right_aliases = set(join.right.tables())
        pairs = _equi_pairs(join, left_aliases, right_aliases)
        if pairs is None:
            return None
        agg_tables: Set[str] = set()
        for call in op.aggregates:
            agg_tables |= set(call.tables())
        if agg_tables <= left_aliases:
            side, other = join.left, join.right
            side_aliases = left_aliases
            side_join_cols = [l for l, _r in pairs]
        elif agg_tables <= right_aliases:
            side, other = join.right, join.left
            side_aliases = right_aliases
            side_join_cols = [r for _l, r in pairs]
        else:
            return None
        lower_keys: List[ColumnRef] = []
        for key in op.keys:
            if key.table in side_aliases and key not in lower_keys:
                lower_keys.append(key)
        for ref in side_join_cols:
            if ref not in lower_keys:
                lower_keys.append(ref)
        if not lower_keys:
            return None
        if self.require_benefit and context.estimator is not None:
            input_rows = context.estimator.estimate(side)
            groups = context.estimator.group_count(lower_keys, input_rows)
            if groups >= input_rows * 0.5:
                return None
        partial_alias = f"{op.output_alias}_p"
        partial_calls = [
            AggregateCall(call.func, call.arg, alias=f"p_{i}")
            for i, call in enumerate(op.aggregates)
        ]
        lower = GroupBy(side, lower_keys, partial_calls, output_alias=partial_alias)
        if side is join.left:
            new_join = Join(lower, other, join.predicate, JoinKind.INNER)
        else:
            new_join = Join(other, lower, join.predicate, JoinKind.INNER)
        final_calls = [
            AggregateCall(
                _COMBINER[call.func],
                ColumnRef(partial_alias, f"p_{i}"),
                alias=call.alias,
            )
            for i, call in enumerate(op.aggregates)
        ]
        return GroupBy(new_join, op.keys, final_calls, output_alias=op.output_alias)


DEFAULT_GROUPBY_RULES = (GroupByPushdownRule(), StagedAggregationRule())
