"""Predicate move-around ([36], mentioned in Section 4.3).

The degenerate-but-useful cousin of magic sets: instead of shipping
*results* between query blocks, ship *predicates*.  Within one block
this takes the form of transitive inference -- from ``R.x = S.x`` and
``R.x < 10`` derive ``S.x < 10`` -- which gives the other relation a
local predicate the optimizer can push into its scan.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.expr.expressions import (
    ColumnRef,
    Comparison,
    ComparisonOp,
    Expr,
    Literal,
    conjoin,
    conjuncts,
)
from repro.logical.operators import Filter, Join, JoinKind, LogicalOp
from repro.core.rewrite.engine import RewriteContext, RewriteRule

_RANGE_OPS = (
    ComparisonOp.EQ,
    ComparisonOp.LT,
    ComparisonOp.LE,
    ComparisonOp.GT,
    ComparisonOp.GE,
)


def _equalities(parts: List[Expr]) -> List[Tuple[ColumnRef, ColumnRef]]:
    pairs = []
    for conjunct in parts:
        if (
            isinstance(conjunct, Comparison)
            and conjunct.op is ComparisonOp.EQ
            and isinstance(conjunct.left, ColumnRef)
            and isinstance(conjunct.right, ColumnRef)
        ):
            pairs.append((conjunct.left, conjunct.right))
    return pairs


def _constant_bounds(parts: List[Expr]) -> List[Tuple[ColumnRef, ComparisonOp, Literal]]:
    bounds = []
    for conjunct in parts:
        if not isinstance(conjunct, Comparison):
            continue
        left, right, op = conjunct.left, conjunct.right, conjunct.op
        if isinstance(right, ColumnRef) and isinstance(left, Literal):
            left, right, op = right, left, op.flip()
        if (
            isinstance(left, ColumnRef)
            and isinstance(right, Literal)
            and op in _RANGE_OPS
            and right.value is not None
        ):
            bounds.append((left, op, right))
    return bounds


def infer_transitive(parts: List[Expr]) -> List[Expr]:
    """Conjuncts implied by equality + constant-bound conjuncts, minus
    the ones already present."""
    equalities = _equalities(parts)
    bounds = _constant_bounds(parts)
    existing = set(parts)
    derived: List[Expr] = []
    # Union-find over equated columns.
    parent = {}

    def find(ref):
        parent.setdefault(ref, ref)
        while parent[ref] != ref:
            parent[ref] = parent[parent[ref]]
            ref = parent[ref]
        return ref

    for left, right in equalities:
        root_left, root_right = find(left), find(right)
        if root_left != root_right:
            parent[root_left] = root_right
    groups: dict = {}
    for ref in parent:
        groups.setdefault(find(ref), set()).add(ref)
    for column, op, literal in bounds:
        if column not in parent:
            continue
        for peer in groups[find(column)]:
            if peer == column:
                continue
            candidate = Comparison(op, peer, literal)
            if candidate not in existing and candidate not in derived:
                derived.append(candidate)
    return derived


class PredicateMoveAroundRule(RewriteRule):
    """Add transitively implied constant predicates at Filter nodes over
    inner-join trees, enabling pushdown to the other relations."""

    name = "predicate-move-around"

    def apply(self, op: LogicalOp, context: RewriteContext) -> Optional[LogicalOp]:
        if not isinstance(op, Filter):
            return None
        # Only sound over inner joins: an implied predicate on the
        # NULL-padded side of an outer join would change padding.
        if _has_outer_join_below(op.child):
            return None
        parts = list(conjuncts(op.predicate))
        # Include equalities sitting in inner-join predicates below.
        join_parts = _inner_join_conjuncts(op.child)
        derived = infer_transitive(parts + join_parts)
        # Keep only genuinely new conjuncts w.r.t. everything visible.
        visible = set(parts) | set(join_parts)
        derived = [conjunct for conjunct in derived if conjunct not in visible]
        if not derived:
            return None
        return Filter(op.child, conjoin(parts + derived))


def _has_outer_join_below(op: LogicalOp) -> bool:
    if isinstance(op, Join) and op.kind is JoinKind.LEFT_OUTER:
        return True
    return any(_has_outer_join_below(child) for child in op.children())


def _inner_join_conjuncts(op: LogicalOp) -> List[Expr]:
    parts: List[Expr] = []
    if isinstance(op, Join) and op.kind is JoinKind.INNER and op.predicate is not None:
        parts.extend(conjuncts(op.predicate))
    for child in op.children():
        if isinstance(op, Join) and op.kind not in (JoinKind.INNER, JoinKind.CROSS):
            break
        parts.extend(_inner_join_conjuncts(child))
    return parts
