"""Subquery unnesting / decorrelation (Sections 4.2.2 and 4.3).

The lowering pass leaves nested subqueries as
:class:`~repro.logical.operators.Apply` operators with tuple-iteration
semantics.  The rules here remove them:

* ``DecorrelateSemiApplyRule`` -- Kim/Dayal flattening of IN / EXISTS
  (and their negations) into semi/anti joins, by pulling the correlated
  predicates up as join predicates.
* ``DecorrelateScalarAggApplyRule`` -- the aggregate case: the subquery
  becomes a LEFT OUTER JOIN followed by a GROUP BY above it, exactly the
  paper's Dept/COUNT example, preserving empty-group and NULL semantics.
* ``UncorrelatedScalarApplyRule`` -- a scalar subquery with no outer
  references is evaluated once and cross-joined.
* :func:`magic_decorrelate_scalar` -- the magic-sets/semijoin variant of
  Section 4.3 that restricts the subquery's computation to the bindings
  the outer block actually produces.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.catalog.catalog import Catalog
from repro.errors import RewriteError
from repro.expr.aggregates import AggFunc, AggregateCall
from repro.expr.expressions import (
    ColumnRef,
    Comparison,
    ComparisonOp,
    Expr,
    conjoin,
    conjuncts,
)
from repro.logical.operators import (
    Apply,
    Distinct,
    Filter,
    Get,
    GroupBy,
    Join,
    JoinKind,
    Limit,
    LogicalOp,
    Project,
    ProjectItem,
    Sort,
    Union,
    walk,
)
from repro.core.rewrite.engine import RewriteContext, RewriteRule


# ----------------------------------------------------------------------
# Scope analysis helpers
# ----------------------------------------------------------------------
def own_aliases(op: LogicalOp) -> Set[str]:
    """Aliases a subtree itself produces (tables, projections, group outputs)."""
    result: Set[str] = set()
    for node in walk(op):
        if isinstance(node, Get):
            result.add(node.alias)
        elif isinstance(node, Project):
            result.update(item.alias for item in node.items)
        elif isinstance(node, GroupBy):
            result.add(node.output_alias)
        elif isinstance(node, Apply):
            result.add(node.scalar_alias)
    return result


def _node_expressions(node: LogicalOp) -> List[Expr]:
    if isinstance(node, Filter):
        return [node.predicate]
    if isinstance(node, Join) and node.predicate is not None:
        return [node.predicate]
    if isinstance(node, Project):
        return [item.expr for item in node.items]
    if isinstance(node, GroupBy):
        exprs: List[Expr] = list(node.keys)
        exprs.extend(call.arg for call in node.aggregates if call.arg is not None)
        return exprs
    if isinstance(node, Sort):
        return [ref for ref, _asc in node.keys]
    return []


def has_outer_refs(op: LogicalOp, own: Set[str]) -> bool:
    """Whether any expression in the subtree references an alias not
    produced inside it."""
    for node in walk(op):
        for expr in _node_expressions(node):
            if any(ref.table not in own for ref in expr.columns()):
                return True
    return False


def strip_correlated(
    op: LogicalOp, own: Set[str], can_strip: bool = True
) -> Tuple[LogicalOp, List[Expr]]:
    """Remove correlated conjuncts from strippable Filter nodes.

    Stripping stops below grouping/distinct/apply boundaries, where
    removing a predicate would change group contents (the hard aggregate
    case handled by the dedicated rules instead).

    Returns the rebuilt subtree and the extracted conjuncts.
    """
    extracted: List[Expr] = []
    if isinstance(op, Filter) and can_strip:
        child, below = strip_correlated(op.child, own, can_strip)
        extracted.extend(below)
        keep: List[Expr] = []
        for conjunct in conjuncts(op.predicate):
            if any(ref.table not in own for ref in conjunct.columns()):
                extracted.append(conjunct)
            else:
                keep.append(conjunct)
        remaining = conjoin(keep)
        if remaining is None:
            return child, extracted
        return Filter(child, remaining), extracted
    # A Limit is also a fence: removing a predicate from beneath a row
    # quota changes which rows fill it.
    blocking = isinstance(op, (GroupBy, Distinct, Apply, Union, Limit))
    children = op.children()
    if not children:
        return op, extracted
    new_children = []
    changed = False
    for child in children:
        new_child, below = strip_correlated(
            child, own, can_strip and not blocking
        )
        extracted.extend(below)
        changed = changed or (new_child is not child)
        new_children.append(new_child)
    if changed:
        return op.with_children(new_children), extracted
    return op, extracted


def preserves_row_uniqueness(op: LogicalOp, catalog: Catalog) -> bool:
    """Whether the subtree's output rows are guaranteed duplicate-free.

    True for trees of scans whose tables all have primary keys, combined
    by filters and joins that keep every column (so the concatenated
    keys remain in the output).  Grouping and DISTINCT outputs are also
    unique.  Projection may drop key columns, so it is rejected.
    """
    if isinstance(op, Get):
        if not catalog.has_table(op.table):
            return False
        return bool(catalog.schema(op.table).primary_key)
    if isinstance(op, (GroupBy, Distinct)):
        return True
    if isinstance(op, Filter):
        return preserves_row_uniqueness(op.child, catalog)
    if isinstance(op, Join):
        if op.kind in (JoinKind.SEMI, JoinKind.ANTI):
            return preserves_row_uniqueness(op.left, catalog)
        return preserves_row_uniqueness(
            op.left, catalog
        ) and preserves_row_uniqueness(op.right, catalog)
    if isinstance(op, Apply):
        return preserves_row_uniqueness(op.left, catalog)
    return False


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------
def widen_for_refs(op: LogicalOp, refs: List[ColumnRef]) -> Optional[LogicalOp]:
    """Ensure a subtree's output exposes the given columns, widening
    projections when needed.

    Decorrelation pulls predicates above the subquery's projection; any
    inner column those predicates mention must survive to the join.  For
    semi/anti joins this is always safe (the right side is invisible
    above).  Returns the (possibly rebuilt) subtree, or None when the
    columns cannot be exposed (e.g. hidden below a GroupBy).
    """
    schema = op.output_schema()
    slot_set = set(schema.slots)
    missing = [ref for ref in refs if (ref.table, ref.column) not in slot_set]
    if not missing:
        return op
    if isinstance(op, Project):
        child = widen_for_refs(op.child, missing)
        if child is None:
            return None
        extra = [
            ProjectItem(ref, ref.column, alias=ref.table)
            for ref in missing
        ]
        return Project(child, tuple(op.items) + tuple(extra))
    if isinstance(op, Filter):
        child = widen_for_refs(op.child, missing)
        if child is None:
            return None
        return Filter(child, op.predicate) if child is not op.child else op
    return None


class DecorrelateSemiApplyRule(RewriteRule):
    """Apply[semi|anti] -> Join[SEMI|ANTI] when the correlation lives in
    strippable filters (the Kim [35] / Dayal [13] flattening)."""

    name = "decorrelate-semi-apply"

    def apply(self, op: LogicalOp, context: RewriteContext) -> Optional[LogicalOp]:
        if not isinstance(op, Apply) or op.kind not in ("semi", "anti"):
            return None
        own = own_aliases(op.right)
        stripped, extracted = strip_correlated(op.right, own)
        if has_outer_refs(stripped, own):
            return None
        left_schema = op.left.output_schema()
        needed_own: List[ColumnRef] = []
        for conjunct in extracted:
            for ref in conjunct.columns():
                if ref.table in own:
                    if ref not in needed_own:
                        needed_own.append(ref)
                elif not left_schema.has(ref):
                    return None  # references an even-more-outer block
        widened = widen_for_refs(stripped, needed_own)
        if widened is None:
            return None
        kind = JoinKind.SEMI if op.kind == "semi" else JoinKind.ANTI
        return Join(op.left, widened, conjoin(extracted), kind)


def _parse_scalar_agg(
    right: LogicalOp,
) -> Optional[Tuple[LogicalOp, AggregateCall, str]]:
    """Recognize ``[Project] -> GroupBy(no keys, one aggregate) -> core``.

    Returns (core, aggregate, group_output_alias) or None.
    """
    node = right
    if isinstance(node, Project):
        if len(node.items) != 1 or not isinstance(node.items[0].expr, ColumnRef):
            return None
        node = node.child
    if not isinstance(node, GroupBy):
        return None
    if node.keys or len(node.aggregates) != 1:
        return None
    return node.child, node.aggregates[0], node.output_alias


class DecorrelateScalarAggApplyRule(RewriteRule):
    """Apply[scalar] over a correlated single-aggregate block becomes
    LEFT OUTER JOIN + GROUP BY (Section 4.2.2's aggregate case).

    Conditions checked:
      * every correlated conjunct is ``outer_expr = inner_column``;
      * the outer side's rows are provably duplicate-free (so grouping
        on them is faithful);
      * COUNT(*) is re-targeted to a correlation column, which is
        non-NULL exactly on joined (non-padded) rows.
    """

    name = "decorrelate-scalar-agg-apply"

    def apply(self, op: LogicalOp, context: RewriteContext) -> Optional[LogicalOp]:
        if not isinstance(op, Apply) or op.kind != "scalar":
            return None
        parsed = _parse_scalar_agg(op.right)
        if parsed is None:
            return None
        core, aggregate, _group_alias = parsed
        own = own_aliases(core)
        stripped, extracted = strip_correlated(core, own)
        if not extracted or has_outer_refs(stripped, own):
            return None
        left_schema = op.left.output_schema()
        pairs: List[Tuple[Expr, ColumnRef]] = []
        for conjunct in extracted:
            pair = _as_corr_equality(conjunct, own, left_schema)
            if pair is None:
                return None
            pairs.append(pair)
        if not preserves_row_uniqueness(op.left, context.catalog):
            return None
        new_agg = aggregate
        if aggregate.is_star:
            new_agg = AggregateCall(
                AggFunc.COUNT, pairs[0][1], alias=op.scalar_name
            )
        else:
            new_agg = AggregateCall(
                aggregate.func,
                aggregate.arg,
                distinct=aggregate.distinct,
                alias=op.scalar_name,
            )
        join_predicate = conjoin(
            Comparison(ComparisonOp.EQ, outer, inner) for outer, inner in pairs
        )
        outer_join = Join(op.left, stripped, join_predicate, JoinKind.LEFT_OUTER)
        keys = [ColumnRef(alias, column) for alias, column in left_schema.slots]
        return GroupBy(outer_join, keys, [new_agg], output_alias=op.scalar_alias)


def _as_corr_equality(
    conjunct: Expr, own: Set[str], left_schema
) -> Optional[Tuple[Expr, ColumnRef]]:
    if not (isinstance(conjunct, Comparison) and conjunct.op is ComparisonOp.EQ):
        return None
    left, right = conjunct.left, conjunct.right
    for outer, inner in ((left, right), (right, left)):
        if (
            isinstance(inner, ColumnRef)
            and inner.table in own
            and outer.columns()
            and all(
                ref.table not in own and left_schema.has(ref)
                for ref in outer.columns()
            )
        ):
            return outer, inner
    return None


class UncorrelatedScalarApplyRule(RewriteRule):
    """A scalar subquery with no outer references runs once and is
    cross-joined (the "obvious optimization" of Section 4.2.2)."""

    name = "uncorrelated-scalar-apply"

    def apply(self, op: LogicalOp, context: RewriteContext) -> Optional[LogicalOp]:
        if not isinstance(op, Apply) or op.kind != "scalar":
            return None
        own = own_aliases(op.right)
        if has_outer_refs(op.right, own):
            return None
        parsed = _parse_scalar_agg(op.right)
        if parsed is None:
            return None  # single-row guarantee comes from the no-keys GroupBy
        slot_alias, slot_name = op.right.output_schema().slots[0]
        renamed = Project(
            op.right,
            [
                ProjectItem(
                    ColumnRef(slot_alias, slot_name),
                    op.scalar_name,
                    op.scalar_alias,
                )
            ],
        )
        return Join(op.left, renamed, None, JoinKind.CROSS)


DEFAULT_UNNESTING_RULES = (
    UncorrelatedScalarApplyRule(),
    DecorrelateSemiApplyRule(),
    DecorrelateScalarAggApplyRule(),
)


# ----------------------------------------------------------------------
# Magic / semijoin restriction (Section 4.3)
# ----------------------------------------------------------------------
def magic_decorrelate_scalar(
    op: Apply, catalog: Catalog, magic_alias: str = "_magic"
) -> LogicalOp:
    """The magic-sets variant of scalar-aggregate decorrelation.

    Instead of computing the subquery over the whole inner relation and
    outer-joining (the plain decorrelation), the outer block's relevant
    bindings are collected first (``Distinct(Project(L, corr))``), the
    inner aggregation is computed only for those bindings, and the result
    joins back to the outer block -- the paper's DepAvgSal rewrite.

    Restrictions: the aggregate must not be COUNT (an empty group yields
    NULL here but 0 under tuple iteration), and the same correlated
    equality shape as the plain rule is required.

    Raises:
        RewriteError: when the pattern does not apply.
    """
    if not isinstance(op, Apply) or op.kind != "scalar":
        raise RewriteError("magic decorrelation expects a scalar Apply")
    parsed = _parse_scalar_agg(op.right)
    if parsed is None:
        raise RewriteError("inner block is not a single-aggregate query")
    core, aggregate, _group_alias = parsed
    if aggregate.func is AggFunc.COUNT:
        raise RewriteError("magic decorrelation does not preserve COUNT semantics")
    own = own_aliases(core)
    stripped, extracted = strip_correlated(core, own)
    if not extracted or has_outer_refs(stripped, own):
        raise RewriteError("inner block is not cleanly correlated")
    left_schema = op.left.output_schema()
    pairs: List[Tuple[Expr, ColumnRef]] = []
    for conjunct in extracted:
        pair = _as_corr_equality(conjunct, own, left_schema)
        if pair is None:
            raise RewriteError(f"unsupported correlated predicate {conjunct.to_sql()}")
        pairs.append(pair)

    # 1. The magic (filter) set: distinct relevant bindings from the outer.
    magic_items = [
        ProjectItem(outer, f"m{i}", magic_alias) for i, (outer, _inner) in enumerate(pairs)
    ]
    magic = Distinct(Project(op.left, magic_items))

    # 2. Restrict the inner computation to those bindings and aggregate
    #    per binding.
    restrict_pred = conjoin(
        Comparison(ComparisonOp.EQ, ColumnRef(magic_alias, f"m{i}"), inner)
        for i, (_outer, inner) in enumerate(pairs)
    )
    restricted = Join(magic, stripped, restrict_pred, JoinKind.INNER)
    new_agg = AggregateCall(
        aggregate.func,
        aggregate.arg,
        distinct=aggregate.distinct,
        alias=op.scalar_name,
    )
    grouped = GroupBy(
        restricted,
        [ColumnRef(magic_alias, f"m{i}") for i in range(len(pairs))],
        [new_agg],
        output_alias=op.scalar_alias,
    )

    # 3. Join the aggregated view back to the outer block (LEFT OUTER to
    #    preserve outer rows whose group is empty -> NULL scalar).
    back_pred = conjoin(
        Comparison(ComparisonOp.EQ, outer, ColumnRef(magic_alias, f"m{i}"))
        for i, (outer, _inner) in enumerate(pairs)
    )
    joined = Join(op.left, grouped, back_pred, JoinKind.LEFT_OUTER)
    # Project away the magic key columns, keeping left slots + the scalar.
    items = [
        ProjectItem(ColumnRef(alias, column), column, alias)
        for alias, column in left_schema.slots
    ]
    items.append(
        ProjectItem(
            ColumnRef(op.scalar_alias, op.scalar_name),
            op.scalar_name,
            op.scalar_alias,
        )
    )
    return Project(joined, items)
