"""Materialized views: matching, rewriting, and cost-based use (Sec 7.3)."""

from repro.core.matviews.manager import create_materialized_view, optimize_with_views
from repro.core.matviews.rewriter import MaterializedView, MatViewRewriter

__all__ = [
    "MatViewRewriter",
    "MaterializedView",
    "create_materialized_view",
    "optimize_with_views",
]
