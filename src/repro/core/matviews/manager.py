"""Materialized-view lifecycle: creation, storage, cost-based use."""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Column, ColumnType
from repro.engine.interpreter import interpret
from repro.errors import OptimizerError
from repro.logical.lower import lower_block
from repro.sql.binder import Binder
from repro.stats.summaries import analyze_table
from repro.core.matviews.rewriter import MaterializedView, MatViewRewriter


def _infer_type(values: Sequence[Any]) -> ColumnType:
    for value in values:
        if value is None:
            continue
        if isinstance(value, bool):
            return ColumnType.INT
        if isinstance(value, int):
            return ColumnType.INT
        if isinstance(value, float):
            return ColumnType.FLOAT
        return ColumnType.STR
    return ColumnType.FLOAT


def create_materialized_view(
    catalog: Catalog,
    name: str,
    sql: str,
    binder: Optional[Binder] = None,
) -> MaterializedView:
    """Evaluate a defining query and store its result as a table.

    The backing table is named after the view; its columns carry the
    select-list names.  Statistics are collected immediately so the
    optimizer can cost plans that scan the view.

    Raises:
        OptimizerError: if the defining query is not single-block.
    """
    if binder is None:
        binder = Binder(catalog)
    block = binder.bind_sql(sql)
    logical = lower_block(block, catalog)
    schema, rows = interpret(logical, catalog)
    names = [slot_name for _alias, slot_name in schema.slots]
    columns = []
    for index, column_name in enumerate(names):
        column_values = [row[index] for row in rows]
        columns.append(Column(column_name, _infer_type(column_values)))
    table = catalog.create_table(name, columns)
    for row in rows:
        table.insert(row)
    analyze_table(catalog, name)
    view = MaterializedView(name=name, block=block, table=name)
    catalog.register_materialized_view(name, view)
    return view


def optimize_with_views(optimizer, sql: str):
    """Optimize a query considering materialized-view reformulations.

    Runs the optimizer on the original block and on every matching
    view-based reformulation, then returns
    ``(best OptimizedQuery, MaterializedView or None)`` by estimated
    cost -- the cost-based integration the paper calls for in [9].
    """
    block = optimizer.binder.bind_sql(sql)
    rewriter = MatViewRewriter(optimizer.catalog)
    candidates = [(None, optimizer.optimize_block(block))]
    for view, rewritten_block in rewriter.rewrites(block):
        try:
            candidates.append((view, optimizer.optimize_block(rewritten_block)))
        except Exception:
            continue  # an infeasible reformulation never beats the original
    best_view, best = min(
        candidates, key=lambda pair: pair[1].physical.est_cost.total
    )
    return best, best_view
