"""Answering queries using materialized views (Section 7.3).

A materialized view is a stored query result the optimizer may use
transparently.  The general reformulation problem is undecidable; as the
paper notes, practical systems handle *single-block* queries, which is
what this module does:

* **SPJ views**: when a view's relations, predicates, and output columns
  cover a sub-join of the query, the mapped quantifiers are replaced by
  a scan of the view and the covered predicates are dropped.
* **Aggregate views**: when the view groups the same join at the same or
  finer granularity and carries the needed aggregates, the query is
  answered by (re-)aggregating the view -- SUM from SUM, COUNT by
  summing partial counts, MIN/MAX from themselves.

Whether to *use* a matching view is decided cost-based by the caller
(compare the optimized costs of both forms), approximating the
integration of view matching with enumeration described in [9].
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.catalog.catalog import Catalog
from repro.errors import OptimizerError
from repro.expr.aggregates import AggFunc, AggregateCall
from repro.expr.expressions import ColumnRef, Expr, rename_tables
from repro.logical.operators import ProjectItem
from repro.logical.qgm import QueryBlock, Quantifier, fresh_block_label

_REAGG = {
    AggFunc.SUM: AggFunc.SUM,
    AggFunc.COUNT: AggFunc.SUM,  # partial counts are summed
    AggFunc.MIN: AggFunc.MIN,
    AggFunc.MAX: AggFunc.MAX,
}


@dataclass
class MaterializedView:
    """A registered materialized view.

    Attributes:
        name: view (and backing table) name.
        block: the bound defining query (single-block).
        table: backing table name holding the materialized rows.
    """

    name: str
    block: QueryBlock
    table: str

    @property
    def is_aggregate(self) -> bool:
        """Whether the view computes GROUP BY aggregates."""
        return self.block.has_grouping


class MatViewRewriter:
    """Attempts to reformulate a query block over materialized views."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self.views: List[MaterializedView] = [
            descriptor
            for descriptor in catalog.materialized_views().values()
            if isinstance(descriptor, MaterializedView)
        ]

    # ------------------------------------------------------------------
    def rewrites(self, block: QueryBlock) -> List[Tuple[MaterializedView, QueryBlock]]:
        """All view-based reformulations of a single-block query."""
        if not block.is_single_block:
            return []
        results = []
        for view in self.views:
            rewritten = self.try_rewrite(block, view)
            if rewritten is not None:
                results.append((view, rewritten))
        return results

    def try_rewrite(
        self, block: QueryBlock, view: MaterializedView
    ) -> Optional[QueryBlock]:
        """Reformulate ``block`` over one view, or None if it does not match."""
        if not block.is_single_block or not view.block.is_single_block:
            return None
        if view.is_aggregate:
            return self._rewrite_aggregate(block, view)
        return self._rewrite_spj(block, view)

    # ------------------------------------------------------------------
    # Quantifier mapping search
    # ------------------------------------------------------------------
    def _mappings(
        self, block: QueryBlock, view: MaterializedView
    ) -> List[Dict[str, str]]:
        """Injective maps from view aliases to query aliases over the same
        base tables."""
        view_quantifiers = view.block.quantifiers
        candidates: List[List[str]] = []
        for quantifier in view_quantifiers:
            matches = [
                q.alias
                for q in block.quantifiers
                if not q.over_block and q.table == quantifier.table
            ]
            if not matches:
                return []
            candidates.append(matches)
        mappings = []
        for combo in itertools.product(*candidates):
            if len(set(combo)) != len(combo):
                continue
            mappings.append(
                {
                    quantifier.alias: alias
                    for quantifier, alias in zip(view_quantifiers, combo)
                }
            )
        return mappings

    def _predicates_covered(
        self, block: QueryBlock, view: MaterializedView, mapping: Dict[str, str]
    ) -> Optional[List[Expr]]:
        """Query predicates left over after removing the view's own
        predicates (syntactic containment check); None if some view
        predicate has no counterpart (the view is more restrictive)."""
        mapped_view_preds = [
            rename_tables(predicate, mapping) for predicate in view.block.predicates
        ]
        remaining = list(block.predicates)
        for predicate in mapped_view_preds:
            if predicate in remaining:
                remaining.remove(predicate)
            else:
                return None
        return remaining

    def _output_map(
        self, view: MaterializedView, mapping: Dict[str, str], view_alias: str
    ) -> Dict[ColumnRef, ColumnRef]:
        """Map from query-side column refs to view output columns."""
        result: Dict[ColumnRef, ColumnRef] = {}
        for item in view.block.select_items:
            if isinstance(item.expr, ColumnRef):
                mapped = rename_tables(item.expr, mapping)
                result[mapped] = ColumnRef(view_alias, item.name)
        return result

    # ------------------------------------------------------------------
    # SPJ views
    # ------------------------------------------------------------------
    def _rewrite_spj(
        self, block: QueryBlock, view: MaterializedView
    ) -> Optional[QueryBlock]:
        for mapping in self._mappings(block, view):
            remaining = self._predicates_covered(block, view, mapping)
            if remaining is None:
                continue
            view_alias = f"mv_{view.name}"
            out_map = self._output_map(view, mapping, view_alias)
            mapped_aliases = set(mapping.values())

            def translate(expr: Expr) -> Optional[Expr]:
                from repro.expr.expressions import substitute_columns

                needed = [
                    ref for ref in expr.columns() if ref.table in mapped_aliases
                ]
                if any(ref not in out_map for ref in needed):
                    return None
                return substitute_columns(expr, out_map)

            new_predicates = []
            feasible = True
            for predicate in remaining:
                translated = translate(predicate)
                if translated is None:
                    feasible = False
                    break
                new_predicates.append(translated)
            if not feasible:
                continue
            new_items = []
            for item in block.select_items:
                translated = translate(item.expr)
                if translated is None:
                    feasible = False
                    break
                new_items.append(ProjectItem(translated, item.name, item.alias))
            if not feasible:
                continue
            new_keys = []
            for key in block.group_keys:
                translated = translate(key)
                if translated is None or not isinstance(translated, ColumnRef):
                    feasible = False
                    break
                new_keys.append(translated)
            if not feasible:
                continue
            new_aggs = []
            for call in block.aggregates:
                if call.arg is None:
                    new_aggs.append(call)
                    continue
                translated = translate(call.arg)
                if translated is None:
                    feasible = False
                    break
                new_aggs.append(
                    AggregateCall(call.func, translated, call.distinct, call.alias)
                )
            if not feasible:
                continue
            having = None
            if block.having is not None:
                having = translate(block.having)
                if having is None:
                    continue
            new_block = QueryBlock(label=block.label)
            new_block.quantifiers = [
                Quantifier(alias=view_alias, table=view.table)
            ] + [
                quantifier
                for quantifier in block.quantifiers
                if quantifier.alias not in mapped_aliases
            ]
            new_block.predicates = new_predicates
            new_block.select_items = new_items
            new_block.group_keys = new_keys
            new_block.aggregates = new_aggs
            new_block.having = having
            new_block.distinct = block.distinct
            new_block.order_by = list(block.order_by)
            return new_block
        return None

    # ------------------------------------------------------------------
    # Aggregate views
    # ------------------------------------------------------------------
    def _rewrite_aggregate(
        self, block: QueryBlock, view: MaterializedView
    ) -> Optional[QueryBlock]:
        if not block.has_grouping:
            return None
        # The view must cover the query's entire FROM clause.
        if len(view.block.quantifiers) != len(block.quantifiers):
            return None
        for mapping in self._mappings(block, view):
            if len(mapping) != len(block.quantifiers):
                continue
            remaining = self._predicates_covered(block, view, mapping)
            if remaining is None:
                continue
            view_alias = f"mv_{view.name}"
            mapped_keys: Dict[ColumnRef, str] = {}
            agg_out_names: Dict[str, str] = {}
            view_key_set = set(view.block.group_keys)
            for item in view.block.select_items:
                if isinstance(item.expr, ColumnRef):
                    if item.expr in view_key_set:
                        mapped_keys[rename_tables(item.expr, mapping)] = item.name
                    elif item.expr.table == view.block.label:
                        agg_out_names[item.expr.column] = item.name
            # Query keys must be among the view's (finer) grouping keys.
            new_keys: List[ColumnRef] = []
            feasible = True
            for key in block.group_keys:
                if key not in mapped_keys:
                    feasible = False
                    break
                new_keys.append(ColumnRef(view_alias, mapped_keys[key]))
            if not feasible:
                continue
            # Leftover predicates may only touch the view's group keys.
            new_predicates = []
            for predicate in remaining:
                refs = predicate.columns()
                if not all(ref in mapped_keys for ref in refs):
                    feasible = False
                    break
                new_predicates.append(
                    _substitute_keys(predicate, mapped_keys, view_alias)
                )
            if not feasible:
                continue
            # Aggregates must be derivable from the view's aggregates.
            view_agg_by_signature = {
                (call.func, rename_tables(call.arg, mapping) if call.arg else None,
                 call.distinct): call.alias
                for call in view.block.aggregates
            }
            new_aggs: List[AggregateCall] = []
            for call in block.aggregates:
                signature = (call.func, call.arg, call.distinct)
                if call.distinct or call.func not in _REAGG:
                    feasible = False
                    break
                alias = view_agg_by_signature.get(signature)
                if alias is None:
                    feasible = False
                    break
                column = agg_out_names.get(alias, alias)
                new_aggs.append(
                    AggregateCall(
                        _REAGG[call.func],
                        ColumnRef(view_alias, column),
                        alias=call.alias,
                    )
                )
            if not feasible:
                continue
            new_block = QueryBlock(label=block.label)
            new_block.quantifiers = [Quantifier(alias=view_alias, table=view.table)]
            new_block.predicates = new_predicates
            new_block.group_keys = new_keys
            new_block.aggregates = new_aggs
            # Select items: group keys and aggregate outputs, renamed.
            new_items = []
            for item in block.select_items:
                expr = item.expr
                if isinstance(expr, ColumnRef) and expr.table == block.label:
                    # aggregate output reference: keep (alias unchanged)
                    new_items.append(item)
                elif isinstance(expr, ColumnRef) and expr in mapped_keys:
                    new_items.append(
                        ProjectItem(
                            ColumnRef(view_alias, mapped_keys[expr]),
                            item.name,
                            item.alias,
                        )
                    )
                else:
                    feasible = False
                    break
            if not feasible:
                continue
            new_block.select_items = new_items
            new_block.having = block.having
            new_block.distinct = block.distinct
            new_block.order_by = list(block.order_by)
            return new_block
        return None


def _substitute_keys(
    predicate: Expr, mapped_keys: Dict[ColumnRef, str], view_alias: str
) -> Expr:
    from repro.expr.expressions import substitute_columns

    mapping = {
        ref: ColumnRef(view_alias, name) for ref, name in mapped_keys.items()
    }
    return substitute_columns(predicate, mapping)
