"""Distributed join strategies (paper Section 7.1, first paragraph).

Early distributed optimizers (SDD-1 [3], Apers/Hevner/Yao [1]) focused
almost exclusively on *communication*, using semijoin programs: ship
the join column of R to S's site, reduce S to the matching rows, and
ship only those back.  System R* later showed that *local processing*
costs dominate in practice [39], so shipping the whole relation (and
doing one efficient local join) often wins once networks are not the
bottleneck.

Both strategies are implemented over real stored tables; costs combine
measured communication volume (rows shipped x row width, in pages) with
the local-processing work of each step, priced by the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.catalog.catalog import Catalog
from repro.cost.model import pages_for_rows
from repro.cost.parameters import DEFAULT_PARAMETERS, CostParameters
from repro.errors import OptimizerError


@dataclass
class DistributedPlanReport:
    """Cost breakdown of one distributed strategy.

    Attributes:
        strategy: "ship-whole" or "semijoin".
        comm_pages: pages moved between sites.
        comm_cost: priced communication.
        local_cost: priced local processing at both sites.
        result_rows: rows of the final join.
    """

    strategy: str
    comm_pages: float
    comm_cost: float
    local_cost: float
    result_rows: int

    @property
    def total(self) -> float:
        """Combined objective."""
        return self.comm_cost + self.local_cost


class TwoSiteJoin:
    """A join between R (at the query site) and S (at a remote site).

    Args:
        catalog: holds both tables.
        left / right: table names (R local, S remote).
        left_key / right_key: equijoin columns.
        params: cost parameters; ``comm_cost_per_page`` prices shipping.
    """

    def __init__(
        self,
        catalog: Catalog,
        left: str,
        right: str,
        left_key: str,
        right_key: str,
        params: CostParameters = DEFAULT_PARAMETERS,
    ) -> None:
        self.catalog = catalog
        self.left = catalog.table(left)
        self.right = catalog.table(right)
        self.left_key = self.left.schema.column_index(left_key)
        self.right_key = self.right.schema.column_index(right_key)
        self.params = params

    # ------------------------------------------------------------------
    def _join_rows(self, right_rows: Sequence[Tuple]) -> int:
        build: Dict = {}
        for row in right_rows:
            key = row[self.right_key]
            if key is None:
                continue
            build[key] = build.get(key, 0) + 1
        total = 0
        for row in self.left.rows():
            key = row[self.left_key]
            if key is not None:
                total += build.get(key, 0)
        return total

    def _hash_join_cpu(self, build_rows: float, probe_rows: float,
                       output_rows: float) -> float:
        p = self.params
        return (
            build_rows * p.cpu_hash_cost
            + probe_rows * p.cpu_hash_cost
            + output_rows * p.cpu_tuple_cost
        )

    # ------------------------------------------------------------------
    def ship_whole(self) -> DistributedPlanReport:
        """Ship S entirely to the query site, then join locally."""
        right_rows = self.right.rows()
        right_width = self.right.schema.row_width_bytes
        comm_pages = pages_for_rows(len(right_rows), right_width, self.params)
        result_rows = self._join_rows(right_rows)
        local = (
            float(self.right.page_count) * self.params.seq_page_cost  # read S
            + float(self.left.page_count) * self.params.seq_page_cost  # read R
            + self._hash_join_cpu(len(right_rows), self.left.row_count,
                                  result_rows)
        )
        return DistributedPlanReport(
            strategy="ship-whole",
            comm_pages=comm_pages,
            comm_cost=comm_pages * self.params.comm_cost_per_page,
            local_cost=local,
            result_rows=result_rows,
        )

    def semijoin(self) -> DistributedPlanReport:
        """The semijoin program: ship keys(R) -> reduce S -> ship back.

        Pays extra local processing (projecting/deduplicating R's keys,
        the reduction probe at S's site, and a second join at home) in
        exchange for shipping only matching S rows.
        """
        p = self.params
        # Step 1: distinct join-column values of R, shipped to S's site.
        keys = {
            row[self.left_key]
            for row in self.left.rows()
            if row[self.left_key] is not None
        }
        key_width = self.left.schema.columns[self.left_key].width_bytes
        key_pages = pages_for_rows(len(keys), key_width, p)
        local = (
            float(self.left.page_count) * p.seq_page_cost  # scan R for keys
            + self.left.row_count * p.cpu_hash_cost  # dedup
        )
        # Step 2: reduce S at its site.
        reduced = [
            row for row in self.right.rows() if row[self.right_key] in keys
        ]
        local += (
            float(self.right.page_count) * p.seq_page_cost
            + self.right.row_count * p.cpu_hash_cost
        )
        # Step 3: ship the reduction home and join.
        right_width = self.right.schema.row_width_bytes
        reduced_pages = pages_for_rows(len(reduced), right_width, p)
        result_rows = self._join_rows(reduced)
        local += (
            float(self.left.page_count) * p.seq_page_cost  # scan R again
            + self._hash_join_cpu(len(reduced), self.left.row_count,
                                  result_rows)
        )
        comm_pages = key_pages + reduced_pages
        return DistributedPlanReport(
            strategy="semijoin",
            comm_pages=comm_pages,
            comm_cost=comm_pages * p.comm_cost_per_page,
            local_cost=local,
            result_rows=result_rows,
        )

    def best(self) -> DistributedPlanReport:
        """The cost-based choice between the two strategies."""
        ship = self.ship_whole()
        semi = self.semijoin()
        return ship if ship.total <= semi.total else semi

    def compare(self) -> Tuple[DistributedPlanReport, DistributedPlanReport]:
        """(ship_whole, semijoin) reports for side-by-side analysis."""
        return self.ship_whole(), self.semijoin()
