"""The optimizer core: the paper's primary contribution.

Subpackages:

* ``systemr`` -- bottom-up DP join enumeration with interesting orders.
* ``rewrite`` -- the Starburst-style rewrite rule engine and rules.
* ``cascades`` -- top-down memoized search.
* ``parallel`` / ``distributed`` -- Section 7.1.
* ``udf`` -- expensive predicate placement (Section 7.2).
* ``matviews`` -- materialized views (Section 7.3).
* ``parametric`` / ``cube`` -- Section 7.4.
* ``optimizer`` -- the Database/Optimizer facade.
* ``physicalize`` -- logical-to-physical lowering.
"""

from repro.core.optimizer import Database, OptimizedQuery, Optimizer, QueryResult

__all__ = ["Database", "OptimizedQuery", "Optimizer", "QueryResult"]
