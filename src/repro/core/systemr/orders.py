"""Interesting orders and column equivalence classes (Section 3).

An order is *interesting* when some later operation can exploit it: the
columns of equijoin predicates (a sort-merge join on them is cheap),
GROUP BY columns (stream aggregation), and ORDER BY columns (the final
sort disappears).  The enumerator compares plans per interesting-order
class instead of globally -- System R's mechanism for surviving
violations of the principle of optimality.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.expr.expressions import ColumnRef, Comparison, ComparisonOp
from repro.logical.querygraph import QueryGraph
from repro.physical.properties import SortOrder, order_satisfies


def equijoin_column_pairs(graph: QueryGraph) -> List[Tuple[ColumnRef, ColumnRef]]:
    """All (left, right) column pairs of equijoin edges in the graph."""
    pairs: List[Tuple[ColumnRef, ColumnRef]] = []
    for edge in graph.edges:
        for conjunct in _edge_conjuncts(edge.predicate):
            if (
                isinstance(conjunct, Comparison)
                and conjunct.op is ComparisonOp.EQ
                and isinstance(conjunct.left, ColumnRef)
                and isinstance(conjunct.right, ColumnRef)
                and conjunct.left.table != conjunct.right.table
            ):
                pairs.append((conjunct.left, conjunct.right))
    return pairs


def _edge_conjuncts(predicate):
    from repro.expr.expressions import conjuncts

    return conjuncts(predicate)


def equivalence_classes(graph: QueryGraph) -> List[FrozenSet[ColumnRef]]:
    """Union-find over equijoin predicates: columns forced equal.

    After joining on ``R.x = S.x``, a stream ordered on ``R.x`` is also
    ordered on ``S.x`` -- the generalization used by order optimization
    ([58]) and needed to recognize satisfied interesting orders.
    """
    parent: Dict[ColumnRef, ColumnRef] = {}

    def find(ref: ColumnRef) -> ColumnRef:
        parent.setdefault(ref, ref)
        while parent[ref] != ref:
            parent[ref] = parent[parent[ref]]
            ref = parent[ref]
        return ref

    def union(a: ColumnRef, b: ColumnRef) -> None:
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            parent[root_a] = root_b

    for left, right in equijoin_column_pairs(graph):
        union(left, right)
    groups: Dict[ColumnRef, Set[ColumnRef]] = {}
    for ref in parent:
        groups.setdefault(find(ref), set()).add(ref)
    return [frozenset(group) for group in groups.values() if len(group) > 1]


def interesting_orders(
    graph: QueryGraph,
    extra: Sequence[SortOrder] = (),
) -> List[SortOrder]:
    """The interesting orders of a query: one per equijoin column, plus
    caller-provided orders (GROUP BY / ORDER BY requirements)."""
    seen: Set[SortOrder] = set()
    result: List[SortOrder] = []
    for left, right in equijoin_column_pairs(graph):
        for ref in (left, right):
            order: SortOrder = ((ref, True),)
            if order not in seen:
                seen.add(order)
                result.append(order)
    for order in extra:
        normalized = tuple(order)
        if normalized and normalized not in seen:
            seen.add(normalized)
            result.append(normalized)
    return result


def satisfied_orders(
    delivered: Optional[SortOrder],
    candidates: Sequence[SortOrder],
    equivalences: Sequence[FrozenSet[ColumnRef]],
) -> FrozenSet[SortOrder]:
    """Which interesting orders a delivered order satisfies."""
    if not delivered:
        return frozenset()
    return frozenset(
        candidate
        for candidate in candidates
        if order_satisfies(delivered, candidate, equivalences)
    )
