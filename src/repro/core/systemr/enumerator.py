"""The System-R style bottom-up dynamic-programming join enumerator (Section 3).

The enumerator views an SPJ query as a set of relations to join.  At
step j it holds optimal plans for every connected subset of size j and
extends them: linear mode joins a subset with one new relation (the
System R space), bushy mode considers every 2-partition (Section 4.1.1).
Plans for the same subset are comparable only when they satisfy the same
set of *interesting orders*; dominance pruning keeps, per subset, the
Pareto frontier over (cost, satisfied orders).

Knobs mirror the paper's discussion: ``bushy`` expands the search space,
``allow_cartesian`` permits early Cartesian products (profitable on star
queries), and ``use_interesting_orders=False`` reproduces the
sub-optimality System R's mechanism exists to avoid (benchmark E2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.catalog.catalog import Catalog
from repro.cost.model import (
    Cost,
    cost_hash_join,
    cost_index_nested_loop_join,
    cost_materialize,
    cost_merge_join,
    cost_nested_loop_join,
    cost_seq_scan,
    cost_sort,
    pages_for_rows,
)
from repro.cost.parameters import DEFAULT_PARAMETERS, CostParameters
from repro.errors import OptimizerError
from repro.expr.expressions import ColumnRef, Comparison, ComparisonOp, Expr, conjoin, conjuncts
from repro.logical.operators import JoinKind
from repro.logical.querygraph import QueryGraph
from repro.physical.plans import (
    HashJoinP,
    INLJoinP,
    MaterializeP,
    MergeJoinP,
    NLJoinP,
    PhysicalOp,
    SortP,
)
from repro.physical.properties import SortOrder, order_satisfies
from repro.core.systemr.access import generate_access_paths
from repro.core.systemr.orders import (
    equivalence_classes,
    interesting_orders,
    satisfied_orders,
)
from repro.stats.propagation import CardinalityEstimator
from repro.stats.summaries import TableStats


@dataclass(frozen=True)
class EnumeratorConfig:
    """Search-space knobs of the enumerator.

    Attributes:
        bushy: consider all 2-partitions (bushy trees) instead of only
            extending by a single relation (linear/left-deep trees).
        allow_cartesian: permit joining disconnected subsets early;
            otherwise Cartesian products are deferred as in System R.
        use_interesting_orders: compare plans per interesting-order class;
            disabling this reproduces naive pruning (E2).
        join_algorithms: subset of {"nl", "inl", "merge", "hash"}.
        naive: replace the DP enumerator with the exhaustive O(n!)
            baseline of Section 3 (used as the differential-testing
            reference: same plan space, no memoization shortcuts).
        damping: selectivity-damping exponent in (0, 1]; below 1 the
            estimator inflates selectivities toward 1, yielding the
            conservative cardinalities used when re-optimizing a plan
            that failed at runtime.
    """

    bushy: bool = False
    allow_cartesian: bool = False
    use_interesting_orders: bool = True
    join_algorithms: Tuple[str, ...] = ("nl", "inl", "merge", "hash")
    naive: bool = False
    damping: float = 1.0


@dataclass
class EnumeratorStats:
    """Work counters: the quantities benchmark E1/E3/E10 report."""

    plans_considered: int = 0
    entries_retained: int = 0
    subsets_examined: int = 0


@dataclass
class PlanEntry:
    """One retained plan for a relation subset."""

    plan: PhysicalOp
    cost: Cost
    rows: float
    order: Optional[SortOrder]
    satisfied: FrozenSet[SortOrder]


class SystemRJoinEnumerator:
    """Bottom-up DP enumeration over one SPJ query graph.

    Args:
        catalog: table/index metadata and data.
        graph: the query graph (relations + predicates).
        stats_by_alias: statistics per relation alias.
        params: cost-model parameters.
        config: search-space knobs.
        extra_orders: additional interesting orders from GROUP BY /
            ORDER BY above the join.
    """

    def __init__(
        self,
        catalog: Catalog,
        graph: QueryGraph,
        stats_by_alias: Dict[str, TableStats],
        params: CostParameters = DEFAULT_PARAMETERS,
        config: EnumeratorConfig = EnumeratorConfig(),
        extra_orders: Sequence[SortOrder] = (),
        feedback=None,
    ) -> None:
        self.catalog = catalog
        self.graph = graph
        self.params = params
        self.config = config
        self.estimator = CardinalityEstimator(
            stats_by_alias, damping=config.damping, feedback=feedback
        )
        self.equivalences = equivalence_classes(graph)
        self.orders = interesting_orders(graph, extra_orders)
        self.stats = EnumeratorStats()
        self._table: Dict[FrozenSet[str], List[PlanEntry]] = {}
        self._width_cache: Dict[FrozenSet[str], float] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self) -> List[PlanEntry]:
        """Enumerate and return the retained entries for the full query."""
        aliases = self.graph.aliases
        if not aliases:
            raise OptimizerError("query graph has no relations")
        for alias in aliases:
            self._seed_relation(alias)
        full = frozenset(aliases)
        for size in range(2, len(aliases) + 1):
            for subset_tuple in itertools.combinations(aliases, size):
                subset = frozenset(subset_tuple)
                self._build_subset(subset)
        entries = self._table.get(full, [])
        if not entries:
            raise OptimizerError("enumeration produced no plan for the full query")
        return entries

    def best_plan(
        self, required_order: Optional[SortOrder] = None
    ) -> Tuple[PhysicalOp, Cost]:
        """The cheapest full plan, adding a final sort if an order is required."""
        entries = self._table.get(frozenset(self.graph.aliases)) or self.run()
        best: Optional[Tuple[PhysicalOp, Cost]] = None
        for entry in entries:
            plan, cost = entry.plan, entry.cost
            if required_order and not order_satisfies(
                entry.order, required_order, self.equivalences
            ):
                sort = SortP(plan, required_order)
                sort.est_rows = entry.rows
                extra = cost_sort(
                    entry.rows, self._pages(frozenset(self.graph.aliases), entry.rows),
                    self.params,
                )
                sort.est_cost = cost + extra
                sort.order = required_order
                plan, cost = sort, sort.est_cost
            if best is None or cost.total < best[1].total:
                best = (plan, cost)
        assert best is not None
        return best

    # ------------------------------------------------------------------
    # Seeding: access paths
    # ------------------------------------------------------------------
    def _seed_relation(self, alias: str) -> None:
        entries: List[PlanEntry] = []
        for path in generate_access_paths(
            alias, self.graph, self.catalog, self.estimator, self.params
        ):
            self.stats.plans_considered += 1
            entry = PlanEntry(
                plan=path,
                cost=path.est_cost,
                rows=path.est_rows,
                order=path.order,
                satisfied=self._satisfied(path.order),
            )
            self._insert(entries, entry)
        self._table[frozenset((alias,))] = entries
        self.stats.entries_retained += len(entries)

    # ------------------------------------------------------------------
    # DP step
    # ------------------------------------------------------------------
    def _build_subset(self, subset: FrozenSet[str]) -> None:
        self.stats.subsets_examined += 1
        entries: List[PlanEntry] = []
        partitions = list(self._partitions(subset))
        connected = [
            pair for pair in partitions if self.graph.connected(pair[0], pair[1])
        ]
        if self.config.allow_cartesian:
            usable = partitions
        elif connected:
            usable = connected
        else:
            # Cartesian products are deferred (Section 3): a disconnected
            # subset is built only when unavoidable -- the full query, or
            # a subset with no join edge to the outside (a union of whole
            # components, which must eventually be crossed anyway).
            full = frozenset(self.graph.aliases)
            has_outside_edge = bool(self.graph.neighbours(subset))
            if subset == full or not has_outside_edge:
                usable = partitions
            else:
                return
        rows = self.estimator.relation_set_cardinality(subset, self.graph)
        for left_set, right_set in usable:
            left_entries = self._table.get(left_set, [])
            right_entries = self._table.get(right_set, [])
            if not left_entries or not right_entries:
                continue
            for candidate in self._join_candidates(
                left_set, right_set, left_entries, right_entries, rows
            ):
                self._insert(entries, candidate)
        if entries:
            self._table[subset] = entries
            self.stats.entries_retained += len(entries)

    def _partitions(self, subset: FrozenSet[str]):
        if self.config.bushy:
            items = sorted(subset)
            for mask in range(1, 2 ** len(items) - 1):
                left = frozenset(
                    items[i] for i in range(len(items)) if mask & (1 << i)
                )
                yield left, subset - left
        else:
            for alias in sorted(subset):
                rest = subset - {alias}
                if rest:
                    yield rest, frozenset((alias,))

    # ------------------------------------------------------------------
    # Join methods
    # ------------------------------------------------------------------
    def _join_candidates(
        self,
        left_set: FrozenSet[str],
        right_set: FrozenSet[str],
        left_entries: List[PlanEntry],
        right_entries: List[PlanEntry],
        rows: float,
    ):
        predicate = self.graph.connecting_predicate(left_set, right_set)
        equi_pairs, residual = self._split_equi(predicate, left_set, right_set)
        # Every join algorithm for this 2-partition applies the same
        # connecting predicate; stamp its fingerprint so the runtime
        # harvest can attribute observed join selectivity to it.
        edge_fp = self.estimator.selectivity.predicate_fingerprint(predicate)
        algorithms = self.config.join_algorithms
        for left in left_entries:
            if "nl" in algorithms:
                for right in right_entries:
                    yield self._nested_loop(
                        left, right, right_set, predicate, rows, edge_fp
                    )
            if "inl" in algorithms and len(right_set) == 1 and equi_pairs:
                yield from self._index_nested_loop(
                    left, next(iter(right_set)), equi_pairs, residual, rows,
                    edge_fp,
                )
            if "merge" in algorithms and equi_pairs:
                for right in right_entries:
                    yield self._merge(
                        left, right, left_set, right_set, equi_pairs, residual,
                        rows, edge_fp,
                    )
            if "hash" in algorithms and equi_pairs:
                for right in right_entries:
                    yield self._hash(
                        left, right, right_set, equi_pairs, residual, rows,
                        edge_fp,
                    )

    def _split_equi(
        self,
        predicate: Optional[Expr],
        left_set: FrozenSet[str],
        right_set: FrozenSet[str],
    ) -> Tuple[List[Tuple[ColumnRef, ColumnRef]], Optional[Expr]]:
        pairs: List[Tuple[ColumnRef, ColumnRef]] = []
        residual: List[Expr] = []
        for conjunct in conjuncts(predicate):
            if (
                isinstance(conjunct, Comparison)
                and conjunct.op is ComparisonOp.EQ
                and isinstance(conjunct.left, ColumnRef)
                and isinstance(conjunct.right, ColumnRef)
            ):
                l, r = conjunct.left, conjunct.right
                if l.table in left_set and r.table in right_set:
                    pairs.append((l, r))
                    continue
                if r.table in left_set and l.table in right_set:
                    pairs.append((r, l))
                    continue
            residual.append(conjunct)
        return pairs, conjoin(residual)

    def _nested_loop(
        self,
        left: PlanEntry,
        right: PlanEntry,
        right_set: FrozenSet[str],
        predicate: Optional[Expr],
        rows: float,
        edge_fp: Optional[str] = None,
    ) -> PlanEntry:
        self.stats.plans_considered += 1
        inner = MaterializeP(right.plan)
        inner_pages = self._pages(right_set, right.rows)
        inner.est_rows = right.rows
        inner.est_cost = right.cost + cost_materialize(
            right.rows, inner_pages, self.params
        )
        inner.order = right.order
        rescan = Cost(cpu=right.rows * self.params.cpu_tuple_cost)
        join_cost = cost_nested_loop_join(
            left.rows, rescan, right.rows, len(conjuncts(predicate)), self.params
        )
        plan = NLJoinP(left.plan, inner, predicate, JoinKind.INNER)
        plan.est_rows = rows
        plan.est_cost = left.cost + inner.est_cost + join_cost
        plan.order = left.order  # NL preserves the outer order
        plan.feedback_fingerprint = edge_fp
        return self._entry(plan)

    def _index_nested_loop(
        self,
        left: PlanEntry,
        inner_alias: str,
        equi_pairs: List[Tuple[ColumnRef, ColumnRef]],
        residual: Optional[Expr],
        rows: float,
        edge_fp: Optional[str] = None,
    ):
        node = self.graph.node(inner_alias)
        table = self.catalog.table(node.table)
        for index in self.catalog.indexes_on(node.table):
            matched: List[Tuple[ColumnRef, ColumnRef]] = []
            for column in index.definition.columns:
                pair = next(
                    (p for p in equi_pairs if p[1].column == column), None
                )
                if pair is None:
                    break
                matched.append(pair)
            if not matched:
                continue
            self.stats.plans_considered += 1
            unmatched = [p for p in equi_pairs if p not in matched]
            residual_parts = list(conjuncts(residual))
            residual_parts.extend(
                Comparison(ComparisonOp.EQ, l, r) for l, r in unmatched
            )
            local = node.local_predicate()
            if local is not None:
                residual_parts.append(local)
            selectivity = 1.0
            for _l, r in matched:
                distinct = self.estimator.selectivity.distinct_count(r)
                selectivity *= 1.0 / distinct if distinct else 0.1
            matches_per_outer = max(table.row_count * selectivity, 0.0)
            join_cost = cost_index_nested_loop_join(
                left.rows,
                matches_per_outer,
                float(table.row_count),
                float(table.page_count),
                index.height,
                index.definition.clustered,
                self.params,
            )
            plan = INLJoinP(
                left.plan,
                node.table,
                inner_alias,
                table.schema.column_names,
                index.definition.name,
                [l for l, _r in matched],
                JoinKind.INNER,
                conjoin(residual_parts),
                column_types=table.schema.column_types,
            )
            plan.est_rows = rows
            plan.est_cost = left.cost + join_cost
            plan.order = left.order
            if local is None:
                # With a local predicate folded into the residual, the
                # operator's output no longer reflects the join edge
                # alone; only the clean case is attributed to the edge.
                plan.feedback_fingerprint = edge_fp
            yield self._entry(plan)

    def _merge(
        self,
        left: PlanEntry,
        right: PlanEntry,
        left_set: FrozenSet[str],
        right_set: FrozenSet[str],
        equi_pairs: List[Tuple[ColumnRef, ColumnRef]],
        residual: Optional[Expr],
        rows: float,
        edge_fp: Optional[str] = None,
    ) -> PlanEntry:
        self.stats.plans_considered += 1
        left_keys = [l for l, _r in equi_pairs]
        right_keys = [r for _l, r in equi_pairs]
        left_order: SortOrder = tuple((ref, True) for ref in left_keys)
        right_order: SortOrder = tuple((ref, True) for ref in right_keys)
        left_plan, left_cost = self._ensure_order(
            left.plan, left.cost, left.rows, left.order, left_order, left_set
        )
        right_plan, right_cost = self._ensure_order(
            right.plan, right.cost, right.rows, right.order, right_order, right_set
        )
        merge_cost = cost_merge_join(left.rows, right.rows, rows, self.params)
        plan = MergeJoinP(
            left_plan, right_plan, left_keys, right_keys, JoinKind.INNER, residual
        )
        plan.est_rows = rows
        plan.est_cost = left_cost + right_cost + merge_cost
        plan.order = left_order  # merge output is ordered on the join keys
        plan.feedback_fingerprint = edge_fp
        return self._entry(plan)

    def _hash(
        self,
        left: PlanEntry,
        right: PlanEntry,
        right_set: FrozenSet[str],
        equi_pairs: List[Tuple[ColumnRef, ColumnRef]],
        residual: Optional[Expr],
        rows: float,
        edge_fp: Optional[str] = None,
    ) -> PlanEntry:
        self.stats.plans_considered += 1
        left_keys = [l for l, _r in equi_pairs]
        right_keys = [r for _l, r in equi_pairs]
        build_pages = self._pages(right_set, right.rows)
        probe_pages = pages_for_rows(left.rows, 16.0, self.params)
        join_cost = cost_hash_join(
            right.rows, build_pages, left.rows, probe_pages, rows, self.params
        )
        plan = HashJoinP(
            left.plan, right.plan, left_keys, right_keys, JoinKind.INNER, residual
        )
        plan.est_rows = rows
        plan.est_cost = left.cost + right.cost + join_cost
        plan.order = None  # hashing destroys order
        plan.feedback_fingerprint = edge_fp
        return self._entry(plan)

    def _ensure_order(
        self,
        plan: PhysicalOp,
        cost: Cost,
        rows: float,
        delivered: Optional[SortOrder],
        required: SortOrder,
        aliases: FrozenSet[str],
    ) -> Tuple[PhysicalOp, Cost]:
        if order_satisfies(delivered, required, self.equivalences):
            return plan, cost
        sort = SortP(plan, required)
        sort.est_rows = rows
        extra = cost_sort(rows, self._pages(aliases, rows), self.params)
        sort.est_cost = cost + extra
        sort.order = required
        return sort, sort.est_cost

    # ------------------------------------------------------------------
    # Entry management
    # ------------------------------------------------------------------
    def _entry(self, plan: PhysicalOp) -> PlanEntry:
        return PlanEntry(
            plan=plan,
            cost=plan.est_cost,
            rows=plan.est_rows,
            order=plan.order,
            satisfied=self._satisfied(plan.order),
        )

    def _satisfied(self, order: Optional[SortOrder]) -> FrozenSet[SortOrder]:
        if not self.config.use_interesting_orders:
            return frozenset()
        return satisfied_orders(order, self.orders, self.equivalences)

    def _insert(self, entries: List[PlanEntry], candidate: PlanEntry) -> None:
        """Dominance pruning: keep the Pareto frontier over (cost, orders)."""
        for existing in entries:
            if (
                existing.cost.total <= candidate.cost.total
                and existing.satisfied >= candidate.satisfied
            ):
                return
        entries[:] = [
            existing
            for existing in entries
            if not (
                candidate.cost.total <= existing.cost.total
                and candidate.satisfied >= existing.satisfied
            )
        ]
        entries.append(candidate)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _width(self, aliases: FrozenSet[str]) -> float:
        if aliases not in self._width_cache:
            width = 0.0
            for alias in aliases:
                table = self.graph.node(alias).table
                width += self.catalog.schema(table).row_width_bytes
            self._width_cache[aliases] = width
        return self._width_cache[aliases]

    def _pages(self, aliases: FrozenSet[str], rows: float) -> float:
        return pages_for_rows(rows, self._width(aliases), self.params)
