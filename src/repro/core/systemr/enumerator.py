"""The System-R style bottom-up dynamic-programming join enumerator (Section 3).

The enumerator views an SPJ query as a set of relations to join.  At
step j it holds optimal plans for every connected subset of size j and
extends them: linear mode joins a subset with one new relation (the
System R space), bushy mode considers every 2-partition (Section 4.1.1).
Plans for the same subset are comparable only when they satisfy the same
set of *interesting orders*; dominance pruning keeps, per subset, the
Pareto frontier over (cost, satisfied orders).

Knobs mirror the paper's discussion: ``bushy`` expands the search space,
``allow_cartesian`` permits early Cartesian products (profitable on star
queries), and ``use_interesting_orders=False`` reproduces the
sub-optimality System R's mechanism exists to avoid (benchmark E2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.catalog.catalog import Catalog
from repro.cost.model import (
    Cost,
    cost_hash_join,
    cost_index_nested_loop_join,
    cost_materialize,
    cost_merge_join,
    cost_nested_loop_join,
    cost_seq_scan,
    cost_sort,
    pages_for_rows,
)
from repro.cost.parameters import DEFAULT_PARAMETERS, CostParameters
from repro.errors import OptimizerError
from repro.expr.expressions import ColumnRef, Comparison, ComparisonOp, Expr, conjoin, conjuncts
from repro.logical.operators import JoinKind
from repro.logical.querygraph import QueryGraph
from repro.physical.plans import (
    HashJoinP,
    IndexScanP,
    INLJoinP,
    MaterializeP,
    MergeJoinP,
    NLJoinP,
    PhysicalOp,
    SortP,
)
from repro.physical.properties import SortOrder, order_satisfies
from repro.core.systemr.access import generate_access_paths
from repro.core.systemr.orders import (
    equivalence_classes,
    interesting_orders,
    satisfied_orders,
)
from repro.stats.propagation import CardinalityEstimator
from repro.stats.summaries import TableStats


@dataclass(frozen=True)
class EnumeratorConfig:
    """Search-space knobs of the enumerator.

    Attributes:
        bushy: consider all 2-partitions (bushy trees) instead of only
            extending by a single relation (linear/left-deep trees).
        allow_cartesian: permit joining disconnected subsets early;
            otherwise Cartesian products are deferred as in System R.
        use_interesting_orders: compare plans per interesting-order class;
            disabling this reproduces naive pruning (E2).
        join_algorithms: subset of {"nl", "inl", "merge", "hash"}.
        naive: replace the DP enumerator with the exhaustive O(n!)
            baseline of Section 3 (used as the differential-testing
            reference: same plan space, no memoization shortcuts).
        damping: selectivity-damping exponent in (0, 1]; below 1 the
            estimator inflates selectivities toward 1, yielding the
            conservative cardinalities used when re-optimizing a plan
            that failed at runtime.
        risk_aware: cost plans a second time at the high end of the
            cardinality uncertainty interval and break near-ties on
            expected cost by least worst-case cost, so a plan that is
            marginally cheaper on paper but catastrophic if the estimate
            is low (the classic warm-index-nested-loop trap) loses to a
            robust alternative.
        risk_epsilon: relative expected-cost window within which two
            plans count as tied for the risk tie-break.
    """

    bushy: bool = False
    allow_cartesian: bool = False
    use_interesting_orders: bool = True
    join_algorithms: Tuple[str, ...] = ("nl", "inl", "merge", "hash")
    naive: bool = False
    damping: float = 1.0
    risk_aware: bool = False
    risk_epsilon: float = 0.1


@dataclass
class EnumeratorStats:
    """Work counters: the quantities benchmark E1/E3/E10 report."""

    plans_considered: int = 0
    entries_retained: int = 0
    subsets_examined: int = 0


@dataclass
class PlanEntry:
    """One retained plan for a relation subset.

    ``rows_hi``/``cost_hi`` carry the high end of the cardinality
    uncertainty interval and the plan's cost re-evaluated there; with
    ``risk_aware`` off they degenerate to ``rows``/``cost.total``.
    """

    plan: PhysicalOp
    cost: Cost
    rows: float
    order: Optional[SortOrder]
    satisfied: FrozenSet[SortOrder]
    rows_hi: float = 0.0
    cost_hi: float = 0.0


class SystemRJoinEnumerator:
    """Bottom-up DP enumeration over one SPJ query graph.

    Args:
        catalog: table/index metadata and data.
        graph: the query graph (relations + predicates).
        stats_by_alias: statistics per relation alias.
        params: cost-model parameters.
        config: search-space knobs.
        extra_orders: additional interesting orders from GROUP BY /
            ORDER BY above the join.
    """

    def __init__(
        self,
        catalog: Catalog,
        graph: QueryGraph,
        stats_by_alias: Dict[str, TableStats],
        params: CostParameters = DEFAULT_PARAMETERS,
        config: EnumeratorConfig = EnumeratorConfig(),
        extra_orders: Sequence[SortOrder] = (),
        feedback=None,
    ) -> None:
        self.catalog = catalog
        self.graph = graph
        self.params = params
        self.config = config
        self.estimator = CardinalityEstimator(
            stats_by_alias, damping=config.damping, feedback=feedback
        )
        self.equivalences = equivalence_classes(graph)
        self.orders = interesting_orders(graph, extra_orders)
        self.stats = EnumeratorStats()
        self._table: Dict[FrozenSet[str], List[PlanEntry]] = {}
        self._width_cache: Dict[FrozenSet[str], float] = {}
        self._interval_cache: Dict[FrozenSet[str], Tuple[float, float]] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self) -> List[PlanEntry]:
        """Enumerate and return the retained entries for the full query."""
        aliases = self.graph.aliases
        if not aliases:
            raise OptimizerError("query graph has no relations")
        for alias in aliases:
            self._seed_relation(alias)
        full = frozenset(aliases)
        for size in range(2, len(aliases) + 1):
            for subset_tuple in itertools.combinations(aliases, size):
                subset = frozenset(subset_tuple)
                self._build_subset(subset)
        entries = self._table.get(full, [])
        if not entries:
            raise OptimizerError("enumeration produced no plan for the full query")
        return entries

    def best_plan(
        self, required_order: Optional[SortOrder] = None
    ) -> Tuple[PhysicalOp, Cost]:
        """The cheapest full plan, adding a final sort if an order is required."""
        entries = self._table.get(frozenset(self.graph.aliases)) or self.run()
        full = frozenset(self.graph.aliases)
        candidates: List[Tuple[PhysicalOp, Cost, float]] = []
        for entry in entries:
            plan, cost, cost_hi = entry.plan, entry.cost, entry.cost_hi
            if required_order and not order_satisfies(
                entry.order, required_order, self.equivalences
            ):
                sort = SortP(plan, required_order)
                sort.est_rows = entry.rows
                extra = cost_sort(
                    entry.rows, self._pages(full, entry.rows), self.params
                )
                sort.est_cost = cost + extra
                sort.order = required_order
                extra_hi = cost_sort(
                    entry.rows_hi, self._pages(full, entry.rows_hi), self.params
                )
                plan, cost = sort, sort.est_cost
                cost_hi = entry.cost_hi + extra_hi.total
            candidates.append((plan, cost, cost_hi))
        best = min(candidates, key=lambda c: c[1].total)
        if self.config.risk_aware:
            # Risk-aware tie-break: among plans whose expected cost is
            # within (1 + epsilon) of the cheapest, prefer the least
            # worst-case cost over the uncertainty interval.
            window = best[1].total * (1.0 + self.config.risk_epsilon)
            near = [c for c in candidates if c[1].total <= window]
            best = min(near, key=lambda c: (c[2], c[1].total))
        plan, cost, cost_hi = best
        plan.est_cost_hi = max(cost_hi, cost.total)
        return plan, cost

    # ------------------------------------------------------------------
    # Seeding: access paths
    # ------------------------------------------------------------------
    def _seed_relation(self, alias: str) -> None:
        entries: List[PlanEntry] = []
        subset = frozenset((alias,))
        rows_hi: Optional[float] = None
        if self.config.risk_aware:
            rows_hi = self._subset_hi(subset)
        for path in generate_access_paths(
            alias, self.graph, self.catalog, self.estimator, self.params
        ):
            self.stats.plans_considered += 1
            cost_hi = path.est_cost.total
            if rows_hi is not None and self._card_sensitive(path):
                # An index scan's cost is per matching row; a sequential
                # scan reads the whole table no matter what the predicate
                # selects, so only the former inflates at the high bound.
                cost_hi *= rows_hi / max(path.est_rows, 1.0)
            entry = PlanEntry(
                plan=path,
                cost=path.est_cost,
                rows=path.est_rows,
                order=path.order,
                satisfied=self._satisfied(path.order),
                rows_hi=path.est_rows if rows_hi is None else rows_hi,
                cost_hi=cost_hi,
            )
            self._insert(entries, entry)
        self._table[subset] = entries
        self.stats.entries_retained += len(entries)

    @staticmethod
    def _card_sensitive(op: PhysicalOp) -> bool:
        if isinstance(op, IndexScanP):
            return True
        return any(
            SystemRJoinEnumerator._card_sensitive(child)
            for child in op.children()
        )

    def _subset_hi(self, subset: FrozenSet[str]) -> float:
        if subset not in self._interval_cache:
            self._interval_cache[subset] = self.estimator.relation_set_interval(
                subset, self.graph
            )
        return self._interval_cache[subset][1]

    # ------------------------------------------------------------------
    # DP step
    # ------------------------------------------------------------------
    def _build_subset(self, subset: FrozenSet[str]) -> None:
        self.stats.subsets_examined += 1
        entries: List[PlanEntry] = []
        partitions = list(self._partitions(subset))
        connected = [
            pair for pair in partitions if self.graph.connected(pair[0], pair[1])
        ]
        if self.config.allow_cartesian:
            usable = partitions
        elif connected:
            usable = connected
        else:
            # Cartesian products are deferred (Section 3): a disconnected
            # subset is built only when unavoidable -- the full query, or
            # a subset with no join edge to the outside (a union of whole
            # components, which must eventually be crossed anyway).
            full = frozenset(self.graph.aliases)
            has_outside_edge = bool(self.graph.neighbours(subset))
            if subset == full or not has_outside_edge:
                usable = partitions
            else:
                return
        rows = self.estimator.relation_set_cardinality(subset, self.graph)
        rows_hi = self._subset_hi(subset) if self.config.risk_aware else rows
        for left_set, right_set in usable:
            left_entries = self._table.get(left_set, [])
            right_entries = self._table.get(right_set, [])
            if not left_entries or not right_entries:
                continue
            for candidate in self._join_candidates(
                left_set, right_set, left_entries, right_entries, rows, rows_hi
            ):
                self._insert(entries, candidate)
        if entries:
            self._table[subset] = entries
            self.stats.entries_retained += len(entries)

    def _partitions(self, subset: FrozenSet[str]):
        if self.config.bushy:
            items = sorted(subset)
            for mask in range(1, 2 ** len(items) - 1):
                left = frozenset(
                    items[i] for i in range(len(items)) if mask & (1 << i)
                )
                yield left, subset - left
        else:
            for alias in sorted(subset):
                rest = subset - {alias}
                if rest:
                    yield rest, frozenset((alias,))

    # ------------------------------------------------------------------
    # Join methods
    # ------------------------------------------------------------------
    def _join_candidates(
        self,
        left_set: FrozenSet[str],
        right_set: FrozenSet[str],
        left_entries: List[PlanEntry],
        right_entries: List[PlanEntry],
        rows: float,
        rows_hi: float,
    ):
        predicate = self.graph.connecting_predicate(left_set, right_set)
        equi_pairs, residual = self._split_equi(predicate, left_set, right_set)
        # Every join algorithm for this 2-partition applies the same
        # connecting predicate; stamp its fingerprint so the runtime
        # harvest can attribute observed join selectivity to it.
        edge_fp = self.estimator.selectivity.predicate_fingerprint(predicate)
        algorithms = self.config.join_algorithms
        for left in left_entries:
            if "nl" in algorithms:
                for right in right_entries:
                    yield self._nested_loop(
                        left, right, right_set, predicate, rows, rows_hi,
                        edge_fp,
                    )
            if "inl" in algorithms and len(right_set) == 1 and equi_pairs:
                yield from self._index_nested_loop(
                    left, next(iter(right_set)), equi_pairs, residual, rows,
                    rows_hi, edge_fp,
                )
            if "merge" in algorithms and equi_pairs:
                for right in right_entries:
                    yield self._merge(
                        left, right, left_set, right_set, equi_pairs, residual,
                        rows, rows_hi, edge_fp,
                    )
            if "hash" in algorithms and equi_pairs:
                for right in right_entries:
                    yield self._hash(
                        left, right, right_set, equi_pairs, residual, rows,
                        rows_hi, edge_fp,
                    )

    def _split_equi(
        self,
        predicate: Optional[Expr],
        left_set: FrozenSet[str],
        right_set: FrozenSet[str],
    ) -> Tuple[List[Tuple[ColumnRef, ColumnRef]], Optional[Expr]]:
        pairs: List[Tuple[ColumnRef, ColumnRef]] = []
        residual: List[Expr] = []
        for conjunct in conjuncts(predicate):
            if (
                isinstance(conjunct, Comparison)
                and conjunct.op is ComparisonOp.EQ
                and isinstance(conjunct.left, ColumnRef)
                and isinstance(conjunct.right, ColumnRef)
            ):
                l, r = conjunct.left, conjunct.right
                if l.table in left_set and r.table in right_set:
                    pairs.append((l, r))
                    continue
                if r.table in left_set and l.table in right_set:
                    pairs.append((r, l))
                    continue
            residual.append(conjunct)
        return pairs, conjoin(residual)

    def _nested_loop(
        self,
        left: PlanEntry,
        right: PlanEntry,
        right_set: FrozenSet[str],
        predicate: Optional[Expr],
        rows: float,
        rows_hi: float,
        edge_fp: Optional[str] = None,
    ) -> PlanEntry:
        self.stats.plans_considered += 1
        inner = MaterializeP(right.plan)
        inner_pages = self._pages(right_set, right.rows)
        inner.est_rows = right.rows
        inner.est_cost = right.cost + cost_materialize(
            right.rows, inner_pages, self.params
        )
        inner.order = right.order
        rescan = Cost(cpu=right.rows * self.params.cpu_tuple_cost)
        join_cost = cost_nested_loop_join(
            left.rows, rescan, right.rows, len(conjuncts(predicate)), self.params
        )
        plan = NLJoinP(left.plan, inner, predicate, JoinKind.INNER)
        plan.est_rows = rows
        plan.est_cost = left.cost + inner.est_cost + join_cost
        plan.order = left.order  # NL preserves the outer order
        plan.feedback_fingerprint = edge_fp
        cost_hi = None
        if self.config.risk_aware:
            rescan_hi = Cost(cpu=right.rows_hi * self.params.cpu_tuple_cost)
            join_hi = cost_nested_loop_join(
                left.rows_hi, rescan_hi, right.rows_hi,
                len(conjuncts(predicate)), self.params,
            )
            inner_hi = cost_materialize(
                right.rows_hi, self._pages(right_set, right.rows_hi), self.params
            )
            cost_hi = (
                left.cost_hi + right.cost_hi + inner_hi.total + join_hi.total
            )
        return self._entry(plan, cost_hi=cost_hi, rows_hi=rows_hi)

    def _index_nested_loop(
        self,
        left: PlanEntry,
        inner_alias: str,
        equi_pairs: List[Tuple[ColumnRef, ColumnRef]],
        residual: Optional[Expr],
        rows: float,
        rows_hi: float,
        edge_fp: Optional[str] = None,
    ):
        node = self.graph.node(inner_alias)
        table = self.catalog.table(node.table)
        for index in self.catalog.indexes_on(node.table):
            matched: List[Tuple[ColumnRef, ColumnRef]] = []
            for column in index.definition.columns:
                pair = next(
                    (p for p in equi_pairs if p[1].column == column), None
                )
                if pair is None:
                    break
                matched.append(pair)
            if not matched:
                continue
            self.stats.plans_considered += 1
            unmatched = [p for p in equi_pairs if p not in matched]
            residual_parts = list(conjuncts(residual))
            residual_parts.extend(
                Comparison(ComparisonOp.EQ, l, r) for l, r in unmatched
            )
            local = node.local_predicate()
            if local is not None:
                residual_parts.append(local)
            selectivity = 1.0
            for _l, r in matched:
                distinct = self.estimator.selectivity.distinct_count(r)
                selectivity *= 1.0 / distinct if distinct else 0.1
            matches_per_outer = max(table.row_count * selectivity, 0.0)
            join_cost = cost_index_nested_loop_join(
                left.rows,
                matches_per_outer,
                float(table.row_count),
                float(table.page_count),
                index.height,
                index.definition.clustered,
                self.params,
            )
            plan = INLJoinP(
                left.plan,
                node.table,
                inner_alias,
                table.schema.column_names,
                index.definition.name,
                [l for l, _r in matched],
                JoinKind.INNER,
                conjoin(residual_parts),
                column_types=table.schema.column_types,
            )
            plan.est_rows = rows
            plan.est_cost = left.cost + join_cost
            plan.order = left.order
            if local is None:
                # With a local predicate folded into the residual, the
                # operator's output no longer reflects the join edge
                # alone; only the clean case is attributed to the edge.
                plan.feedback_fingerprint = edge_fp
            cost_hi = None
            if self.config.risk_aware:
                # The INL trap: per-probe cost looks negligible at the
                # estimated outer cardinality (warm buffer pool), but it
                # is paid once per outer row -- at the interval's high
                # end the probes dominate everything else in the plan.
                join_hi = cost_index_nested_loop_join(
                    left.rows_hi,
                    matches_per_outer,
                    float(table.row_count),
                    float(table.page_count),
                    index.height,
                    index.definition.clustered,
                    self.params,
                )
                cost_hi = left.cost_hi + join_hi.total
            yield self._entry(plan, cost_hi=cost_hi, rows_hi=rows_hi)

    def _merge(
        self,
        left: PlanEntry,
        right: PlanEntry,
        left_set: FrozenSet[str],
        right_set: FrozenSet[str],
        equi_pairs: List[Tuple[ColumnRef, ColumnRef]],
        residual: Optional[Expr],
        rows: float,
        rows_hi: float,
        edge_fp: Optional[str] = None,
    ) -> PlanEntry:
        self.stats.plans_considered += 1
        left_keys = [l for l, _r in equi_pairs]
        right_keys = [r for _l, r in equi_pairs]
        left_order: SortOrder = tuple((ref, True) for ref in left_keys)
        right_order: SortOrder = tuple((ref, True) for ref in right_keys)
        left_plan, left_cost, left_hi = self._ensure_order(
            left.plan, left.cost, left.rows, left.order, left_order, left_set,
            left.cost_hi, left.rows_hi,
        )
        right_plan, right_cost, right_hi = self._ensure_order(
            right.plan, right.cost, right.rows, right.order, right_order,
            right_set, right.cost_hi, right.rows_hi,
        )
        merge_cost = cost_merge_join(left.rows, right.rows, rows, self.params)
        plan = MergeJoinP(
            left_plan, right_plan, left_keys, right_keys, JoinKind.INNER, residual
        )
        plan.est_rows = rows
        plan.est_cost = left_cost + right_cost + merge_cost
        plan.order = left_order  # merge output is ordered on the join keys
        plan.feedback_fingerprint = edge_fp
        cost_hi = None
        if self.config.risk_aware:
            merge_hi = cost_merge_join(
                left.rows_hi, right.rows_hi, rows_hi, self.params
            )
            cost_hi = left_hi + right_hi + merge_hi.total
        return self._entry(plan, cost_hi=cost_hi, rows_hi=rows_hi)

    def _hash(
        self,
        left: PlanEntry,
        right: PlanEntry,
        right_set: FrozenSet[str],
        equi_pairs: List[Tuple[ColumnRef, ColumnRef]],
        residual: Optional[Expr],
        rows: float,
        rows_hi: float,
        edge_fp: Optional[str] = None,
    ) -> PlanEntry:
        self.stats.plans_considered += 1
        left_keys = [l for l, _r in equi_pairs]
        right_keys = [r for _l, r in equi_pairs]
        build_pages = self._pages(right_set, right.rows)
        probe_pages = pages_for_rows(left.rows, 16.0, self.params)
        join_cost = cost_hash_join(
            right.rows, build_pages, left.rows, probe_pages, rows, self.params
        )
        plan = HashJoinP(
            left.plan, right.plan, left_keys, right_keys, JoinKind.INNER, residual
        )
        plan.est_rows = rows
        plan.est_cost = left.cost + right.cost + join_cost
        plan.order = None  # hashing destroys order
        plan.feedback_fingerprint = edge_fp
        cost_hi = None
        if self.config.risk_aware:
            join_hi = cost_hash_join(
                right.rows_hi,
                self._pages(right_set, right.rows_hi),
                left.rows_hi,
                pages_for_rows(left.rows_hi, 16.0, self.params),
                rows_hi,
                self.params,
            )
            cost_hi = left.cost_hi + right.cost_hi + join_hi.total
        return self._entry(plan, cost_hi=cost_hi, rows_hi=rows_hi)

    def _ensure_order(
        self,
        plan: PhysicalOp,
        cost: Cost,
        rows: float,
        delivered: Optional[SortOrder],
        required: SortOrder,
        aliases: FrozenSet[str],
        cost_hi: float = 0.0,
        rows_hi: float = 0.0,
    ) -> Tuple[PhysicalOp, Cost, float]:
        if order_satisfies(delivered, required, self.equivalences):
            return plan, cost, cost_hi
        sort = SortP(plan, required)
        sort.est_rows = rows
        extra = cost_sort(rows, self._pages(aliases, rows), self.params)
        sort.est_cost = cost + extra
        sort.order = required
        extra_hi = cost_sort(rows_hi, self._pages(aliases, rows_hi), self.params)
        return sort, sort.est_cost, cost_hi + extra_hi.total

    # ------------------------------------------------------------------
    # Entry management
    # ------------------------------------------------------------------
    def _entry(
        self,
        plan: PhysicalOp,
        cost_hi: Optional[float] = None,
        rows_hi: Optional[float] = None,
    ) -> PlanEntry:
        return PlanEntry(
            plan=plan,
            cost=plan.est_cost,
            rows=plan.est_rows,
            order=plan.order,
            satisfied=self._satisfied(plan.order),
            rows_hi=plan.est_rows if rows_hi is None else rows_hi,
            cost_hi=plan.est_cost.total if cost_hi is None else cost_hi,
        )

    def _satisfied(self, order: Optional[SortOrder]) -> FrozenSet[SortOrder]:
        if not self.config.use_interesting_orders:
            return frozenset()
        return satisfied_orders(order, self.orders, self.equivalences)

    def _insert(self, entries: List[PlanEntry], candidate: PlanEntry) -> None:
        """Dominance pruning: keep the Pareto frontier over (cost, orders).

        With ``risk_aware`` on, worst-case cost joins the frontier
        criteria (hedge retention): a plan that is slightly more
        expensive on expectation but much safer at the interval's high
        end survives to the final risk tie-break instead of being pruned
        bottom-up.
        """
        risk = self.config.risk_aware
        for existing in entries:
            if (
                existing.cost.total <= candidate.cost.total
                and existing.satisfied >= candidate.satisfied
                and (not risk or existing.cost_hi <= candidate.cost_hi)
            ):
                return
        entries[:] = [
            existing
            for existing in entries
            if not (
                candidate.cost.total <= existing.cost.total
                and candidate.satisfied >= existing.satisfied
                and (not risk or candidate.cost_hi <= existing.cost_hi)
            )
        ]
        entries.append(candidate)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _width(self, aliases: FrozenSet[str]) -> float:
        if aliases not in self._width_cache:
            width = 0.0
            for alias in aliases:
                table = self.graph.node(alias).table
                width += self.catalog.schema(table).row_width_bytes
            self._width_cache[aliases] = width
        return self._width_cache[aliases]

    def _pages(self, aliases: FrozenSet[str], rows: float) -> float:
        return pages_for_rows(rows, self._width(aliases), self.params)
