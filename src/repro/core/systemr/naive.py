"""Naive exhaustive join enumeration -- the O(n!) baseline of Section 3.

The dynamic-programming enumerator considers O(n * 2^n) plans; the naive
alternative walks every join *order* (n! permutations for linear trees,
and every binary tree shape for bushy ones) and costs each, re-deriving
plans for identical subexpressions over and over.  Benchmark E1 plots
both counters against n.

The naive enumerator reuses the DP enumerator's access paths, join
costing, and per-order pruning *within* one permutation, so the two
searches return the same optimal cost; only the amount of work differs.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.catalog.catalog import Catalog
from repro.cost.parameters import DEFAULT_PARAMETERS, CostParameters
from repro.errors import OptimizerError
from repro.logical.querygraph import QueryGraph
from repro.physical.plans import PhysicalOp
from repro.core.systemr.enumerator import (
    EnumeratorConfig,
    EnumeratorStats,
    PlanEntry,
    SystemRJoinEnumerator,
)
from repro.stats.summaries import TableStats


class NaiveExhaustiveEnumerator:
    """Enumerate every join order without memoization.

    Args:
        bushy: enumerate all binary-tree shapes instead of only
            left-deep permutations.
        Other arguments as in :class:`SystemRJoinEnumerator`.
    """

    def __init__(
        self,
        catalog: Catalog,
        graph: QueryGraph,
        stats_by_alias: Dict[str, TableStats],
        params: CostParameters = DEFAULT_PARAMETERS,
        bushy: bool = False,
        allow_cartesian: bool = True,
    ) -> None:
        config = EnumeratorConfig(bushy=bushy, allow_cartesian=allow_cartesian)
        self._dp = SystemRJoinEnumerator(
            catalog, graph, stats_by_alias, params, config
        )
        self.graph = graph
        self.bushy = bushy
        self.allow_cartesian = allow_cartesian

    @property
    def stats(self) -> EnumeratorStats:
        """Work counters (``plans_considered`` is the headline number)."""
        return self._dp.stats

    # ------------------------------------------------------------------
    def run(self) -> List[PlanEntry]:
        """Enumerate every order; returns the surviving full-query entries."""
        aliases = self.graph.aliases
        if not aliases:
            raise OptimizerError("query graph has no relations")
        for alias in aliases:
            self._dp._seed_relation(alias)
        best: List[PlanEntry] = []
        if self.bushy:
            for entry in self._all_trees(frozenset(aliases)):
                self._dp._insert(best, entry)
        else:
            for permutation in itertools.permutations(aliases):
                for entry in self._linear_chain(permutation):
                    self._dp._insert(best, entry)
        if not best:
            raise OptimizerError("naive enumeration found no plan")
        return best

    def best_cost(self) -> float:
        """Total cost of the best plan found."""
        return min(entry.cost.total for entry in self.run())

    def best_plan(self, required_order=None):
        """The cheapest full plan (plus a final sort when order demands).

        Mirrors :meth:`SystemRJoinEnumerator.best_plan` so the
        physicalizer can swap the naive search in transparently (the
        ``EnumeratorConfig.naive`` knob).
        """
        entries = self.run()
        self._dp._table[frozenset(self.graph.aliases)] = entries
        return self._dp.best_plan(required_order)

    # ------------------------------------------------------------------
    def _single(self, alias: str) -> List[PlanEntry]:
        return self._dp._table[frozenset((alias,))]

    def _linear_chain(self, permutation: Sequence[str]) -> List[PlanEntry]:
        """All pruned plans for one left-deep permutation."""
        current_set = frozenset((permutation[0],))
        entries = list(self._single(permutation[0]))
        for alias in permutation[1:]:
            right_set = frozenset((alias,))
            if not self.allow_cartesian and not self.graph.connected(
                current_set, right_set
            ):
                return []
            union = current_set | right_set
            rows = self._dp.estimator.relation_set_cardinality(union, self.graph)
            next_entries: List[PlanEntry] = []
            for candidate in self._dp._join_candidates(
                current_set, right_set, entries, self._single(alias), rows, rows
            ):
                self._dp._insert(next_entries, candidate)
            if not next_entries:
                return []
            entries = next_entries
            current_set = union
        return entries

    def _all_trees(self, subset: FrozenSet[str]) -> List[PlanEntry]:
        """All pruned plans for every binary tree over ``subset`` --
        the un-memoized recursion whose cost DP avoids."""
        if len(subset) == 1:
            return list(self._single(next(iter(subset))))
        items = sorted(subset)
        rows = self._dp.estimator.relation_set_cardinality(subset, self.graph)
        entries: List[PlanEntry] = []
        for mask in range(1, 2 ** len(items) - 1):
            left_set = frozenset(items[i] for i in range(len(items)) if mask & (1 << i))
            right_set = subset - left_set
            if not self.allow_cartesian and not self.graph.connected(
                left_set, right_set
            ):
                continue
            left_entries = self._all_trees(left_set)
            right_entries = self._all_trees(right_set)
            if not left_entries or not right_entries:
                continue
            for candidate in self._dp._join_candidates(
                left_set, right_set, left_entries, right_entries, rows, rows
            ):
                self._dp._insert(entries, candidate)
        return entries
