"""System-R style optimization: DP join enumeration with interesting orders."""

from repro.core.systemr.access import generate_access_paths
from repro.core.systemr.enumerator import (
    EnumeratorConfig,
    EnumeratorStats,
    PlanEntry,
    SystemRJoinEnumerator,
)
from repro.core.systemr.naive import NaiveExhaustiveEnumerator
from repro.core.systemr.orders import (
    equijoin_column_pairs,
    equivalence_classes,
    interesting_orders,
    satisfied_orders,
)

__all__ = [
    "EnumeratorConfig",
    "EnumeratorStats",
    "NaiveExhaustiveEnumerator",
    "PlanEntry",
    "SystemRJoinEnumerator",
    "equijoin_column_pairs",
    "equivalence_classes",
    "generate_access_paths",
    "interesting_orders",
    "satisfied_orders",
]
