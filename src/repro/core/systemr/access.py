"""Access-path generation: every way to scan one base relation (Section 3).

For each relation the enumerator considers a sequential scan and every
ordered index -- as a full ordered scan (which delivers an interesting
order for free) and, when a local predicate matches the index's leading
column, as a seek.  Each path is costed and annotated with the order it
delivers.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.catalog.catalog import Catalog
from repro.cost.model import Cost, cost_index_scan, cost_seq_scan
from repro.cost.parameters import CostParameters
from repro.expr.expressions import (
    ColumnRef,
    Comparison,
    ComparisonOp,
    Expr,
    Literal,
    conjoin,
    conjuncts,
)
from repro.logical.querygraph import QueryGraph
from repro.physical.plans import IndexScanP, PhysicalOp, SeqScanP
from repro.physical.properties import SortOrder
from repro.stats.propagation import CardinalityEstimator


def generate_access_paths(
    alias: str,
    graph: QueryGraph,
    catalog: Catalog,
    estimator: CardinalityEstimator,
    params: CostParameters,
) -> List[PhysicalOp]:
    """All costed scan alternatives for one relation of the query.

    Every returned plan has ``est_rows``, ``est_cost``, and ``order``
    filled in.  The local predicate is pushed into each scan.
    """
    node = graph.node(alias)
    table = catalog.table(node.table)
    schema = table.schema
    predicate = node.local_predicate()
    out_rows = estimator.scan_rows(alias, graph)
    # Every access path applies the full local predicate (seek bounds
    # plus residual), so they all share the predicate's fingerprint:
    # observed scan output over base rows is its observed selectivity.
    predicate_fp = estimator.selectivity.predicate_fingerprint(predicate)
    paths: List[PhysicalOp] = []

    seq = SeqScanP(
        node.table,
        alias,
        schema.column_names,
        predicate,
        column_types=schema.column_types,
    )
    seq.est_rows = out_rows
    seq.est_cost = cost_seq_scan(
        float(table.row_count),
        float(table.page_count),
        len(conjuncts(predicate)),
        params,
    )
    seq.order = None
    seq.feedback_fingerprint = predicate_fp
    paths.append(seq)

    for index in catalog.indexes_on(node.table):
        leading = index.definition.columns[0]
        seek_eq, seek_low, seek_high, low_strict, high_strict, residual = (
            _split_for_index(predicate, alias, leading)
        )
        order: SortOrder = tuple(
            (ColumnRef(alias, column), True) for column in index.definition.columns
        )
        if seek_eq is not None:
            matching = float(table.row_count) * estimator.selectivity.selectivity(
                Comparison(
                    ComparisonOp.EQ, ColumnRef(alias, leading), Literal(seek_eq)
                )
            )
            scan = IndexScanP(
                node.table,
                alias,
                schema.column_names,
                index.definition.name,
                eq_value=(seek_eq,),
                predicate=residual,
                column_types=schema.column_types,
            )
        elif seek_low is not None or seek_high is not None:
            fraction = _range_fraction(
                estimator, alias, leading,
                seek_low, seek_high, low_strict, high_strict,
            )
            matching = float(table.row_count) * fraction
            scan = IndexScanP(
                node.table,
                alias,
                schema.column_names,
                index.definition.name,
                low=seek_low,
                high=seek_high,
                low_strict=low_strict,
                high_strict=high_strict,
                predicate=residual,
                column_types=schema.column_types,
            )
        else:
            # Full ordered scan: pays for touching everything but delivers
            # the index order -- the quintessential interesting-order path.
            matching = float(table.row_count)
            scan = IndexScanP(
                node.table,
                alias,
                schema.column_names,
                index.definition.name,
                predicate=predicate,
                column_types=schema.column_types,
            )
        scan.est_rows = out_rows
        scan.est_cost = cost_index_scan(
            matching,
            float(table.row_count),
            float(table.page_count),
            index.height,
            index.definition.clustered,
            params,
        )
        scan.order = order
        scan.feedback_fingerprint = predicate_fp
        paths.append(scan)
    return paths


def _split_for_index(
    predicate: Optional[Expr], alias: str, leading_column: str
) -> Tuple[
    Optional[Any], Optional[Any], Optional[Any], bool, bool, Optional[Expr]
]:
    """Split a local predicate into seek bounds for an index.

    Returns ``(eq, low, high, low_strict, high_strict, residual)``.
    Only simple ``col op literal`` conjuncts on the leading index column
    become seek bounds; everything else stays residual.  Strictness is
    tracked per bound: ``>`` / ``<`` produce exclusive bounds (the
    SQLite oracle caught strict bounds silently widening to inclusive,
    so every qualifying row at the boundary leaked through).
    """
    eq_value: Optional[Any] = None
    low: Optional[Any] = None
    high: Optional[Any] = None
    low_strict = False
    high_strict = False
    residual: List[Expr] = []
    for conjunct in conjuncts(predicate):
        bound = _literal_bound(conjunct, alias, leading_column)
        if bound is None:
            residual.append(conjunct)
            continue
        op, value = bound
        if op is ComparisonOp.EQ and eq_value is None:
            eq_value = value
        elif op in (ComparisonOp.GT, ComparisonOp.GE):
            strict = op is ComparisonOp.GT
            if low is None or value > low:
                low, low_strict = value, strict
            elif value == low:
                low_strict = low_strict or strict
        elif op in (ComparisonOp.LT, ComparisonOp.LE):
            strict = op is ComparisonOp.LT
            if high is None or value < high:
                high, high_strict = value, strict
            elif value == high:
                high_strict = high_strict or strict
        else:
            residual.append(conjunct)
    if eq_value is not None:
        low = high = None
        low_strict = high_strict = False
    return eq_value, low, high, low_strict, high_strict, conjoin(residual)


def _literal_bound(
    conjunct: Expr, alias: str, column: str
) -> Optional[Tuple[ComparisonOp, Any]]:
    if not isinstance(conjunct, Comparison):
        return None
    left, right, op = conjunct.left, conjunct.right, conjunct.op
    if isinstance(right, ColumnRef) and isinstance(left, Literal):
        left, right, op = right, left, op.flip()
    if (
        isinstance(left, ColumnRef)
        and isinstance(right, Literal)
        and left.table == alias
        and left.column == column
        and right.value is not None
    ):
        return op, right.value
    return None


def _range_fraction(
    estimator: CardinalityEstimator,
    alias: str,
    column: str,
    low: Optional[Any],
    high: Optional[Any],
    low_strict: bool = False,
    high_strict: bool = False,
) -> float:
    ref = ColumnRef(alias, column)
    fraction = 1.0
    if low is not None:
        op = ComparisonOp.GT if low_strict else ComparisonOp.GE
        fraction *= estimator.selectivity.selectivity(
            Comparison(op, ref, Literal(low))
        )
    if high is not None:
        op = ComparisonOp.LT if high_strict else ComparisonOp.LE
        fraction *= estimator.selectivity.selectivity(
            Comparison(op, ref, Literal(high))
        )
    return fraction
