"""Two-phase (XPRS-style) and communication-aware (Hasan-style) parallel
query optimization (Section 7.1).

* :class:`TwoPhaseOptimizer` -- XPRS [31, 32]: phase one runs ordinary
  single-node cost-based optimization (our System-R enumerator); phase
  two schedules the chosen plan on the machine, inserting the exchanges
  the plan turns out to need.  Communication plays no role in choosing
  the join order.
* :class:`CommAwareOptimizer` -- Hasan [28]: keeps the two-phase shape
  but treats the *partitioning attribute of a data stream as a physical
  property* during join enumeration, so the cost of data repartitioning
  influences join order and plans that reuse an existing partitioning
  win when communication is expensive.

Both return a :class:`ParallelSchedule` whose response time / total work
split reproduces the paper's footnote-5 observation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.catalog.catalog import Catalog
from repro.cost.model import pages_for_rows
from repro.cost.parameters import DEFAULT_PARAMETERS, CostParameters
from repro.errors import OptimizerError
from repro.expr.expressions import ColumnRef, Comparison, ComparisonOp, conjuncts
from repro.logical.querygraph import QueryGraph
from repro.physical.plans import PhysicalOp, walk_physical
from repro.core.parallel.machine import ParallelMachine
from repro.core.systemr.enumerator import EnumeratorConfig, SystemRJoinEnumerator
from repro.stats.propagation import CardinalityEstimator
from repro.stats.summaries import TableStats

# Partitioning state of a stream: hash columns (canonicalized) or None
# (arbitrary / round-robin placement).
PartKey = Optional[Tuple[Tuple[str, str], ...]]


@dataclass
class ParallelSchedule:
    """The outcome of scheduling a plan on a machine.

    Attributes:
        response_time: elapsed-time objective (work/p + comm + startup).
        total_work: sum of all per-node work (the single-node cost plus
            parallel overheads) -- usually *larger* than the serial cost.
        comm_cost: the communication component.
        exchanges: number of repartitioning steps.
        join_order: relation aliases in join order (for reporting).
    """

    response_time: float
    total_work: float
    comm_cost: float
    exchanges: int
    join_order: List[str] = field(default_factory=list)


def _canonical(columns: List[ColumnRef]) -> PartKey:
    return tuple(sorted((ref.table, ref.column) for ref in columns))


class TwoPhaseOptimizer:
    """XPRS-style: single-node plan first, then schedule it.

    Args:
        catalog / graph / stats_by_alias / params: as in the enumerator.
        machine: the parallel machine.
    """

    def __init__(
        self,
        catalog: Catalog,
        graph: QueryGraph,
        stats_by_alias: Dict[str, TableStats],
        machine: ParallelMachine,
        params: CostParameters = DEFAULT_PARAMETERS,
        config: EnumeratorConfig = EnumeratorConfig(),
    ) -> None:
        self.catalog = catalog
        self.graph = graph
        self.stats_by_alias = stats_by_alias
        self.machine = machine
        self.params = params
        self.config = config

    def optimize(self) -> Tuple[PhysicalOp, ParallelSchedule]:
        """Phase 1: serial plan; phase 2: schedule it on the machine."""
        enumerator = SystemRJoinEnumerator(
            self.catalog, self.graph, self.stats_by_alias, self.params, self.config
        )
        plan, _cost = enumerator.best_plan()
        schedule = schedule_plan(plan, self.machine, self.params)
        return plan, schedule


def schedule_plan(
    plan: PhysicalOp, machine: ParallelMachine, params: CostParameters
) -> ParallelSchedule:
    """Phase-2 scheduling of a serial physical plan.

    Every operator's own work is divided across processors; hash joins
    repartition both inputs on the join keys (pipelined operators share
    their producer's partitioning only when the keys match, which a
    serial plan never arranged deliberately -- that is the two-phase
    blind spot Hasan's approach removes).
    """
    from repro.physical.plans import (
        HashJoinP,
        INLJoinP,
        MergeJoinP,
        NLJoinP,
        SeqScanP,
        IndexScanP,
    )

    response = 0.0
    total_work = 0.0
    comm = 0.0
    exchanges = 0
    order: List[str] = []

    # Partitioning delivered by each node, keyed by id(op).
    delivered: Dict[int, PartKey] = {}

    def visit(op: PhysicalOp) -> None:
        nonlocal response, total_work, comm, exchanges
        for child in op.children():
            visit(child)
        own_cost = op.est_cost.total - sum(
            child.est_cost.total for child in op.children()
        )
        own_cost = max(own_cost, 0.0)
        response_part = machine.partitioned_time(own_cost)
        total_work += own_cost + machine.startup_cost_per_processor * (
            machine.processors - 1
        )
        response += response_part
        if isinstance(op, (SeqScanP, IndexScanP)):
            order.append(op.alias)
            delivered[id(op)] = None  # base tables arrive round-robin
            return
        if isinstance(op, (HashJoinP, MergeJoinP)):
            left_key = _canonical(list(op.left_keys))
            right_key = _canonical(list(op.right_keys))
            for child, need in ((op.left, left_key), (op.right, right_key)):
                if delivered.get(id(child)) != need:
                    # Typed stream width, not a guessed constant: the
                    # simulated exchange must move the same pages the
                    # real exchange runtime measures on this plan.
                    width = child.output_schema().row_width_bytes()
                    pages = pages_for_rows(child.est_rows, width, params)
                    cost = machine.repartition_cost(pages)
                    comm += cost
                    response += cost
                    total_work += cost
                    exchanges += 1
            delivered[id(op)] = left_key
            return
        if isinstance(op, (NLJoinP, INLJoinP)):
            # Broadcast the inner side so the outer stays in place.
            inner = op.children()[-1] if isinstance(op, NLJoinP) else None
            rows = inner.est_rows if inner is not None else op.est_rows
            width = (
                inner.output_schema().row_width_bytes()
                if inner is not None
                else op.output_schema().row_width_bytes()
            )
            pages = pages_for_rows(rows, width, params)
            cost = machine.broadcast_cost(pages)
            comm += cost
            response += cost
            total_work += cost
            exchanges += 1
            if isinstance(op, INLJoinP):
                order.append(op.alias)
            delivered[id(op)] = delivered.get(id(op.children()[0]))
            return
        # Order-insensitive unary operators inherit their child's placement.
        children = op.children()
        delivered[id(op)] = delivered.get(id(children[0])) if children else None

    visit(plan)
    return ParallelSchedule(
        response_time=response,
        total_work=total_work,
        comm_cost=comm,
        exchanges=exchanges,
        join_order=order,
    )


@dataclass
class _ParallelEntry:
    """DP entry: response-time cost and plan sketch with a partitioning."""

    cost: float
    comm: float
    partitioning: PartKey
    order: Tuple[str, ...]


class CommAwareOptimizer:
    """Hasan-style enumeration: partitioning as a physical property.

    A linear-join DP where each subset retains one best entry per
    partitioning key.  Joining on columns the stream is already
    partitioned by is free of communication; otherwise the entry pays a
    repartition.  The objective is response time, so when communication
    dominates, the chosen join order diverges from the serial optimum --
    the effect [28] demonstrated.
    """

    def __init__(
        self,
        catalog: Catalog,
        graph: QueryGraph,
        stats_by_alias: Dict[str, TableStats],
        machine: ParallelMachine,
        params: CostParameters = DEFAULT_PARAMETERS,
    ) -> None:
        self.catalog = catalog
        self.graph = graph
        self.machine = machine
        self.params = params
        self.estimator = CardinalityEstimator(stats_by_alias)

    # ------------------------------------------------------------------
    def optimize(self) -> ParallelSchedule:
        """Run the partition-aware DP; returns the best schedule."""
        aliases = self.graph.aliases
        if not aliases:
            raise OptimizerError("query graph has no relations")
        table: Dict[FrozenSet[str], Dict[PartKey, _ParallelEntry]] = {}
        for alias in aliases:
            rows = self.estimator.scan_rows(alias, self.graph)
            heap = self.catalog.table(self.graph.node(alias).table)
            scan_work = float(heap.page_count) + rows * self.params.cpu_tuple_cost
            entry = _ParallelEntry(
                cost=self.machine.partitioned_time(scan_work),
                comm=0.0,
                partitioning=None,
                order=(alias,),
            )
            table[frozenset((alias,))] = {None: entry}
        for size in range(2, len(aliases) + 1):
            for subset_tuple in itertools.combinations(aliases, size):
                subset = frozenset(subset_tuple)
                entries: Dict[PartKey, _ParallelEntry] = {}
                for alias in subset_tuple:
                    rest = subset - {alias}
                    if rest not in table:
                        continue
                    if not self.graph.connected(rest, {alias}):
                        continue
                    for entry in table[rest].values():
                        candidate = self._extend(entry, rest, alias, subset)
                        if candidate is None:
                            continue
                        existing = entries.get(candidate.partitioning)
                        if existing is None or candidate.cost < existing.cost:
                            entries[candidate.partitioning] = candidate
                if entries:
                    table[subset] = entries
        full = table.get(frozenset(aliases))
        if not full:
            raise OptimizerError("partition-aware DP produced no plan")
        best = min(full.values(), key=lambda entry: entry.cost)
        return ParallelSchedule(
            response_time=best.cost,
            total_work=best.cost * self.machine.processors,
            comm_cost=best.comm,
            exchanges=0,
            join_order=list(best.order),
        )

    # ------------------------------------------------------------------
    def _alias_width(self, alias: str) -> int:
        """Stored row width of one relation, from its schema."""
        return self.catalog.schema(
            self.graph.node(alias).table
        ).row_width_bytes

    # ------------------------------------------------------------------
    def _extend(
        self,
        entry: _ParallelEntry,
        left_set: FrozenSet[str],
        alias: str,
        subset: FrozenSet[str],
    ) -> Optional[_ParallelEntry]:
        predicate = self.graph.connecting_predicate(left_set, {alias})
        pairs: List[Tuple[ColumnRef, ColumnRef]] = []
        for conjunct in conjuncts(predicate):
            if (
                isinstance(conjunct, Comparison)
                and conjunct.op is ComparisonOp.EQ
                and isinstance(conjunct.left, ColumnRef)
                and isinstance(conjunct.right, ColumnRef)
            ):
                l, r = conjunct.left, conjunct.right
                if l.table in left_set and r.table == alias:
                    pairs.append((l, r))
                elif r.table in left_set and l.table == alias:
                    pairs.append((r, l))
        if not pairs:
            return None
        left_rows = self.estimator.relation_set_cardinality(left_set, self.graph)
        right_rows = self.estimator.scan_rows(alias, self.graph)
        out_rows = self.estimator.relation_set_cardinality(subset, self.graph)
        left_key = _canonical([l for l, _r in pairs])
        right_key = _canonical([r for _l, r in pairs])
        comm = 0.0
        # Typed widths from the catalog (joined streams carry every
        # table's columns), replacing the old guessed 32-byte rows.
        left_width = float(
            sum(self._alias_width(member) for member in left_set)
        )
        right_width = float(self._alias_width(alias))
        # Left side: already partitioned on the join columns?
        if entry.partitioning != left_key:
            pages = pages_for_rows(left_rows, left_width, self.params)
            comm += self.machine.repartition_cost(pages)
        # Right side: scans always need partitioning on the join key.
        right_pages = pages_for_rows(right_rows, right_width, self.params)
        comm += self.machine.repartition_cost(right_pages)
        heap = self.catalog.table(self.graph.node(alias).table)
        join_work = (
            float(heap.page_count)
            + (left_rows + right_rows) * self.params.cpu_hash_cost
            + out_rows * self.params.cpu_tuple_cost
        )
        cost = entry.cost + self.machine.partitioned_time(join_work) + comm
        # Output of a hash join is partitioned on the (left) join key.
        return _ParallelEntry(
            cost=cost,
            comm=entry.comm + comm,
            partitioning=left_key,
            order=entry.order + (alias,),
        )
