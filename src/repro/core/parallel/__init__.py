"""Parallel and distributed query optimization (Section 7.1)."""

from repro.core.parallel.machine import ParallelMachine
from repro.core.parallel.twophase import (
    CommAwareOptimizer,
    ParallelSchedule,
    TwoPhaseOptimizer,
    schedule_plan,
)

__all__ = [
    "CommAwareOptimizer",
    "ParallelMachine",
    "ParallelSchedule",
    "TwoPhaseOptimizer",
    "schedule_plan",
]
