"""Exchange placement: phase two of two-phase optimization, made real.

The two-phase machinery in :mod:`repro.core.parallel.twophase` *prices*
parallel schedules (response time = work/p + startup + communication,
Section 7.1) but until now only simulated them.  This pass runs after
the serial plan is physicalized and rewrites it into an executable
parallel plan: around each parallelizable operator it places the
distributing :class:`~repro.physical.plans.ExchangeP` operators stage 1
of the runtime partitions on, and a
:class:`~repro.physical.plans.GatherP` that marks the region boundary
where worker streams merge back into one (see
:mod:`repro.engine.parallel`).

The degree of parallelism is chosen per region with the same
:class:`~repro.core.parallel.machine.ParallelMachine` response-time
model the simulator uses: the operator's own estimated work is divided
across ``p`` workers, startup is paid per extra worker, and the
exchange's communication is priced by scheme (repartition moves
``(p-1)/p`` of the pages, broadcast replicates ``p-1`` copies).  A
region is only created when some ``p <= max_dop`` beats the serial
response time -- the startup term keeps tiny operators serial, exactly
the property the paper ascribes to the two-phase scheduler.

Supported region shapes mirror the runtime's worker twins:

* hash join (INNER / LEFT OUTER / SEMI / ANTI): both sides hash-
  repartitioned on the join keys, or the probe round-robin with the
  build broadcast when the build side is small enough that replication
  is cheaper than repartitioning the probe;
* hash aggregate with group keys: input hash-partitioned on the keys;
* distinct: input hash-partitioned on all columns;
* expensive UDF filters: input round-robin (embarrassingly parallel).

Plans produced here remain valid on every engine: the legacy and
serial streaming engines treat Exchange/Gather as accounting
pass-throughs, so ``parallel_mode=False`` executes the same tree as the
bit-identical differential oracle.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.parallel.machine import ParallelMachine
from repro.cost.model import pages_for_rows
from repro.cost.parameters import CostParameters
from repro.logical.operators import JoinKind
from repro.physical.plans import (
    CheckP,
    DistinctP,
    ExchangeP,
    FilterP,
    GatherP,
    HashAggP,
    HashJoinP,
    PhysicalOp,
    ProjectP,
    StreamAggP,
    UdfFilterP,
)
from repro.physical.properties import Partitioning, PartitionScheme

_PARALLEL_JOIN_KINDS = (
    JoinKind.INNER,
    JoinKind.LEFT_OUTER,
    JoinKind.SEMI,
    JoinKind.ANTI,
)

# Builds at or below this row count are broadcast rather than
# hash-repartitioned: hash-splitting a tiny key domain (e.g. a 50-row
# dimension) lands whole keys on few workers and skews the partitions,
# while replicating a small build is cheap and keeps the round-robin
# probe perfectly balanced.
_BROADCAST_BUILD_ROWS = 1024.0

# Child-plan attribute names across the physical operator zoo; placement
# rewrites children in place, bottom-up.
_CHILD_ATTRS = ("child", "left", "right", "outer", "source")


def _bare_exchange(node: object) -> bool:
    """A distributing exchange that is *not* a gather.

    A bare exchange child means this operator already sits inside a
    placed region, so it must stay serial.  A :class:`GatherP` child is
    different: the gather is a finished region whose merged output is
    an ordinary serial stream, and placing a new exchange above it
    composes regions sequentially (stage 1 of the outer region drains
    the inner gather through the engine).
    """
    return isinstance(node, ExchangeP) and not isinstance(node, GatherP)


def place_exchanges(
    plan: PhysicalOp, params: CostParameters, max_dop: int
) -> PhysicalOp:
    """Rewrite a serial physical plan with executable exchange regions.

    Idempotent on already-parallel plans (existing gathers are left
    untouched) and a no-op when no operator's modeled response time
    improves under any degree up to ``max_dop``.
    """
    if max_dop <= 1:
        return plan
    return _visit(plan, params, max_dop)


def _visit(node: PhysicalOp, params: CostParameters, max_dop: int) -> PhysicalOp:
    if isinstance(node, (GatherP, ExchangeP)):
        # Already placed (hand-built parallel plan): leave the region
        # alone but keep walking below it.
        for attr in _CHILD_ATTRS:
            child = getattr(node, attr, None)
            if isinstance(child, PhysicalOp):
                setattr(node, attr, _visit(child, params, max_dop))
        return node
    for attr in _CHILD_ATTRS:
        child = getattr(node, attr, None)
        if isinstance(child, PhysicalOp):
            setattr(node, attr, _visit(child, params, max_dop))
    if isinstance(node, CheckP):
        # CHECK operators watch a serial stream's cardinality for the
        # adaptive replanner; never absorb them into a region.
        return node
    if isinstance(node, HashJoinP):
        return _maybe_join(node, params, max_dop) or node
    if isinstance(node, HashAggP) and not isinstance(node, StreamAggP):
        if node.keys and not _bare_exchange(node.child):
            return _maybe_keyed(node, list(node.keys), params, max_dop) or node
        return node
    if isinstance(node, DistinctP):
        if not _bare_exchange(node.child):
            return _maybe_distinct(node, params, max_dop) or node
        return node
    if isinstance(node, UdfFilterP):
        if not _bare_exchange(node.child):
            return _maybe_udf_filter(node, params, max_dop) or node
        return node
    if isinstance(node, (ProjectP, FilterP)) and isinstance(
        node.child, GatherP
    ):
        return _absorb_unary(node, node.child)
    return node


def _absorb_unary(node: PhysicalOp, gather: GatherP) -> GatherP:
    """Pull a pipelined unary operator inside the region below it.

    ``Project(Gather(root))`` becomes ``Gather(Project(root))``: the
    per-row projection/filter work runs on the workers instead of the
    serial coordinator.  Both operators are tag-preserving per-row
    maps, so the gather's deterministic merge is unaffected.
    """
    node.child = gather.child
    gather.child = node
    gather.est_rows = node.est_rows
    gather.est_cost = node.est_cost
    gather.order = node.order
    return gather


# ----------------------------------------------------------------------
# Costing
# ----------------------------------------------------------------------
def _own_work(node: PhysicalOp) -> float:
    """The operator's own estimated work (children subtracted)."""
    total = node.est_cost.total - sum(
        child.est_cost.total for child in node.children()
    )
    return max(0.0, total)


def _pages(node: PhysicalOp, params: CostParameters) -> float:
    width = node.output_schema().row_width_bytes()
    return pages_for_rows(max(0.0, node.est_rows), width, params)


def _machine(p: int, params: CostParameters) -> ParallelMachine:
    return ParallelMachine(
        processors=p,
        comm_cost_per_page=params.comm_cost_per_page,
        startup_cost_per_processor=params.startup_cost_per_operator,
    )


def _candidate_dops(max_dop: int) -> List[int]:
    dops = []
    p = 2
    while p <= max_dop:
        dops.append(p)
        p *= 2
    if max_dop > 1 and max_dop not in dops:
        dops.append(max_dop)
    return dops


# ----------------------------------------------------------------------
# Region builders
# ----------------------------------------------------------------------
def _hash_exchange(
    child: PhysicalOp, keys, degree: int
) -> Optional[ExchangeP]:
    schema = child.output_schema()
    try:
        positions = tuple(schema.position(ref) for ref in keys)
    except Exception:  # ambiguous or missing column: stay serial
        return None
    exchange = ExchangeP(
        child,
        Partitioning(PartitionScheme.HASH, tuple(keys), degree=degree),
    )
    exchange.key_positions = positions
    exchange.est_rows = child.est_rows
    exchange.est_cost = child.est_cost
    return exchange


def _plain_exchange(
    child: PhysicalOp, scheme: PartitionScheme, degree: int
) -> ExchangeP:
    exchange = ExchangeP(child, Partitioning(scheme, degree=degree))
    exchange.est_rows = child.est_rows
    exchange.est_cost = child.est_cost
    return exchange


def _maybe_join(
    node: HashJoinP, params: CostParameters, max_dop: int
) -> Optional[PhysicalOp]:
    if node.kind not in _PARALLEL_JOIN_KINDS:
        return None
    if _bare_exchange(node.left) or _bare_exchange(node.right):
        return None
    work = _own_work(node)
    if work <= 0.0:
        return None
    probe_pages = _pages(node.left, params)
    build_pages = _pages(node.right, params)
    serial = work
    best: Optional[Tuple[float, int, str]] = None
    for p in _candidate_dops(max_dop):
        machine = _machine(p, params)
        repart = machine.partitioned_time(work) + machine.repartition_cost(
            probe_pages
        ) + machine.repartition_cost(build_pages)
        # Broadcasting the build keeps the probe's placement free but
        # replicates the build to every worker (and its build work).
        broadcast = (
            machine.partitioned_time(work)
            + machine.repartition_cost(probe_pages)
            + machine.broadcast_cost(build_pages)
        )
        candidates = ((repart, "hash"), (broadcast, "broadcast"))
        if max(0.0, node.right.est_rows) <= _BROADCAST_BUILD_ROWS:
            candidates = ((broadcast, "broadcast"),)
        for response, strategy in candidates:
            if response < serial and (best is None or response < best[0]):
                best = (response, p, strategy)
    if best is None:
        return None
    _response, dop, strategy = best
    if strategy == "hash":
        left_ex = _hash_exchange(node.left, node.left_keys, dop)
        right_ex = _hash_exchange(node.right, node.right_keys, dop)
        if left_ex is None or right_ex is None:
            return None
    else:
        left_ex = _plain_exchange(node.left, PartitionScheme.ROUND_ROBIN, dop)
        right_ex = _plain_exchange(node.right, PartitionScheme.BROADCAST, dop)
    node.left = left_ex
    node.right = right_ex
    return GatherP(node, dop)


def _keyed_dop(
    node: PhysicalOp, params: CostParameters, max_dop: int
) -> Optional[int]:
    """Best degree for a single-input hash-repartitioned region."""
    work = _own_work(node)
    if work <= 0.0:
        return None
    input_pages = _pages(node.children()[0], params)
    best: Optional[Tuple[float, int]] = None
    for p in _candidate_dops(max_dop):
        machine = _machine(p, params)
        response = machine.partitioned_time(work) + machine.repartition_cost(
            input_pages
        )
        if response < work and (best is None or response < best[0]):
            best = (response, p)
    return best[1] if best is not None else None


def _maybe_keyed(
    node: HashAggP, keys, params: CostParameters, max_dop: int
) -> Optional[PhysicalOp]:
    dop = _keyed_dop(node, params, max_dop)
    if dop is None:
        return None
    exchange = _hash_exchange(node.child, keys, dop)
    if exchange is None:
        return None
    node.child = exchange
    return GatherP(node, dop)


def _maybe_distinct(
    node: DistinctP, params: CostParameters, max_dop: int
) -> Optional[PhysicalOp]:
    dop = _keyed_dop(node, params, max_dop)
    if dop is None:
        return None
    schema = node.child.output_schema()
    exchange = ExchangeP(
        node.child,
        Partitioning(PartitionScheme.HASH, degree=dop),
    )
    # Distinct partitions on the whole row, so equal rows (and only
    # equal rows) meet in one worker.
    exchange.key_positions = tuple(range(schema.arity))
    exchange.est_rows = node.child.est_rows
    exchange.est_cost = node.child.est_cost
    node.child = exchange
    return GatherP(node, dop)


def _maybe_udf_filter(
    node: UdfFilterP, params: CostParameters, max_dop: int
) -> Optional[PhysicalOp]:
    work = _own_work(node)
    if work <= 0.0:
        return None
    input_pages = _pages(node.child, params)
    best: Optional[Tuple[float, int]] = None
    for p in _candidate_dops(max_dop):
        machine = _machine(p, params)
        response = machine.partitioned_time(work) + machine.repartition_cost(
            input_pages
        )
        if response < work and (best is None or response < best[0]):
            best = (response, p)
    if best is None:
        return None
    dop = best[1]
    node.child = _plain_exchange(node.child, PartitionScheme.ROUND_ROBIN, dop)
    return GatherP(node, dop)
