"""The parallel machine model (Section 7.1).

A shared-nothing machine with ``processors`` identical nodes.  Work that
an operator performs can be divided across nodes when its input is
partitioned; moving rows between nodes (repartitioning, broadcasting)
costs communication.  Response time is work divided by the usable
degree of parallelism plus the communication paid -- the quantity
parallel databases optimize, in contrast to total work (the paper's
footnote 5: parallel execution reduces response time and often
*increases* total work).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cost.parameters import DEFAULT_PARAMETERS, CostParameters


@dataclass(frozen=True)
class ParallelMachine:
    """A homogeneous shared-nothing cluster.

    Attributes:
        processors: number of nodes.
        comm_cost_per_page: cost of shipping one page between nodes.
        startup_cost_per_processor: per-node task startup overhead --
            the term that makes tiny operators not worth parallelizing.
    """

    processors: int = 4
    comm_cost_per_page: float = 2.0
    startup_cost_per_processor: float = 0.5

    def __post_init__(self) -> None:
        if self.processors < 1:
            raise ValueError("a machine needs at least one processor")

    def partitioned_time(self, work: float) -> float:
        """Response time of perfectly partitionable work."""
        return work / self.processors + self.startup_cost_per_processor * (
            self.processors - 1
        )

    def repartition_cost(self, pages: float) -> float:
        """Communication cost of hash-repartitioning a stream.

        Each row moves to its hash-target node; on average a fraction
        (p-1)/p of pages crosses the network.
        """
        if self.processors == 1:
            return 0.0
        moving = pages * (self.processors - 1) / self.processors
        return max(0.0, moving) * self.comm_cost_per_page

    def broadcast_cost(self, pages: float) -> float:
        """Communication cost of replicating a stream to every node."""
        if self.processors == 1:
            return 0.0
        return pages * (self.processors - 1) * self.comm_cost_per_page
