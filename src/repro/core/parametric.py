"""Parametric and dynamic query optimization (paper Section 7.4).

The paper points to "being able to defer generation of complete plans
subject to availability of runtime information" ([19] dynamic plans,
[33] parametric optimization).  This module implements the parametric
flavour for one numeric query parameter (e.g. the constant of a range
predicate):

* optimize the query at sampled parameter values;
* collapse adjacent samples that choose the same plan into *regions*,
  yielding a plan diagram: parameter range -> optimal plan;
* wrap the regions in a :class:`ChoosePlan` that picks the right plan
  when the actual value arrives at run time -- Graefe/Ward's
  choose-plan operator.

The benchmark (E14) shows the claim that motivates all this: a single
static plan, optimal at one parameter value, can be far from optimal
elsewhere in the range.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.catalog.catalog import Catalog
from repro.cost.model import Cost
from repro.cost.parameters import DEFAULT_PARAMETERS, CostParameters
from repro.errors import OptimizerError
from repro.expr.expressions import (
    ColumnRef,
    Comparison,
    ComparisonOp,
    Expr,
    Literal,
)
from repro.logical.querygraph import QueryGraph
from repro.physical.plans import PhysicalOp
from repro.core.systemr.enumerator import EnumeratorConfig, SystemRJoinEnumerator
from repro.stats.summaries import TableStats


@dataclass(frozen=True)
class ParameterMarker:
    """Identifies the parameterized predicate: ``column op ?``."""

    column: ColumnRef
    op: ComparisonOp


def _plan_signature(plan: PhysicalOp) -> str:
    """A structural signature: operator types plus the tables/indexes
    they touch, in pre-order.  Parameter constants are deliberately
    excluded so plans differing only in the bound value compare equal
    (that is what makes regions mergeable)."""
    parts: List[str] = []

    def visit(node: PhysicalOp) -> None:
        piece = type(node).__name__
        for attribute in ("table", "alias", "index_name"):
            value = getattr(node, attribute, None)
            if value is not None:
                piece += f":{value}"
        parts.append(piece)
        for child in node.children():
            visit(child)

    visit(plan)
    return "|".join(parts)


@dataclass
class PlanRegion:
    """One region of the plan diagram: a parameter interval and its plan."""

    low: float
    high: float
    plan: PhysicalOp
    signature: str
    cost_at_samples: Dict[float, float] = field(default_factory=dict)

    def contains(self, value: float) -> bool:
        """Whether a parameter value falls in this region."""
        return self.low <= value <= self.high


@dataclass
class ChoosePlan:
    """A dynamic plan: regions plus the run-time selection step ([19]).

    Attributes:
        marker: which predicate the parameter feeds.
        regions: the plan diagram, ordered by interval.
    """

    marker: ParameterMarker
    regions: List[PlanRegion]

    def choose(self, value: float) -> PhysicalOp:
        """The plan for an actual parameter value (nearest region when
        the value falls outside every sampled interval)."""
        for region in self.regions:
            if region.contains(value):
                return region.plan
        if not self.regions:
            raise OptimizerError("empty plan diagram")
        if value < self.regions[0].low:
            return self.regions[0].plan
        return self.regions[-1].plan

    @property
    def distinct_plans(self) -> int:
        """Number of structurally distinct plans across the diagram."""
        return len({region.signature for region in self.regions})


class ParametricOptimizer:
    """Optimizes a query graph across a numeric parameter range.

    The graph must contain exactly one predicate of the form
    ``marker.column marker.op <literal>``; its literal is replaced by
    each sampled value before enumeration.

    Args:
        catalog / stats_by_alias / params / config: as in the
            System-R enumerator.
        graph_builder: builds the query graph for a parameter value
            (called per sample, so local predicates re-route correctly).
    """

    def __init__(
        self,
        catalog: Catalog,
        graph_builder: Callable[[float], QueryGraph],
        stats_by_alias: Dict[str, TableStats],
        marker: ParameterMarker,
        params: CostParameters = DEFAULT_PARAMETERS,
        config: EnumeratorConfig = EnumeratorConfig(),
    ) -> None:
        self.catalog = catalog
        self.graph_builder = graph_builder
        self.stats_by_alias = stats_by_alias
        self.marker = marker
        self.params = params
        self.config = config

    # ------------------------------------------------------------------
    def optimize_at(self, value: float) -> Tuple[PhysicalOp, Cost]:
        """A static plan optimized for one parameter value."""
        graph = self.graph_builder(value)
        enumerator = SystemRJoinEnumerator(
            self.catalog, graph, self.stats_by_alias, self.params, self.config
        )
        return enumerator.best_plan()

    def plan_diagram(self, samples: Sequence[float]) -> ChoosePlan:
        """Optimize at each sample and merge same-plan neighbours.

        Raises:
            OptimizerError: on an empty sample list.
        """
        if not samples:
            raise OptimizerError("need at least one parameter sample")
        ordered = sorted(samples)
        regions: List[PlanRegion] = []
        for value in ordered:
            plan, cost = self.optimize_at(value)
            signature = _plan_signature(plan)
            if regions and regions[-1].signature == signature:
                regions[-1].high = value
                regions[-1].cost_at_samples[value] = cost.total
            else:
                regions.append(
                    PlanRegion(
                        low=value,
                        high=value,
                        plan=plan,
                        signature=signature,
                        cost_at_samples={value: cost.total},
                    )
                )
        return ChoosePlan(marker=self.marker, regions=regions)

    def static_regret(
        self, static_value: float, samples: Sequence[float]
    ) -> List[Tuple[float, float, float]]:
        """Observed cost of the single plan optimized at ``static_value``
        when the parameter actually takes each sampled value, vs the
        per-value optimal plan.  Both plans are *executed* with the
        actual value bound, and the executor's observed counters are
        priced in the cost model's units.
        """
        from repro.engine.context import ExecContext
        from repro.engine.executor import execute

        static_plan, _cost = self.optimize_at(static_value)
        results = []
        for value in samples:
            bound_static = bind_parameter(static_plan, self.marker, value)
            optimal_plan, _ = self.optimize_at(value)
            costs = []
            for plan in (bound_static, optimal_plan):
                context = ExecContext(self.params)
                execute(plan, self.catalog, context)
                costs.append(context.counters.observed_cost(self.params))
            results.append((value, costs[0], costs[1]))
        return results


def bind_parameter(
    plan: PhysicalOp, marker: ParameterMarker, value: float
) -> PhysicalOp:
    """A copy of ``plan`` with the parameter's constant replaced.

    Rewrites (a) predicate comparisons matching the marker and (b)
    index-scan seek bounds on the marker's column.  This is the run-time
    binding step of a choose-plan operator.
    """
    import copy

    def rewrite_expr(expr: Optional[Expr]) -> Optional[Expr]:
        if expr is None:
            return None
        if (
            isinstance(expr, Comparison)
            and expr.op is marker.op
            and expr.left == marker.column
            and isinstance(expr.right, Literal)
        ):
            return Comparison(expr.op, expr.left, Literal(value))
        children = expr.children()
        if not children:
            return expr
        new_children = [rewrite_expr(child) for child in children]
        if all(new is old for new, old in zip(new_children, children)):
            return expr
        return expr.replace_children(new_children)

    cloned = copy.copy(plan)
    children = plan.children()
    if children:
        new_children = [
            bind_parameter(child, marker, value) for child in children
        ]
        for attribute in ("child", "left", "right", "outer"):
            if hasattr(cloned, attribute):
                old = getattr(plan, attribute)
                for new, original in zip(new_children, children):
                    if old is original:
                        setattr(cloned, attribute, new)
    for attribute in ("predicate", "residual"):
        if hasattr(cloned, attribute):
            setattr(cloned, attribute, rewrite_expr(getattr(plan, attribute)))
    # Index-scan bounds on the marker column.
    from repro.physical.plans import IndexScanP

    if isinstance(cloned, IndexScanP):
        index_leading = cloned.index_name  # bounds apply to leading column
        if marker.op in (ComparisonOp.LT, ComparisonOp.LE) and cloned.high is not None:
            cloned.high = value
        if marker.op in (ComparisonOp.GT, ComparisonOp.GE) and cloned.low is not None:
            cloned.low = value
        if marker.op is ComparisonOp.EQ and cloned.eq_value is not None:
            cloned.eq_value = (value,)
    return cloned


def _leaf_order(plan: PhysicalOp) -> List[str]:
    """Base-relation aliases in the plan's left-to-right leaf order."""
    order: List[str] = []

    def visit(node: PhysicalOp) -> None:
        alias = getattr(node, "alias", None)
        children = node.children()
        for child in children:
            visit(child)
        if alias is not None and not children:
            order.append(alias)
        elif alias is not None and children:
            order.append(alias)  # INL join carries its inner alias

    visit(plan)
    seen = set()
    unique = []
    for alias in order:
        if alias not in seen:
            seen.add(alias)
            unique.append(alias)
    return unique
