"""The CUBE operator (paper Section 7.4, [24]).

The paper closes with decision-support SQL extensions whose purpose is
to give the *optimizer* something to work with; CUBE generalizes
GROUP BY to all 2^d combinations of d grouping columns (cross-tabs and
sub-totals in one result, with ``ALL`` marking the rolled-up columns).

Two computation strategies are implemented, because the interesting
systems question is the same one as everywhere else in the paper --
how much work does a smarter plan save:

* **naive**: run one independent GROUP BY per grouping set over the
  base table (2^d scans/aggregations);
* **rollup-from-finest**: aggregate the base table once at the finest
  granularity, then compute every coarser grouping set from its parent
  cuboid -- valid for decomposable aggregates, and the standard
  practical optimization.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.catalog.catalog import Catalog
from repro.errors import PlanError
from repro.expr.aggregates import AggFunc, AggregateCall

# The marker for a rolled-up dimension in cube output rows.
ALL = "*ALL*"

_COMBINE = {
    AggFunc.COUNT: lambda a, b: a + b,
    AggFunc.SUM: lambda a, b: a + b,
    AggFunc.MIN: min,
    AggFunc.MAX: max,
}


@dataclass
class CubeResult:
    """The materialized cube.

    Attributes:
        dimensions: grouping column names, in order.
        aggregate_names: output aggregate column names.
        rows: tuples of (d1, ..., dk, agg1, ..., aggm) with ``ALL``
            in rolled-up dimension positions.
        work_rows: rows processed while computing (the strategy metric).
    """

    dimensions: List[str]
    aggregate_names: List[str]
    rows: List[Tuple[Any, ...]]
    work_rows: int

    def slice(self, **bindings: Any) -> List[Tuple[Any, ...]]:
        """Rows of one cuboid: named dimensions bound, the rest ALL.

        ``cube.slice(d1=3)`` returns the (d1) cuboid's row for value 3.
        """
        positions = {name: i for i, name in enumerate(self.dimensions)}
        for name in bindings:
            if name not in positions:
                raise PlanError(f"unknown cube dimension {name!r}")
        wanted = []
        for row in self.rows:
            ok = True
            for i, name in enumerate(self.dimensions):
                expected = bindings.get(name, ALL)
                if expected is ALL:
                    if row[i] != ALL:
                        ok = False
                        break
                elif row[i] != expected:
                    ok = False
                    break
            if ok:
                wanted.append(row)
        return wanted


def _validate(aggregates: Sequence[AggregateCall]) -> None:
    for call in aggregates:
        if call.distinct:
            raise PlanError("CUBE does not support DISTINCT aggregates")
        if call.func is AggFunc.AVG:
            raise PlanError(
                "decompose AVG into SUM and COUNT before cubing"
            )


def _group(
    rows: List[Tuple[Any, ...]],
    key_positions: Sequence[int],
    value_positions: Sequence[int],
    aggregates: Sequence[AggregateCall],
) -> Dict[Tuple[Any, ...], List[Any]]:
    """Base-table aggregation: COUNT counts rows (non-null for COUNT(col)),
    SUM/MIN/MAX fold values."""
    groups: Dict[Tuple[Any, ...], List[Any]] = {}
    for row in rows:
        key = tuple(row[p] for p in key_positions)
        state = groups.get(key)
        if state is None:
            state = [None] * len(aggregates)
            groups[key] = state
        for index, call in enumerate(aggregates):
            if call.func is AggFunc.COUNT:
                if call.is_star or row[value_positions[index]] is not None:
                    state[index] = (state[index] or 0) + 1
                continue
            value = row[value_positions[index]]
            if value is None:
                continue
            if state[index] is None:
                state[index] = value
            else:
                state[index] = _COMBINE[call.func](state[index], value)
    return groups


def compute_cube_naive(
    catalog: Catalog,
    table: str,
    dimensions: Sequence[str],
    aggregates: Sequence[AggregateCall],
) -> CubeResult:
    """One independent aggregation pass per grouping set (2^d passes)."""
    _validate(aggregates)
    heap = catalog.table(table)
    schema = heap.schema
    dim_positions = [schema.column_index(name) for name in dimensions]
    agg_positions = [
        schema.column_index(next(iter(call.arg.columns())).column)
        if call.arg is not None
        else -1
        for call in aggregates
    ]
    base = [tuple(row) for row in heap.rows()]
    out: List[Tuple[Any, ...]] = []
    work = 0
    for mask in range(2 ** len(dimensions)):
        kept = [i for i in range(len(dimensions)) if mask & (1 << i)]
        groups = _group(
            base,
            [dim_positions[i] for i in kept],
            agg_positions,
            aggregates,
        )
        work += len(base)
        for key, state in groups.items():
            full_key: List[Any] = [ALL] * len(dimensions)
            for position, i in enumerate(kept):
                full_key[i] = key[position]
            out.append(tuple(full_key) + tuple(state))
    return CubeResult(
        dimensions=list(dimensions),
        aggregate_names=[call.alias for call in aggregates],
        rows=out,
        work_rows=work,
    )


def compute_cube_rollup(
    catalog: Catalog,
    table: str,
    dimensions: Sequence[str],
    aggregates: Sequence[AggregateCall],
) -> CubeResult:
    """Aggregate once at the finest granularity, then roll up.

    Each coarser cuboid is computed from a parent cuboid with one more
    dimension, never from the base table -- the data-reduction effect
    of early aggregation once more (compare Section 4.1.3).
    """
    _validate(aggregates)
    heap = catalog.table(table)
    schema = heap.schema
    dim_positions = [schema.column_index(name) for name in dimensions]
    agg_positions = [
        schema.column_index(next(iter(call.arg.columns())).column)
        if call.arg is not None
        else -1
        for call in aggregates
    ]
    base = [tuple(row) for row in heap.rows()]
    d = len(dimensions)
    work = len(base)

    # Finest cuboid from the base table.
    finest = _group(base, dim_positions, agg_positions, aggregates)
    cuboids: Dict[int, Dict[Tuple[Any, ...], List[Any]]] = {
        (2 ** d - 1): finest
    }

    # Every coarser cuboid from a parent with exactly one more bit set.
    for mask in sorted(range(2 ** d - 1), key=lambda m: -bin(m).count("1")):
        parent_mask = None
        for bit in range(d):
            candidate = mask | (1 << bit)
            if candidate != mask and candidate in cuboids:
                parent_mask = candidate
                dropped_bit = bit
                break
        assert parent_mask is not None
        parent = cuboids[parent_mask]
        parent_bits = [i for i in range(d) if parent_mask & (1 << i)]
        kept_positions = [
            position
            for position, i in enumerate(parent_bits)
            if i != dropped_bit
        ]
        groups: Dict[Tuple[Any, ...], List[Any]] = {}
        for key, state in parent.items():
            work += 1
            new_key = tuple(key[p] for p in kept_positions)
            existing = groups.get(new_key)
            if existing is None:
                groups[new_key] = list(state)
            else:
                for index, call in enumerate(aggregates):
                    if state[index] is None:
                        continue
                    if existing[index] is None:
                        existing[index] = state[index]
                    else:
                        # COUNT partials merge by addition, which is what
                        # _COMBINE maps COUNT to.
                        existing[index] = _COMBINE[call.func](
                            existing[index], state[index]
                        )
        cuboids[mask] = groups

    out: List[Tuple[Any, ...]] = []
    for mask, groups in cuboids.items():
        kept = [i for i in range(d) if mask & (1 << i)]
        for key, state in groups.items():
            full_key: List[Any] = [ALL] * d
            for position, i in enumerate(kept):
                full_key[i] = key[position]
            out.append(tuple(full_key) + tuple(state))
    return CubeResult(
        dimensions=list(dimensions),
        aggregate_names=[call.alias for call in aggregates],
        rows=out,
        work_rows=work,
    )
