"""The memo: groups of logically equivalent expressions (Section 6.2).

Volcano/Cascades keeps a table of optimization results keyed by the
expression's *logical* properties and the *physical* properties required
of it ("memoization").  For join optimization the logical property that
identifies a group is the set of relations joined -- every way of
joining the same set produces the same logical result, so all such
multi-expressions share one group.

A group records:

* its logical multi-expressions (leaf access or a join of two groups),
* its winners: the best physical plan found per required-property key,
* exploration state (transformation rules are fired once per group).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.cost.model import Cost
from repro.physical.plans import PhysicalOp
from repro.physical.properties import SortOrder


@dataclass(frozen=True)
class MExpr:
    """A logical multi-expression: a leaf or a join of two groups.

    Attributes:
        kind: ``"get"`` or ``"join"``.
        alias: the relation alias (leaf only).
        left / right: child group keys (join only).
    """

    kind: str
    alias: Optional[str] = None
    left: Optional[FrozenSet[str]] = None
    right: Optional[FrozenSet[str]] = None

    def __post_init__(self) -> None:
        if self.kind == "get":
            assert self.alias is not None
        else:
            assert self.left is not None and self.right is not None


@dataclass
class Winner:
    """The best plan found for (group, required physical properties)."""

    plan: PhysicalOp
    cost: Cost


@dataclass
class Group:
    """One equivalence class of the memo."""

    aliases: FrozenSet[str]
    mexprs: List[MExpr] = field(default_factory=list)
    mexpr_set: Set[MExpr] = field(default_factory=set)
    winners: Dict[Optional[SortOrder], Optional[Winner]] = field(
        default_factory=dict
    )
    explored: bool = False

    def add(self, mexpr: MExpr) -> bool:
        """Add a multi-expression; returns False if already present."""
        if mexpr in self.mexpr_set:
            return False
        self.mexpr_set.add(mexpr)
        self.mexprs.append(mexpr)
        return True


class Memo:
    """The table of groups, keyed by relation set."""

    def __init__(self) -> None:
        self._groups: Dict[FrozenSet[str], Group] = {}

    def group(self, aliases: FrozenSet[str]) -> Group:
        """The group for a relation set, created on demand."""
        existing = self._groups.get(aliases)
        if existing is None:
            existing = Group(aliases=aliases)
            self._groups[aliases] = existing
        return existing

    def has_group(self, aliases: FrozenSet[str]) -> bool:
        """Whether a group already exists for the relation set."""
        return aliases in self._groups

    @property
    def group_count(self) -> int:
        """Number of groups materialized."""
        return len(self._groups)

    @property
    def mexpr_count(self) -> int:
        """Total logical multi-expressions across groups."""
        return sum(len(group.mexprs) for group in self._groups.values())

    def groups(self) -> List[Group]:
        """All groups (no particular order)."""
        return list(self._groups.values())
