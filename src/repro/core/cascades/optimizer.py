"""The Cascades-style top-down optimizer (Section 6.2).

Differences from the System-R enumerator, mirroring the paper's list:

* no separate rewrite/plan phases -- transformation rules (join
  commutativity and associativity) and implementation rules (scan and
  join algorithms) live in one goal-driven search;
* dynamic programming runs *top-down* with memoization: a group is
  optimized for a required physical property only once, and the result
  (the "winner") is looked up afterwards;
* physical requirements flow downward: a merge join *requests* sorted
  inputs from its children rather than hoping a sorted plan was retained
  (System R's interesting orders seen from the other side);
* rule applications are ordered by a programmable *promise* score, and
  branch-and-bound pruning abandons alternatives that exceed the best
  cost found so far.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.catalog.catalog import Catalog
from repro.cost.model import (
    Cost,
    cost_hash_join,
    cost_index_nested_loop_join,
    cost_materialize,
    cost_merge_join,
    cost_nested_loop_join,
    cost_sort,
    pages_for_rows,
)
from repro.cost.parameters import DEFAULT_PARAMETERS, CostParameters
from repro.errors import OptimizerError
from repro.expr.expressions import (
    ColumnRef,
    Comparison,
    ComparisonOp,
    Expr,
    conjoin,
    conjuncts,
)
from repro.logical.operators import JoinKind
from repro.logical.querygraph import QueryGraph
from repro.physical.plans import (
    HashJoinP,
    INLJoinP,
    MaterializeP,
    MergeJoinP,
    NLJoinP,
    PhysicalOp,
    SortP,
)
from repro.physical.properties import SortOrder, order_satisfies
from repro.core.cascades.memo import Group, Memo, MExpr, Winner
from repro.core.systemr.access import generate_access_paths
from repro.core.systemr.enumerator import SystemRJoinEnumerator
from repro.core.systemr.orders import equivalence_classes
from repro.stats.propagation import CardinalityEstimator
from repro.stats.summaries import TableStats


@dataclass
class CascadesStats:
    """Search-effort counters (compared with the DP enumerator in E10)."""

    groups: int = 0
    mexprs: int = 0
    transformation_rules_fired: int = 0
    implementation_rules_fired: int = 0
    enforcers_added: int = 0
    optimize_calls: int = 0
    memo_hits: int = 0
    pruned_by_bound: int = 0


@dataclass(frozen=True)
class CascadesConfig:
    """Search knobs.

    Attributes:
        allow_cartesian: permit joins between disconnected groups.
        use_pruning: branch-and-bound on the running best cost.
        promise: implementation-rule priority order (highest first);
            the paper's programmable "promise of an action".
        risk_aware: mirror of the System-R enumerator's knob -- cost
            candidates a second time at the high end of the cardinality
            uncertainty interval and break near-ties on expected cost by
            least worst-case cost.
        risk_epsilon: relative expected-cost window within which two
            plans count as tied for the risk tie-break.
    """

    allow_cartesian: bool = False
    use_pruning: bool = True
    promise: Tuple[str, ...] = ("hash", "merge", "inl", "nl")
    risk_aware: bool = False
    risk_epsilon: float = 0.1


class CascadesOptimizer:
    """Top-down memoized join optimization over a query graph.

    Args:
        catalog / graph / stats_by_alias / params: as in the System-R
            enumerator, so the two architectures are directly comparable.
    """

    def __init__(
        self,
        catalog: Catalog,
        graph: QueryGraph,
        stats_by_alias: Dict[str, TableStats],
        params: CostParameters = DEFAULT_PARAMETERS,
        config: CascadesConfig = CascadesConfig(),
        feedback=None,
    ) -> None:
        self.catalog = catalog
        self.graph = graph
        self.params = params
        self.config = config
        self.estimator = CardinalityEstimator(stats_by_alias, feedback=feedback)
        self.equivalences = equivalence_classes(graph)
        self.memo = Memo()
        self.stats = CascadesStats()
        self._rows_cache: Dict[FrozenSet[str], float] = {}
        self._interval_cache: Dict[FrozenSet[str], Tuple[float, float]] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def best_plan(
        self, required_order: Optional[SortOrder] = None
    ) -> Tuple[PhysicalOp, Cost]:
        """Optimize the full query for an optional required order."""
        aliases = self.graph.aliases
        if not aliases:
            raise OptimizerError("query graph has no relations")
        root = frozenset(aliases)
        self._seed(root)
        winner = self._optimize_group(root, required_order, limit=float("inf"))
        if winner is None:
            raise OptimizerError("cascades search found no plan")
        self.stats.groups = self.memo.group_count
        self.stats.mexprs = self.memo.mexpr_count
        return winner.plan, winner.cost

    # ------------------------------------------------------------------
    # Seeding: the initial left-deep expression
    # ------------------------------------------------------------------
    def _seed(self, root: FrozenSet[str]) -> None:
        aliases = sorted(root)
        for alias in aliases:
            self.memo.group(frozenset((alias,))).add(MExpr("get", alias=alias))
        current = frozenset((aliases[0],))
        for alias in aliases[1:]:
            single = frozenset((alias,))
            union = current | single
            self.memo.group(union).add(MExpr("join", left=current, right=single))
            current = union

    # ------------------------------------------------------------------
    # Exploration: transformation rules to fixpoint per group
    # ------------------------------------------------------------------
    def _explore(self, aliases: FrozenSet[str]) -> None:
        group = self.memo.group(aliases)
        if group.explored:
            return
        group.explored = True
        changed = True
        while changed:
            changed = False
            for mexpr in list(group.mexprs):
                if mexpr.kind != "join":
                    continue
                # Children must be explored before associativity can see
                # their join shapes.
                self._explore(mexpr.left)
                self._explore(mexpr.right)
                # Rule: commutativity.
                flipped = MExpr("join", left=mexpr.right, right=mexpr.left)
                if group.add(flipped):
                    self.stats.transformation_rules_fired += 1
                    changed = True
                # Rule: associativity  (X ⋈ Y) ⋈ R  ->  X ⋈ (Y ⋈ R).
                left_group = self.memo.group(mexpr.left)
                for inner in list(left_group.mexprs):
                    if inner.kind != "join":
                        continue
                    x_set, y_set, r_set = inner.left, inner.right, mexpr.right
                    new_right = y_set | r_set
                    if not self._joinable(y_set, r_set):
                        continue
                    if not self._joinable(x_set, new_right):
                        continue
                    right_group = self.memo.group(new_right)
                    if right_group.add(MExpr("join", left=y_set, right=r_set)):
                        self.stats.transformation_rules_fired += 1
                        changed = True
                    if group.add(MExpr("join", left=x_set, right=new_right)):
                        self.stats.transformation_rules_fired += 1
                        changed = True

    def _joinable(self, left: FrozenSet[str], right: FrozenSet[str]) -> bool:
        if self.config.allow_cartesian:
            return True
        return self.graph.connected(left, right)

    # ------------------------------------------------------------------
    # Optimization: implementation rules + enforcers, memoized
    # ------------------------------------------------------------------
    def _optimize_group(
        self,
        aliases: FrozenSet[str],
        required: Optional[SortOrder],
        limit: float,
    ) -> Optional[Winner]:
        self.stats.optimize_calls += 1
        group = self.memo.group(aliases)
        key = required if required else None
        if key in group.winners:
            self.stats.memo_hits += 1
            winner = group.winners[key]
            if winner is not None and winner.cost.total > limit:
                return None
            return winner
        self._explore(aliases)
        best: Optional[Winner] = None

        def consider(plan: PhysicalOp) -> None:
            nonlocal best
            if required and not order_satisfies(
                plan.order, required, self.equivalences
            ):
                plan = self._enforce(plan, required, aliases)
            if self.config.use_pruning and plan.est_cost.total > limit:
                self.stats.pruned_by_bound += 1
                return
            if best is None:
                best = Winner(plan=plan, cost=plan.est_cost)
                return
            cost = plan.est_cost.total
            if self.config.risk_aware:
                # Risk-aware near-tie: within (1 + epsilon) on expected
                # cost, the winner is the plan with the least worst-case
                # cost over the uncertainty interval.
                low = min(cost, best.cost.total)
                if max(cost, best.cost.total) <= low * (
                    1.0 + self.config.risk_epsilon
                ):
                    if (self._plan_hi(plan), cost) < (
                        self._plan_hi(best.plan),
                        best.cost.total,
                    ):
                        best = Winner(plan=plan, cost=plan.est_cost)
                    return
            if cost < best.cost.total:
                best = Winner(plan=plan, cost=plan.est_cost)

        if len(aliases) == 1:
            alias = next(iter(aliases))
            for path in generate_access_paths(
                alias, self.graph, self.catalog, self.estimator, self.params
            ):
                self.stats.implementation_rules_fired += 1
                if self.config.risk_aware:
                    hi_rows = self._rows_hi(aliases)
                    path.est_cost_hi = path.est_cost.total
                    if SystemRJoinEnumerator._card_sensitive(path):
                        path.est_cost_hi *= hi_rows / max(path.est_rows, 1.0)
                consider(path)
        else:
            for mexpr in group.mexprs:
                if mexpr.kind != "join":
                    continue
                bound = limit if best is None else min(limit, best.cost.total)
                for plan in self._implement_join(mexpr, required, bound):
                    consider(plan)
        # Memoize only complete results: a None produced under a tight
        # branch-and-bound limit must not poison later, looser requests.
        if best is not None:
            group.winners[key] = best
        return best

    def _enforce(
        self, plan: PhysicalOp, required: SortOrder, aliases: FrozenSet[str]
    ) -> PhysicalOp:
        self.stats.enforcers_added += 1
        sort = SortP(plan, required)
        sort.est_rows = plan.est_rows
        sort.est_cost = plan.est_cost + cost_sort(
            plan.est_rows, self._pages(aliases, plan.est_rows), self.params
        )
        sort.order = required
        if self.config.risk_aware:
            hi_rows = self._rows_hi(aliases)
            extra_hi = cost_sort(
                hi_rows, self._pages(aliases, hi_rows), self.params
            )
            sort.est_cost_hi = self._plan_hi(plan) + extra_hi.total
        return sort

    # ------------------------------------------------------------------
    # Implementation rules for a join multi-expression
    # ------------------------------------------------------------------
    def _implement_join(
        self,
        mexpr: MExpr,
        required: Optional[SortOrder],
        limit: float,
    ) -> List[PhysicalOp]:
        left_set, right_set = mexpr.left, mexpr.right
        union = left_set | right_set
        rows = self._rows(union)
        predicate = self.graph.connecting_predicate(left_set, right_set)
        equi_pairs, residual = self._split_equi(predicate, left_set, right_set)
        plans: List[PhysicalOp] = []
        for algorithm in self.config.promise:
            if algorithm == "hash" and equi_pairs:
                plan = self._impl_hash(
                    left_set, right_set, equi_pairs, residual, rows, limit
                )
                if plan is not None:
                    plans.append(plan)
            elif algorithm == "merge" and equi_pairs:
                plan = self._impl_merge(
                    left_set, right_set, equi_pairs, residual, rows, limit
                )
                if plan is not None:
                    plans.append(plan)
            elif algorithm == "inl" and equi_pairs and len(right_set) == 1:
                plans.extend(
                    self._impl_inl(
                        left_set, right_set, equi_pairs, residual, rows,
                        required, limit,
                    )
                )
            elif algorithm == "nl":
                plan = self._impl_nl(
                    left_set, right_set, predicate, rows, required, limit
                )
                if plan is not None:
                    plans.append(plan)
        # All algorithms for this 2-partition apply the same connecting
        # predicate; stamp it for the runtime feedback harvest.  INL
        # joins that folded the inner's local predicate into their
        # residual are skipped -- their output mixes two predicates.
        edge_fp = self.estimator.selectivity.predicate_fingerprint(predicate)
        for plan in plans:
            if (
                isinstance(plan, INLJoinP)
                and self.graph.node(plan.alias).local_predicate() is not None
            ):
                continue
            plan.feedback_fingerprint = edge_fp
        return plans

    def _impl_hash(
        self, left_set, right_set, equi_pairs, residual, rows, limit
    ) -> Optional[PhysicalOp]:
        self.stats.implementation_rules_fired += 1
        left = self._optimize_group(left_set, None, limit)
        if left is None:
            return None
        right = self._optimize_group(right_set, None, limit - left.cost.total)
        if right is None:
            return None
        build_pages = self._pages(right_set, right.plan.est_rows)
        probe_pages = pages_for_rows(left.plan.est_rows, 16.0, self.params)
        join_cost = cost_hash_join(
            right.plan.est_rows, build_pages, left.plan.est_rows, probe_pages,
            rows, self.params,
        )
        plan = HashJoinP(
            left.plan,
            right.plan,
            [l for l, _r in equi_pairs],
            [r for _l, r in equi_pairs],
            JoinKind.INNER,
            residual,
        )
        plan.est_rows = rows
        plan.est_cost = left.cost + right.cost + join_cost
        plan.order = None
        if self.config.risk_aware:
            build_hi = self._rows_hi(right_set)
            probe_hi = self._rows_hi(left_set)
            join_hi = cost_hash_join(
                build_hi,
                self._pages(right_set, build_hi),
                probe_hi,
                pages_for_rows(probe_hi, 16.0, self.params),
                self._rows_hi(left_set | right_set),
                self.params,
            )
            plan.est_cost_hi = (
                self._plan_hi(left.plan) + self._plan_hi(right.plan)
                + join_hi.total
            )
        return plan

    def _impl_merge(
        self, left_set, right_set, equi_pairs, residual, rows, limit
    ) -> Optional[PhysicalOp]:
        self.stats.implementation_rules_fired += 1
        left_order: SortOrder = tuple((l, True) for l, _r in equi_pairs)
        right_order: SortOrder = tuple((r, True) for _l, r in equi_pairs)
        # Top-down property passing: *request* sorted children.
        left = self._optimize_group(left_set, left_order, limit)
        if left is None:
            return None
        right = self._optimize_group(
            right_set, right_order, limit - left.cost.total
        )
        if right is None:
            return None
        join_cost = cost_merge_join(
            left.plan.est_rows, right.plan.est_rows, rows, self.params
        )
        plan = MergeJoinP(
            left.plan,
            right.plan,
            [l for l, _r in equi_pairs],
            [r for _l, r in equi_pairs],
            JoinKind.INNER,
            residual,
        )
        plan.est_rows = rows
        plan.est_cost = left.cost + right.cost + join_cost
        plan.order = left_order
        if self.config.risk_aware:
            join_hi = cost_merge_join(
                self._rows_hi(left_set),
                self._rows_hi(right_set),
                self._rows_hi(left_set | right_set),
                self.params,
            )
            plan.est_cost_hi = (
                self._plan_hi(left.plan) + self._plan_hi(right.plan)
                + join_hi.total
            )
        return plan

    def _impl_inl(
        self, left_set, right_set, equi_pairs, residual, rows, required, limit
    ) -> List[PhysicalOp]:
        alias = next(iter(right_set))
        node = self.graph.node(alias)
        table = self.catalog.table(node.table)
        plans: List[PhysicalOp] = []
        left = self._optimize_group(left_set, required, limit)
        if left is None:
            return plans
        for index in self.catalog.indexes_on(node.table):
            matched = []
            for column in index.definition.columns:
                pair = next((p for p in equi_pairs if p[1].column == column), None)
                if pair is None:
                    break
                matched.append(pair)
            if not matched:
                continue
            self.stats.implementation_rules_fired += 1
            unmatched = [p for p in equi_pairs if p not in matched]
            residual_parts = list(conjuncts(residual))
            residual_parts.extend(
                Comparison(ComparisonOp.EQ, l, r) for l, r in unmatched
            )
            local = node.local_predicate()
            if local is not None:
                residual_parts.append(local)
            selectivity = 1.0
            for _l, r in matched:
                distinct = self.estimator.selectivity.distinct_count(r)
                selectivity *= 1.0 / distinct if distinct else 0.1
            join_cost = cost_index_nested_loop_join(
                left.plan.est_rows,
                max(table.row_count * selectivity, 0.0),
                float(table.row_count),
                float(table.page_count),
                index.height,
                index.definition.clustered,
                self.params,
            )
            plan = INLJoinP(
                left.plan,
                node.table,
                alias,
                table.schema.column_names,
                index.definition.name,
                [l for l, _r in matched],
                JoinKind.INNER,
                conjoin(residual_parts),
                column_types=table.schema.column_types,
            )
            plan.est_rows = rows
            plan.est_cost = left.cost + join_cost
            plan.order = left.plan.order
            if self.config.risk_aware:
                join_hi = cost_index_nested_loop_join(
                    self._rows_hi(left_set),
                    max(table.row_count * selectivity, 0.0),
                    float(table.row_count),
                    float(table.page_count),
                    index.height,
                    index.definition.clustered,
                    self.params,
                )
                plan.est_cost_hi = self._plan_hi(left.plan) + join_hi.total
            plans.append(plan)
        return plans

    def _impl_nl(
        self, left_set, right_set, predicate, rows, required, limit
    ) -> Optional[PhysicalOp]:
        self.stats.implementation_rules_fired += 1
        # NL preserves the outer order, so pass the requirement down left.
        left = self._optimize_group(left_set, required, limit)
        if left is None:
            return None
        right = self._optimize_group(right_set, None, limit - left.cost.total)
        if right is None:
            return None
        inner = MaterializeP(right.plan)
        inner_pages = self._pages(right_set, right.plan.est_rows)
        inner.est_rows = right.plan.est_rows
        inner.est_cost = right.cost + cost_materialize(
            right.plan.est_rows, inner_pages, self.params
        )
        inner.order = right.plan.order
        rescan = Cost(cpu=right.plan.est_rows * self.params.cpu_tuple_cost)
        join_cost = cost_nested_loop_join(
            left.plan.est_rows,
            rescan,
            right.plan.est_rows,
            len(conjuncts(predicate)),
            self.params,
        )
        plan = NLJoinP(left.plan, inner, predicate, JoinKind.INNER)
        plan.est_rows = rows
        plan.est_cost = left.cost + inner.est_cost + join_cost
        plan.order = left.plan.order
        if self.config.risk_aware:
            inner_hi_rows = self._rows_hi(right_set)
            outer_hi_rows = self._rows_hi(left_set)
            rescan_hi = Cost(cpu=inner_hi_rows * self.params.cpu_tuple_cost)
            join_hi = cost_nested_loop_join(
                outer_hi_rows,
                rescan_hi,
                inner_hi_rows,
                len(conjuncts(predicate)),
                self.params,
            )
            mat_hi = cost_materialize(
                inner_hi_rows, self._pages(right_set, inner_hi_rows), self.params
            )
            plan.est_cost_hi = (
                self._plan_hi(left.plan) + self._plan_hi(right.plan)
                + mat_hi.total + join_hi.total
            )
        return plan

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _split_equi(
        self,
        predicate: Optional[Expr],
        left_set: FrozenSet[str],
        right_set: FrozenSet[str],
    ):
        pairs: List[Tuple[ColumnRef, ColumnRef]] = []
        residual: List[Expr] = []
        for conjunct in conjuncts(predicate):
            if (
                isinstance(conjunct, Comparison)
                and conjunct.op is ComparisonOp.EQ
                and isinstance(conjunct.left, ColumnRef)
                and isinstance(conjunct.right, ColumnRef)
            ):
                l, r = conjunct.left, conjunct.right
                if l.table in left_set and r.table in right_set:
                    pairs.append((l, r))
                    continue
                if r.table in left_set and l.table in right_set:
                    pairs.append((r, l))
                    continue
            residual.append(conjunct)
        return pairs, conjoin(residual)

    def _rows(self, aliases: FrozenSet[str]) -> float:
        if aliases not in self._rows_cache:
            self._rows_cache[aliases] = self.estimator.relation_set_cardinality(
                aliases, self.graph
            )
        return self._rows_cache[aliases]

    def _rows_hi(self, aliases: FrozenSet[str]) -> float:
        if aliases not in self._interval_cache:
            self._interval_cache[aliases] = self.estimator.relation_set_interval(
                aliases, self.graph
            )
        return self._interval_cache[aliases][1]

    @staticmethod
    def _plan_hi(plan: PhysicalOp) -> float:
        """Worst-case cost of a (sub)plan; expected cost when unstamped."""
        if plan.est_cost_hi is not None:
            return plan.est_cost_hi
        return plan.est_cost.total

    def _pages(self, aliases: FrozenSet[str], rows: float) -> float:
        width = sum(
            self.catalog.schema(self.graph.node(alias).table).row_width_bytes
            for alias in aliases
        )
        return pages_for_rows(rows, width, self.params)
