"""Volcano/Cascades-style top-down memoized optimization."""

from repro.core.cascades.memo import Group, Memo, MExpr, Winner
from repro.core.cascades.optimizer import (
    CascadesConfig,
    CascadesOptimizer,
    CascadesStats,
)

__all__ = [
    "CascadesConfig",
    "CascadesOptimizer",
    "CascadesStats",
    "Group",
    "MExpr",
    "Memo",
    "Winner",
]
