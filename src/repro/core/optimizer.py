"""The optimizer facade and the user-facing Database API.

``Optimizer`` wires the pipeline together the way Section 2 describes
the two components of query evaluation: SQL text -> parse -> bind (QGM)
-> lower -> rewrite (Starburst-style rules) -> plan (System-R DP over
SPJ regions, operator mapping elsewhere) -> physical plan; the execution
engine then runs the plan.

``Database`` bundles a catalog with an optimizer and executor so the
examples read like using an embedded database.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Column
from repro.cost.parameters import DEFAULT_PARAMETERS, CostParameters
from repro.engine.adaptive import AdaptiveConfig, AdaptiveState
from repro.engine.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionTicket,
)
from repro.engine.context import ExecContext, QueryMetrics
from repro.engine.executor import execute
from repro.engine.governor import CancellationToken, QueryBudget
from repro.engine.interpreter import InterpreterStats, interpret
from repro.engine.runtime_stats import render_explain_analyze
from repro.errors import (
    AdmissionRejected,
    PrepareError,
    QueryCancelled,
    QueueTimeout,
    ReproError,
    SerializationError,
    SqlError,
    TransactionError,
)
from repro.storage.faults import FaultInjector
from repro.storage.txn import Transaction, TransactionManager
from repro.expr.schema import StreamSchema
from repro.logical.lower import lower_block
from repro.logical.operators import Get, LogicalOp
from repro.logical.qgm import QueryBlock
from repro.physical.plans import DeleteP, InsertP, PhysicalOp, UpdateP
from repro.sql.ast import (
    BeginStmt,
    CommitStmt,
    DeallocateStmt,
    DeleteStmt,
    ExecuteStmt,
    ExplainStmt,
    InsertStmt,
    PrepareStmt,
    RollbackStmt,
    SelectStmt,
    UpdateStmt,
)
from repro.sql.binder import Binder, UdfRegistration
from repro.sql.parser import normalize_sql, parse, parse_statement
from repro.core.physicalize import Physicalizer
from repro.core.rewrite import RewriteContext, RuleEngine, default_rule_engine
from repro.core.systemr.enumerator import EnumeratorConfig
from repro.stats.feedback import (
    CardinalityFeedback,
    collect_fingerprints,
    harvest_feedback,
)
from repro.stats.propagation import CardinalityEstimator
from repro.stats.summaries import TableStats, analyze_all, analyze_table


@dataclass
class OptimizedQuery:
    """The artifacts of optimizing one query."""

    block: QueryBlock
    logical: LogicalOp
    rewritten: LogicalOp
    physical: PhysicalOp
    rewrite_trace: List[str] = field(default_factory=list)

    def explain(self) -> str:
        """The physical plan rendering."""
        return self.physical.explain()


class Optimizer:
    """End-to-end query optimizer.

    Args:
        catalog: schema, data, statistics.
        params: cost-model parameters.
        config: join-enumerator knobs.
        udfs: registered user-defined functions.
        use_rewrites: run the Starburst-style rewrite phase (disable to
            measure its benefit, e.g. benchmark E6).
        feedback: optional cardinality-feedback store; observed
            selectivities correct the model's estimates everywhere this
            optimizer estimates cardinalities.
        adaptive: optional progressive-optimization config; when enabled
            the physicalizer wraps materialization points in validity-
            range CHECK operators (see :mod:`repro.engine.adaptive`).
    """

    def __init__(
        self,
        catalog: Catalog,
        params: CostParameters = DEFAULT_PARAMETERS,
        config: EnumeratorConfig = EnumeratorConfig(),
        udfs: Optional[Dict[str, UdfRegistration]] = None,
        use_rewrites: bool = True,
        rule_engine: Optional[RuleEngine] = None,
        use_materialized_views: bool = True,
        feedback: Optional[CardinalityFeedback] = None,
        adaptive: Optional[AdaptiveConfig] = None,
        parallel_mode: bool = False,
        max_dop: int = 4,
    ) -> None:
        self.catalog = catalog
        self.params = params
        self.config = config
        self.binder = Binder(catalog, udfs)
        self.use_rewrites = use_rewrites
        self.rule_engine = rule_engine or default_rule_engine()
        self.feedback = feedback
        self.physicalizer = Physicalizer(
            catalog,
            params,
            config,
            feedback=feedback,
            adaptive=adaptive,
            parallel_mode=parallel_mode,
            max_dop=max_dop,
        )
        self.use_materialized_views = use_materialized_views

    # ------------------------------------------------------------------
    def optimize(self, sql: str) -> OptimizedQuery:
        """Optimize SQL text into a physical plan."""
        return self.optimize_statement(parse(sql))

    def optimize_statement(self, stmt: SelectStmt) -> OptimizedQuery:
        """Optimize a parsed SELECT statement.

        When materialized views are registered (and enabled), every
        matching reformulation competes with the original plan on
        estimated cost -- the transparent use of Section 7.3.
        """
        block = self.binder.bind(stmt)
        best = self.optimize_block(block)
        if self.use_materialized_views and self.catalog.materialized_views():
            from repro.core.matviews.rewriter import MatViewRewriter

            rewriter = MatViewRewriter(self.catalog)
            for view, rewritten_block in rewriter.rewrites(block):
                try:
                    candidate = self.optimize_block(rewritten_block)
                except Exception:
                    continue
                if (
                    candidate.physical.est_cost.total
                    < best.physical.est_cost.total
                ):
                    candidate.rewrite_trace.append(
                        f"materialized-view:{view.name}"
                    )
                    best = candidate
        return best

    def optimize_block(self, block: QueryBlock) -> OptimizedQuery:
        """Optimize an already-bound query block."""
        logical = lower_block(block, self.catalog)
        context = RewriteContext(
            catalog=self.catalog, estimator=self._estimator(logical)
        )
        rewritten = logical
        if self.use_rewrites:
            rewritten = self.rule_engine.rewrite(logical, context)
        physical = self.physicalizer.plan_query(rewritten)
        return OptimizedQuery(
            block=block,
            logical=logical,
            rewritten=rewritten,
            physical=physical,
            rewrite_trace=context.trace,
        )

    def _estimator(self, logical: LogicalOp) -> CardinalityEstimator:
        stats: Dict[str, TableStats] = {}
        stack = [logical]
        while stack:
            node = stack.pop()
            if isinstance(node, Get):
                existing = self.catalog.stats(node.table)
                if existing is None:
                    existing = analyze_table(
                        self.catalog, node.table, histogram_kind=None
                    )
                stats[node.alias] = existing
            stack.extend(node.children())
        return CardinalityEstimator(
            stats, damping=self.config.damping, feedback=self.feedback
        )


PlanCacheKey = Tuple[str, int]


@dataclass
class _PlanCacheEntry:
    plan: OptimizedQuery
    catalog_version: int
    optimize_seconds: float
    # Observed selectivities (per plan fingerprint) the feedback store
    # held when the plan was produced; a later lookup compares against
    # the current store to decide whether knowledge has shifted enough
    # to warrant re-optimization.
    feedback_snapshot: Dict[str, float] = field(default_factory=dict)


class PlanCache:
    """An LRU cache of optimized plans, invalidated by catalog version.

    Keys combine the lexically normalized SQL text with the parameter
    signature (the ``?`` arity), so a prepared statement and a textually
    identical ad-hoc query occupy distinct entries.  Every entry records
    the catalog version current when the plan was produced; a lookup
    that finds a stale entry (any DDL or statistics refresh since)
    drops it and reports a miss -- the plan was costed against metadata
    that no longer describes the database.

    Thread-safe: concurrent sessions share one cache, so every compound
    read-modify-write on the LRU order runs under an internal lock.
    The hit/miss/eviction counters are updated under the same lock and
    are exact; callers reading them while traffic is in flight still see
    a momentary snapshot.
    """

    def __init__(self, capacity: int = 128) -> None:
        self.capacity = max(0, capacity)
        self._entries: "OrderedDict[PlanCacheKey, _PlanCacheEntry]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @staticmethod
    def key(sql: str, param_count: int = 0) -> PlanCacheKey:
        """The cache key for SQL text and a parameter signature."""
        return (normalize_sql(sql), param_count)

    def get(
        self, key: PlanCacheKey, catalog_version: int
    ) -> Optional[_PlanCacheEntry]:
        """Look up a still-valid entry; stale entries count as misses."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            if entry.catalog_version != catalog_version:
                del self._entries[key]
                self.invalidations += 1
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(
        self,
        key: PlanCacheKey,
        plan: OptimizedQuery,
        catalog_version: int,
        optimize_seconds: float = 0.0,
        feedback_snapshot: Optional[Dict[str, float]] = None,
    ) -> None:
        """Insert a plan, evicting the least recently used beyond capacity."""
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = _PlanCacheEntry(
                plan=plan,
                catalog_version=catalog_version,
                optimize_seconds=optimize_seconds,
                feedback_snapshot=dict(feedback_snapshot or {}),
            )
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def evict(self, key: PlanCacheKey) -> bool:
        """Drop one entry (a plan that misbehaved at execution time).

        Returns True when the key was cached.  Counted under
        ``evictions`` alongside capacity evictions.
        """
        with self._lock:
            if key not in self._entries:
                return False
            del self._entries[key]
            self.evictions += 1
            return True

    def keys(self) -> List[PlanCacheKey]:
        """Current keys, least recently used first."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class PreparedStatement:
    """A named, parameterized statement (``PREPARE name AS SELECT ... ?``).

    The defining SQL is optimized once (parameters treated as opaque
    constants) and the physical plan re-executed per EXECUTE with fresh
    parameter values -- the optimize-once-execute-many contract.
    """

    name: str
    sql_text: str
    param_count: int
    cache_key: PlanCacheKey


@dataclass
class QueryResult:
    """Rows plus the plan and the measured execution work."""

    schema: StreamSchema
    rows: List[Tuple[Any, ...]]
    plan: Optional[PhysicalOp]
    context: ExecContext
    rewrite_trace: List[str] = field(default_factory=list)
    kind: str = "select"
    from_plan_cache: bool = False

    @property
    def column_names(self) -> List[str]:
        """Output column names."""
        return [name for _alias, name in self.schema.slots]

    def __len__(self) -> int:
        return len(self.rows)


def _text_result(kind: str, column: str, lines: Sequence[str]) -> QueryResult:
    """A QueryResult carrying rendered text (EXPLAIN output, messages)."""
    return QueryResult(
        schema=StreamSchema(((kind, column),)),
        rows=[(line,) for line in lines],
        plan=None,
        context=ExecContext(),
        kind=kind,
    )


# Selectivity damping used when re-optimizing a plan that failed at
# runtime: sqrt-damping inflates every selectivity toward 1, so the
# replacement plan is chosen under deliberately pessimistic (larger)
# cardinalities.
CONSERVATIVE_DAMPING = 0.5

# Retryable failures a cached plan may accumulate before it is evicted
# and its key marked for conservative re-optimization.
RETRYABLE_FAILURES_BEFORE_EVICT = 2

# Cardinality-feedback re-optimization thresholds.  A cached plan is
# dropped right after an execution whose worst per-operator q-error
# (between the selectivity the plan was built with and the one observed)
# reaches FEEDBACK_REPLAN_QERROR -- the next use re-optimizes with the
# freshly learned selectivities.  Independently, a cache *hit* whose
# entry was planned under feedback that has since shifted by a factor of
# FEEDBACK_SHIFT_FACTOR (comparing only fingerprints observed both then
# and now) is treated as stale and re-optimized.  Both generalize PR 2's
# 2-strike conservative re-optimization: estimates, not just failures,
# can now invalidate a plan.
FEEDBACK_REPLAN_QERROR = 4.0
FEEDBACK_SHIFT_FACTOR = 2.0


class Database:
    """An embedded database: catalog + optimizer + executor.

    Per-session robustness state lives here: an optional
    :class:`QueryBudget` and :class:`FaultInjector` applied to every
    execution, and a :class:`CancellationToken` the shell's Ctrl-C
    handler flips to abort the running query without killing the
    session.

    Example:
        >>> db = Database()
        >>> from repro.datagen import build_emp_dept
        >>> _ = build_emp_dept(db.catalog, emp_rows=100, dept_rows=10)
        >>> result = db.sql("SELECT name FROM Emp WHERE sal > 100000")
    """

    def __init__(
        self,
        params: CostParameters = DEFAULT_PARAMETERS,
        config: EnumeratorConfig = EnumeratorConfig(),
        use_rewrites: bool = True,
        plan_cache_size: int = 128,
        budget: Optional[QueryBudget] = None,
        fault_injector: Optional[FaultInjector] = None,
        use_feedback: bool = True,
        adaptive: Optional[AdaptiveConfig] = None,
        batch_mode: bool = True,
        compiled_expressions: bool = True,
        columnar_mode: bool = False,
        parallel_mode: bool = False,
        max_dop: int = 4,
        admission: Optional[
            "AdmissionConfig | AdmissionController"
        ] = None,
        tenant: str = "default",
    ) -> None:
        self.catalog = Catalog(page_size_bytes=params.page_size_bytes)
        self.params = params
        self.config = config
        self.use_rewrites = use_rewrites
        self.udfs: Dict[str, UdfRegistration] = {}
        self.plan_cache = PlanCache(plan_cache_size)
        self.metrics = QueryMetrics()
        self.prepared: Dict[str, PreparedStatement] = {}
        self.budget = budget
        self.cancel_token = CancellationToken()
        self.fault_injector = fault_injector
        self.feedback: Optional[CardinalityFeedback] = (
            CardinalityFeedback() if use_feedback else None
        )
        self.adaptive = adaptive
        # Execution-engine knobs: the batch-iterator engine and compiled
        # expressions are the default; turning either off selects the
        # legacy materializing / tree-walking oracle paths.
        self.batch_mode = batch_mode
        self.compiled_expressions = compiled_expressions
        # Columnar (vectorized) execution: batches travel as numpy
        # columns and the physicalizer prices CPU with the vectorized
        # discount.  Off by default; the row-batch engine is the oracle.
        self.columnar_mode = columnar_mode
        if columnar_mode:
            self.params = params.with_overrides(columnar_execution=True)
        # Intra-query parallelism: the physicalizer places exchange/
        # gather regions (see repro.core.parallel.placement) and the
        # engines fan them out across a worker pool.  Off by default;
        # parallel_mode=False is the bit-identical serial oracle.
        self.parallel_mode = parallel_mode
        self.max_dop = max(1, int(max_dop))
        # Server-wide admission control.  Pass an AdmissionConfig to
        # build a controller owned by this Database, or share one
        # AdmissionController across databases; None (the default)
        # admits everything unconditionally.  The session identity
        # (tenant/priority) seeds per-query options.
        if admission is None or isinstance(admission, AdmissionController):
            self.admission: Optional[AdmissionController] = admission
        else:
            self.admission = AdmissionController(admission)
        self.session_tenant = tenant
        self.session_priority = "normal"
        self._plan_failures: Dict[PlanCacheKey, int] = {}
        self._conservative_keys: Set[PlanCacheKey] = set()
        # Transactional state.  The manager (txid allocation, WAL, MVCC
        # lifecycle) is created lazily at the first DML/BEGIN so purely
        # read-only databases pay nothing; the open explicit transaction
        # is per-thread -- each worker thread is one session.
        self._txn_manager: Optional[TransactionManager] = None
        self._txn_manager_lock = threading.Lock()
        self._sessions = threading.local()

    # ------------------------------------------------------------------
    # Schema management
    # ------------------------------------------------------------------
    def create_table(
        self,
        name: str,
        columns: Sequence[Column],
        primary_key: Optional[Sequence[str]] = None,
    ):
        """Create a table (see :meth:`Catalog.create_table`)."""
        return self.catalog.create_table(name, columns, primary_key)

    def create_index(self, name: str, table: str, columns: Sequence[str], **kw):
        """Create an ordered index."""
        return self.catalog.create_index(name, table, columns, **kw)

    def create_view(self, name: str, sql: str) -> None:
        """Register a virtual view by its defining SQL."""
        self.catalog.create_view(name, sql)

    def register_udf(
        self,
        name: str,
        fn,
        per_tuple_cost: float = 100.0,
        selectivity: float = 0.5,
    ) -> None:
        """Register a user-defined function usable in WHERE clauses.

        Clears the plan cache: cached plans were bound against the old
        function registry.
        """
        self.udfs[name.lower()] = UdfRegistration(fn, per_tuple_cost, selectivity)
        self.plan_cache.clear()

    def analyze(self, histogram_kind: Optional[str] = "equi-depth") -> None:
        """Collect statistics for every table."""
        analyze_all(self.catalog, histogram_kind=histogram_kind)

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def optimizer(self, conservative: bool = False) -> Optimizer:
        """A fresh optimizer bound to this database's catalog.

        With ``conservative=True`` the enumerator config's selectivity
        damping is set to :data:`CONSERVATIVE_DAMPING`, producing the
        pessimistic cardinalities used to re-plan queries whose cached
        plan failed at runtime.
        """
        config = self.config
        if conservative:
            config = replace(config, damping=CONSERVATIVE_DAMPING)
        return Optimizer(
            self.catalog,
            self.params,
            config,
            udfs=self.udfs,
            use_rewrites=self.use_rewrites,
            feedback=self.feedback,
            adaptive=self.adaptive,
            parallel_mode=self.parallel_mode,
            max_dop=self.max_dop,
        )

    def optimize(self, sql: str) -> OptimizedQuery:
        """Optimize without executing."""
        return self.optimizer().optimize(sql)

    def sql(
        self,
        text: str,
        tenant: Optional[str] = None,
        priority: Optional[str] = None,
    ) -> QueryResult:
        """Run one SQL statement: SELECT, EXPLAIN [ANALYZE], PREPARE,
        EXECUTE, or DEALLOCATE.

        SELECT plans flow through the plan cache; repeated text (modulo
        whitespace/comments) reuses the cached physical plan until DDL
        or a statistics refresh bumps the catalog version.

        ``tenant`` and ``priority`` are per-query admission options
        (defaulting to the session's); with an admission controller
        attached, execution may shed with a typed retryable
        :class:`~repro.errors.AdmissionRejected` / ``QueueTimeout``.
        """
        stmt = parse_statement(text)
        if isinstance(stmt, ExplainStmt):
            return self._run_explain(stmt, tenant=tenant, priority=priority)
        if isinstance(stmt, PrepareStmt):
            self._register_prepared(stmt.name, stmt.sql_text, stmt.query)
            return _text_result("prepare", "PREPARE", [f"PREPARE {stmt.name}"])
        if isinstance(stmt, ExecuteStmt):
            return self.execute_prepared(
                stmt.name, *stmt.args, tenant=tenant, priority=priority
            )
        if isinstance(stmt, DeallocateStmt):
            self.deallocate(stmt.name)
            return _text_result(
                "deallocate", "DEALLOCATE", [f"DEALLOCATE {stmt.name}"]
            )
        if isinstance(stmt, BeginStmt):
            return self._run_begin()
        if isinstance(stmt, CommitStmt):
            return self._run_commit()
        if isinstance(stmt, RollbackStmt):
            return self._run_rollback()
        if isinstance(stmt, (InsertStmt, UpdateStmt, DeleteStmt)):
            return self._run_dml(stmt)
        key = PlanCache.key(text, stmt.param_count)
        optimized, from_cache, _ = self._optimize_cached(key, stmt)
        return self._execute_plan(
            optimized, from_cache, cache_key=key,
            tenant=tenant, priority=priority,
        )

    # ------------------------------------------------------------------
    # Transactions and DML
    # ------------------------------------------------------------------
    @property
    def txn_manager(self) -> TransactionManager:
        """The transaction manager, created at first use.

        Creation wires the storage-pure manager to this database's upper
        layers: index rebuilds after vacuum/recovery, and the commit
        hook that invalidates cached plans, feedback, and statistics --
        the only place any version counter moves for DML.
        """
        if self._txn_manager is None:
            with self._txn_manager_lock:
                if self._txn_manager is None:
                    manager = TransactionManager()
                    manager.index_rebuilder = self.catalog.rebuild_indexes
                    manager.commit_hooks.append(self._on_commit)
                    manager.recovery_hooks.append(self._on_recovery)
                    self._txn_manager = manager
        return self._txn_manager

    def _on_commit(self, txn: Transaction) -> None:
        """Commit-time invalidation: runs once per writing commit.

        * catalog version bumps, so every cached plan (costed against
          pre-commit statistics and contents) misses on next lookup;
        * cardinality feedback learned against the old contents of each
          written table is dropped;
        * table statistics, when present, have their row counts moved to
          the new cardinality incrementally -- no full re-ANALYZE on the
          write path (column distributions refresh at the next ANALYZE).
        """
        # Count rows through a fresh committed-only snapshot: at hook
        # time the heap still holds dead versions (vacuum runs after the
        # hooks) and other transactions' in-flight writes, neither of
        # which may leak into persisted row counts.  The snapshot was
        # taken after our commit removed us from the active set, so it
        # sees exactly committed state including this transaction.
        manager = self.txn_manager
        snapshot = manager.read_snapshot()
        try:
            for name, table in txn.written.items():
                if self.feedback is not None:
                    self.feedback.invalidate_table(name)
                stats = self.catalog.stats(name)
                if stats is not None:
                    live = sum(1 for _ in table.visible_rows(snapshot))
                    self.catalog.set_stats(
                        name, replace(stats, row_count=float(live))
                    )
        finally:
            manager.release_snapshot(snapshot)
        self.catalog._bump_version()

    def _on_recovery(self) -> None:
        """Post-recovery invalidation: table images were replaced."""
        self.plan_cache.clear()
        self.catalog._bump_version()

    def _session_txn(self) -> Optional[Transaction]:
        """This thread's open explicit transaction, if any."""
        return getattr(self._sessions, "txn", None)

    def _run_begin(self) -> QueryResult:
        if self._session_txn() is not None:
            raise TransactionError(
                "a transaction is already open in this session"
            )
        self._sessions.txn = self.txn_manager.begin(session=True)
        return _text_result("begin", "BEGIN", ["BEGIN"])

    def _run_commit(self) -> QueryResult:
        txn = self._session_txn()
        if txn is None:
            raise TransactionError("no transaction is open in this session")
        self._sessions.txn = None
        self.txn_manager.commit(txn)
        self.metrics.transactions_committed += 1
        return _text_result("commit", "COMMIT", ["COMMIT"])

    def _run_rollback(self) -> QueryResult:
        txn = self._session_txn()
        if txn is None:
            raise TransactionError("no transaction is open in this session")
        self._sessions.txn = None
        self.txn_manager.abort(txn)
        self.metrics.transactions_aborted += 1
        return _text_result("rollback", "ROLLBACK", ["ROLLBACK"])

    def _plan_dml(
        self, stmt: "InsertStmt | UpdateStmt | DeleteStmt"
    ) -> PhysicalOp:
        """Bind and physicalize one DML statement.

        DML has a single target table and no join enumeration, so the
        physical operator is built directly from the bound form; only an
        INSERT ... SELECT source runs through the full optimizer.
        """
        binder = Binder(self.catalog, self.udfs)
        if isinstance(stmt, InsertStmt):
            logical = binder.bind_insert(stmt)
            if logical.select is not None:
                source = self.optimizer().optimize_block(logical.select)
                return InsertP(
                    logical.table,
                    source=source.physical,
                    select_positions=logical.select_positions,
                )
            return InsertP(logical.table, rows=logical.rows)
        if isinstance(stmt, UpdateStmt):
            updated = binder.bind_update(stmt)
            return UpdateP(updated.table, updated.assignments, updated.predicate)
        deleted = binder.bind_delete(stmt)
        return DeleteP(deleted.table, deleted.predicate)

    def _run_dml(
        self, stmt: "InsertStmt | UpdateStmt | DeleteStmt"
    ) -> QueryResult:
        """Execute one INSERT/UPDATE/DELETE with statement atomicity.

        Outside an explicit transaction the statement runs autocommit:
        a fresh transaction that commits on success and aborts on any
        failure.  Inside BEGIN..COMMIT, a failed statement rolls back
        its own writes and leaves the transaction usable -- except a
        write-write conflict, which aborts the whole transaction (the
        snapshot is burned; the typed retryable
        :class:`~repro.errors.SerializationError` tells the client to
        retry the transaction from the top).
        """
        if stmt.param_count:
            raise SqlError(
                "parameter markers (?) are not supported in DML statements"
            )
        plan = self._plan_dml(stmt)
        manager = self.txn_manager
        session_txn = self._session_txn()
        txn = session_txn if session_txn is not None else manager.begin()
        context = self._make_context()
        # Write plans produce one bookkeeping row; there is no
        # cardinality worth harvesting from them.
        context.feedback = None
        context.txn = txn
        context.snapshot = txn.snapshot
        manager.begin_statement(txn)
        start = time.perf_counter()
        try:
            schema, rows = execute(plan, self.catalog, context)
        except BaseException as error:
            # Catch *everything* (not just ReproError): any failure that
            # skipped rollback would leave the autocommit transaction in
            # the active set forever -- blocking vacuum with undoable
            # partial writes.
            manager.rollback_statement(txn)
            self.metrics.execute_seconds += time.perf_counter() - start
            self.metrics.execution_failures += 1
            self.metrics.fault_retries += context.counters.retries
            if isinstance(error, SerializationError):
                self.metrics.serialization_conflicts += 1
            if session_txn is None:
                manager.abort(txn)
                self.metrics.transactions_aborted += 1
            elif isinstance(error, SerializationError):
                self._sessions.txn = None
                manager.abort(txn)
                self.metrics.transactions_aborted += 1
            raise
        manager.end_statement(txn)
        self.metrics.execute_seconds += time.perf_counter() - start
        self.metrics.dml_statements += 1
        self.metrics.record_execution(context, len(rows))
        if session_txn is None:
            manager.commit(txn)
            self.metrics.transactions_committed += 1
        return QueryResult(
            schema=schema,
            rows=rows,
            plan=plan,
            context=context,
            kind="dml",
        )

    def _pin_read_snapshot(self, context: ExecContext):
        """Give one read-only execution a consistent snapshot.

        No-op (returns an idle release) until the first DML creates the
        manager: with no versions in flight, reading latest state *is*
        the snapshot, and flat tables keep their zero-overhead paths.
        Inside an explicit transaction the statement reads through the
        transaction's own snapshot; otherwise a fresh snapshot is pinned
        for exactly this execution (blocking vacuum while it runs).
        """
        manager = self._txn_manager
        if manager is None:
            return lambda: None
        txn = self._session_txn()
        if txn is not None:
            context.txn = txn
            context.snapshot = txn.snapshot
            return lambda: None
        snapshot = manager.read_snapshot()
        context.snapshot = snapshot
        return lambda: manager.release_snapshot(snapshot)

    def crash(self, wal_prefix: Optional[int] = None) -> None:
        """Simulate a crash (see :meth:`TransactionManager.crash`).

        Open sessions are abandoned: their transactions were in flight
        and are treated as aborted.
        """
        if self._txn_manager is not None:
            self._txn_manager.crash(wal_prefix)
            self._sessions = threading.local()

    def recover(self) -> List[str]:
        """Replay the WAL, restoring committed-only table contents."""
        if self._txn_manager is None:
            return []
        return self._txn_manager.recover()

    # -- plan cache plumbing -------------------------------------------
    def _optimize_cached(
        self, key: PlanCacheKey, stmt: "SelectStmt | None", sql_text: str = ""
    ) -> Tuple[OptimizedQuery, bool, float]:
        """Look up ``key`` in the plan cache, optimizing on a miss.

        Returns ``(plan, from_cache, optimize_seconds)``.  ``stmt`` may
        be None when the caller only has SQL text (prepared statements
        re-executed after invalidation); it is then reparsed.  The entry
        records the catalog version *after* optimization: lazy ANALYZE
        inside the optimizer bumps the version, and the plan it produced
        reflects those fresh statistics.
        """
        invalidations_before = self.plan_cache.invalidations
        entry = self.plan_cache.get(key, self.catalog.version)
        self.metrics.plan_cache_invalidations += (
            self.plan_cache.invalidations - invalidations_before
        )
        if entry is not None and self._feedback_shifted(entry):
            # Accumulated feedback moved a selectivity this plan was
            # built on far enough that its costing is stale: drop it and
            # re-optimize with the current knowledge.
            self.plan_cache.evict(key)
            self.metrics.feedback_reoptimizations += 1
            entry = None
        if entry is not None:
            self.metrics.plan_cache_hits += 1
            return entry.plan, True, entry.optimize_seconds
        self.metrics.plan_cache_misses += 1
        if stmt is None:
            stmt = parse(sql_text)
        conservative = key in self._conservative_keys
        if conservative:
            self.metrics.conservative_reoptimizations += 1
        start = time.perf_counter()
        optimized = self.optimizer(conservative=conservative).optimize_statement(
            stmt
        )
        elapsed = time.perf_counter() - start
        self.metrics.optimize_seconds += elapsed
        snapshot = None
        if self.feedback is not None:
            snapshot = self.feedback.snapshot(
                collect_fingerprints(optimized.physical)
            )
        self.plan_cache.put(
            key, optimized, self.catalog.version, elapsed,
            feedback_snapshot=snapshot,
        )
        return optimized, False, elapsed

    def _feedback_shifted(self, entry: _PlanCacheEntry) -> bool:
        """Has feedback moved enough to invalidate a cached plan?

        Compares the store's current observations against the entry's
        snapshot, over the plan's own fingerprints; only keys observed
        at both points participate (newly appearing observations are
        the harvest-time misestimate trigger's job).
        """
        if self.feedback is None or not entry.feedback_snapshot:
            return False
        keys = collect_fingerprints(entry.plan.physical)
        shift = self.feedback.observed_shift(entry.feedback_snapshot, keys)
        return shift >= FEEDBACK_SHIFT_FACTOR

    def _make_context(self) -> ExecContext:
        """An ExecContext carrying the session's robustness state."""
        context = ExecContext(self.params)
        context.budget = self.budget
        context.cancel_token = self.cancel_token
        context.fault_injector = self.fault_injector
        context.feedback = self.feedback
        context.batch_mode = self.batch_mode
        context.compiled_expressions = self.compiled_expressions
        context.columnar_mode = self.columnar_mode
        context.parallel_mode = self.parallel_mode
        context.max_dop = self.max_dop
        context.admission = self.admission
        if self.adaptive is not None and self.adaptive.enabled:
            context.adaptive = AdaptiveState(self.adaptive)
        return context

    # -- admission control ---------------------------------------------
    def _admit(
        self, tenant: Optional[str], priority: Optional[str]
    ) -> Optional[AdmissionTicket]:
        """Pass one query through the admission controller.

        Returns None when no controller is attached.  Sheds by raising
        the controller's typed retryable errors, with the session
        metrics updated either way.  The queue deadline is tightened by
        the session budget's wall-clock timeout, so a query never burns
        its whole budget waiting in line.
        """
        if self.admission is None:
            return None
        budget = self.budget
        try:
            ticket = self.admission.admit(
                tenant=tenant or self.session_tenant,
                priority=priority or self.session_priority,
                requested_memory=(
                    budget.memory_limit_bytes if budget is not None else None
                ),
                query_deadline_seconds=(
                    budget.timeout_seconds if budget is not None else None
                ),
            )
        except AdmissionRejected as error:
            self.metrics.queries_shed += 1
            if isinstance(error, QueueTimeout):
                self.metrics.queue_timeouts += 1
            raise
        self.metrics.queries_admitted += 1
        if ticket.queued:
            self.metrics.queries_queued += 1
            self.metrics.queue_wait_seconds += ticket.queue_wait_seconds
        return ticket

    def _apply_ticket(
        self, context: ExecContext, ticket: Optional[AdmissionTicket]
    ) -> None:
        """Fold an admission grant into one execution's context.

        The memory lease clamps the query's effective memory budget:
        when the global pool is tight the lease shrinks, and
        spill-capable operators degrade to Grace-style partitioned
        execution under the tightened budget instead of the server
        overcommitting memory.
        """
        if ticket is None:
            return
        # An immediate grant reports a few-microsecond "wait" that is pure
        # clock noise; only a genuinely queued query gets the footer line.
        context.queue_wait_seconds = (
            ticket.queue_wait_seconds if ticket.queued else 0.0
        )
        base = context.budget or QueryBudget()
        limit = base.memory_limit_bytes
        granted = ticket.granted_memory
        if limit is None or granted < limit:
            context.budget = replace(base, memory_limit_bytes=granted)

    def _arm_replanner(
        self, context: ExecContext, optimized: OptimizedQuery
    ) -> None:
        """Give the adaptive state a way to re-optimize mid-query.

        The closure re-optimizes the original query block *uncached*, so
        the replan sees the cardinalities just harvested into the
        feedback store; the executor then splices the materialized
        intermediates back in (see ``splice_checkpoints``).
        """
        if context.adaptive is None:
            return

        def replan() -> PhysicalOp:
            return self.optimizer().optimize_block(optimized.block).physical

        context.adaptive.replanner = replan

    def _fold_adaptive_metrics(
        self, context: ExecContext, cache_key: Optional[PlanCacheKey] = None
    ) -> None:
        state = context.adaptive
        if state is None:
            return
        self.metrics.adaptive_checks_fired += state.checks_fired
        self.metrics.adaptive_reoptimizations += state.reoptimizations
        self.metrics.adaptive_checkpoints_reused += state.checkpoints_reused
        if state.reoptimizations > 0 and cache_key is not None:
            # The plan this execution started from was abandoned mid-run.
            # The closing harvest measures the *corrected* plan, so the
            # residual-misestimate trigger will not fire -- evict here so
            # the next request plans with the harvested actuals instead
            # of replaying the whole fire-and-replan cycle.
            self.plan_cache.evict(cache_key)

    def _note_execution_failure(
        self, cache_key: Optional[PlanCacheKey], error: ReproError
    ) -> None:
        """React to a typed execution failure of a (possibly cached) plan.

        Cancellation says nothing about the plan and is ignored.  A
        non-retryable error evicts the cached plan immediately -- it will
        keep failing.  Retryable errors (transient faults that outlived
        their retries) are tolerated up to
        :data:`RETRYABLE_FAILURES_BEFORE_EVICT` times; past that the plan
        is evicted *and* the key is marked so the next optimization of
        the same query uses conservative cardinality estimates.
        """
        self.metrics.execution_failures += 1
        if cache_key is None or isinstance(error, QueryCancelled):
            return
        if not getattr(error, "retryable", False):
            if self.plan_cache.evict(cache_key):
                self.metrics.plan_cache_error_evictions += 1
            self._plan_failures.pop(cache_key, None)
            return
        failures = self._plan_failures.get(cache_key, 0) + 1
        self._plan_failures[cache_key] = failures
        if failures >= RETRYABLE_FAILURES_BEFORE_EVICT:
            if self.plan_cache.evict(cache_key):
                self.metrics.plan_cache_error_evictions += 1
            self._conservative_keys.add(cache_key)
            self._plan_failures.pop(cache_key, None)

    def _execute_plan(
        self,
        optimized: OptimizedQuery,
        from_cache: bool,
        parameters: Optional[Tuple[Any, ...]] = None,
        cache_key: Optional[PlanCacheKey] = None,
        tenant: Optional[str] = None,
        priority: Optional[str] = None,
    ) -> QueryResult:
        context = self._make_context()
        # Admission happens before any execution work: a shed query
        # costs the server one queue decision, nothing more.  The slot
        # and memory lease are held for exactly the execution.
        ticket = self._admit(tenant, priority)
        self._apply_ticket(context, ticket)
        self._arm_replanner(context, optimized)
        release_snapshot = self._pin_read_snapshot(context)
        start = time.perf_counter()
        try:
            schema, rows = execute(
                optimized.physical, self.catalog, context, parameters=parameters
            )
        except ReproError as error:
            self.metrics.execute_seconds += time.perf_counter() - start
            self.metrics.fault_retries += context.counters.retries
            self.metrics.breaker_fast_fails += (
                context.counters.breaker_fast_fails
            )
            self._fold_adaptive_metrics(context, cache_key)
            self._note_execution_failure(cache_key, error)
            raise
        finally:
            release_snapshot()
            if ticket is not None:
                ticket.release()
        self.metrics.execute_seconds += time.perf_counter() - start
        self.metrics.record_execution(context, len(rows))
        self._fold_adaptive_metrics(context, cache_key)
        if cache_key is not None:
            self._plan_failures.pop(cache_key, None)
        self._note_feedback_harvest(context, cache_key)
        plan = optimized.physical
        if context.adaptive is not None and context.adaptive.final_plan is not None:
            plan = context.adaptive.final_plan
        return QueryResult(
            schema=schema,
            rows=rows,
            plan=plan,
            context=context,
            rewrite_trace=optimized.rewrite_trace,
            from_plan_cache=from_cache,
        )

    def _note_feedback_harvest(
        self, context: ExecContext, cache_key: Optional[PlanCacheKey]
    ) -> None:
        """Fold one execution's feedback harvest into session state.

        When the run's worst observed-vs-planned misestimate reaches
        :data:`FEEDBACK_REPLAN_QERROR`, the cached plan is dropped so
        the next use of the query re-optimizes under the selectivities
        just learned.  Plans built with feedback carry the correction in
        their estimates, so this trigger measures *residual* error and
        settles once the learned values stop surprising the optimizer.
        """
        summary = context.feedback_summary
        if summary is None:
            return
        self.metrics.feedback_observations += summary.observations
        if (
            cache_key is not None
            and summary.max_misestimate >= FEEDBACK_REPLAN_QERROR
            and self.plan_cache.evict(cache_key)
        ):
            self.metrics.feedback_reoptimizations += 1

    def _run_explain(
        self,
        stmt: ExplainStmt,
        tenant: Optional[str] = None,
        priority: Optional[str] = None,
    ) -> QueryResult:
        key = PlanCache.key(stmt.sql_text, stmt.query.param_count)
        optimized, from_cache, opt_seconds = self._optimize_cached(
            key, stmt.query
        )
        if not stmt.analyze:
            result = _text_result(
                "explain", "QUERY PLAN", optimized.explain().splitlines()
            )
            result.plan = optimized.physical
            result.from_plan_cache = from_cache
            return result
        context = self._make_context()
        ticket = self._admit(tenant, priority)
        self._apply_ticket(context, ticket)
        self._arm_replanner(context, optimized)
        release_snapshot = self._pin_read_snapshot(context)
        start = time.perf_counter()
        try:
            schema, rows = execute(optimized.physical, self.catalog, context)
        finally:
            release_snapshot()
            if ticket is not None:
                ticket.release()
        self.metrics.execute_seconds += time.perf_counter() - start
        self.metrics.record_execution(context, len(rows))
        self._fold_adaptive_metrics(context, key)
        self._note_feedback_harvest(context, key)
        rendered_plan = optimized.physical
        if context.adaptive is not None and context.adaptive.final_plan is not None:
            rendered_plan = context.adaptive.final_plan
        rendering = render_explain_analyze(
            rendered_plan,
            context.runtime,
            optimize_seconds=opt_seconds,
            context=context,
        )
        lines = rendering.splitlines()
        lines.append(f"({len(rows)} rows)")
        result = _text_result("explain", "QUERY PLAN", lines)
        result.plan = rendered_plan
        result.context = context
        result.from_plan_cache = from_cache
        return result

    # -- prepared statements -------------------------------------------
    def _register_prepared(
        self, name: str, sql_text: str, stmt: Optional[SelectStmt] = None
    ) -> PreparedStatement:
        if stmt is None:
            stmt = parse(sql_text)
        key = PlanCache.key(sql_text, stmt.param_count)
        self._optimize_cached(key, stmt)  # optimize eagerly at PREPARE time
        statement = PreparedStatement(
            name=name,
            sql_text=sql_text,
            param_count=stmt.param_count,
            cache_key=key,
        )
        self.prepared[name] = statement
        self.metrics.statements_prepared += 1
        return statement

    def prepare(self, name: str, sql_text: str) -> PreparedStatement:
        """Prepare ``sql_text`` (a SELECT with ``?`` markers) under ``name``.

        The plan is optimized immediately and cached; later
        :meth:`execute_prepared` calls reuse it without re-optimizing.
        """
        return self._register_prepared(name, sql_text)

    def execute_prepared(
        self,
        name: str,
        *args: Any,
        tenant: Optional[str] = None,
        priority: Optional[str] = None,
    ) -> QueryResult:
        """Execute a prepared statement with positional parameter values."""
        statement = self.prepared.get(name)
        if statement is None:
            raise PrepareError(f"unknown prepared statement {name!r}")
        if len(args) != statement.param_count:
            raise PrepareError(
                f"prepared statement {name!r} takes "
                f"{statement.param_count} parameter(s), got {len(args)}"
            )
        optimized, from_cache, _ = self._optimize_cached(
            statement.cache_key, None, sql_text=statement.sql_text
        )
        return self._execute_plan(
            optimized,
            from_cache,
            parameters=tuple(args),
            cache_key=statement.cache_key,
            tenant=tenant,
            priority=priority,
        )

    def deallocate(self, name: str) -> None:
        """Drop a prepared statement (its cached plan may persist)."""
        if name not in self.prepared:
            raise PrepareError(f"unknown prepared statement {name!r}")
        del self.prepared[name]

    # -- explain -------------------------------------------------------
    def explain(self, text: str) -> str:
        """The chosen physical plan for a query, as text."""
        return self.optimize(text).explain()

    def explain_analyze(self, text: str) -> str:
        """Execute ``text`` and render the plan annotated with actuals."""
        result = self.sql(
            text if text.lstrip().upper().startswith("EXPLAIN")
            else "EXPLAIN ANALYZE " + text
        )
        return "\n".join(row[0] for row in result.rows)

    def naive(self, text: str) -> Tuple[StreamSchema, List[Tuple[Any, ...]], InterpreterStats]:
        """Execute via the reference interpreter (no optimization).

        Used as the correctness oracle and the unoptimized baseline.
        """
        block = Binder(self.catalog, self.udfs).bind_sql(text)
        logical = lower_block(block, self.catalog)
        stats = InterpreterStats()
        schema, rows = interpret(logical, self.catalog, stats)
        return schema, rows, stats
