"""The optimizer facade and the user-facing Database API.

``Optimizer`` wires the pipeline together the way Section 2 describes
the two components of query evaluation: SQL text -> parse -> bind (QGM)
-> lower -> rewrite (Starburst-style rules) -> plan (System-R DP over
SPJ regions, operator mapping elsewhere) -> physical plan; the execution
engine then runs the plan.

``Database`` bundles a catalog with an optimizer and executor so the
examples read like using an embedded database.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Column
from repro.cost.parameters import DEFAULT_PARAMETERS, CostParameters
from repro.engine.context import ExecContext
from repro.engine.executor import execute
from repro.engine.interpreter import InterpreterStats, interpret
from repro.expr.schema import StreamSchema
from repro.logical.lower import lower_block
from repro.logical.operators import Get, LogicalOp
from repro.logical.qgm import QueryBlock
from repro.physical.plans import PhysicalOp
from repro.sql.binder import Binder, UdfRegistration
from repro.core.physicalize import Physicalizer
from repro.core.rewrite import RewriteContext, RuleEngine, default_rule_engine
from repro.core.systemr.enumerator import EnumeratorConfig
from repro.stats.propagation import CardinalityEstimator
from repro.stats.summaries import TableStats, analyze_all, analyze_table


@dataclass
class OptimizedQuery:
    """The artifacts of optimizing one query."""

    block: QueryBlock
    logical: LogicalOp
    rewritten: LogicalOp
    physical: PhysicalOp
    rewrite_trace: List[str] = field(default_factory=list)

    def explain(self) -> str:
        """The physical plan rendering."""
        return self.physical.explain()


class Optimizer:
    """End-to-end query optimizer.

    Args:
        catalog: schema, data, statistics.
        params: cost-model parameters.
        config: join-enumerator knobs.
        udfs: registered user-defined functions.
        use_rewrites: run the Starburst-style rewrite phase (disable to
            measure its benefit, e.g. benchmark E6).
    """

    def __init__(
        self,
        catalog: Catalog,
        params: CostParameters = DEFAULT_PARAMETERS,
        config: EnumeratorConfig = EnumeratorConfig(),
        udfs: Optional[Dict[str, UdfRegistration]] = None,
        use_rewrites: bool = True,
        rule_engine: Optional[RuleEngine] = None,
        use_materialized_views: bool = True,
    ) -> None:
        self.catalog = catalog
        self.params = params
        self.config = config
        self.binder = Binder(catalog, udfs)
        self.use_rewrites = use_rewrites
        self.rule_engine = rule_engine or default_rule_engine()
        self.physicalizer = Physicalizer(catalog, params, config)
        self.use_materialized_views = use_materialized_views

    # ------------------------------------------------------------------
    def optimize(self, sql: str) -> OptimizedQuery:
        """Optimize SQL text into a physical plan.

        When materialized views are registered (and enabled), every
        matching reformulation competes with the original plan on
        estimated cost -- the transparent use of Section 7.3.
        """
        block = self.binder.bind_sql(sql)
        best = self.optimize_block(block)
        if self.use_materialized_views and self.catalog.materialized_views():
            from repro.core.matviews.rewriter import MatViewRewriter

            rewriter = MatViewRewriter(self.catalog)
            for view, rewritten_block in rewriter.rewrites(block):
                try:
                    candidate = self.optimize_block(rewritten_block)
                except Exception:
                    continue
                if (
                    candidate.physical.est_cost.total
                    < best.physical.est_cost.total
                ):
                    candidate.rewrite_trace.append(
                        f"materialized-view:{view.name}"
                    )
                    best = candidate
        return best

    def optimize_block(self, block: QueryBlock) -> OptimizedQuery:
        """Optimize an already-bound query block."""
        logical = lower_block(block, self.catalog)
        context = RewriteContext(
            catalog=self.catalog, estimator=self._estimator(logical)
        )
        rewritten = logical
        if self.use_rewrites:
            rewritten = self.rule_engine.rewrite(logical, context)
        physical = self.physicalizer.physicalize(rewritten)
        return OptimizedQuery(
            block=block,
            logical=logical,
            rewritten=rewritten,
            physical=physical,
            rewrite_trace=context.trace,
        )

    def _estimator(self, logical: LogicalOp) -> CardinalityEstimator:
        stats: Dict[str, TableStats] = {}
        stack = [logical]
        while stack:
            node = stack.pop()
            if isinstance(node, Get):
                existing = self.catalog.stats(node.table)
                if existing is None:
                    existing = analyze_table(
                        self.catalog, node.table, histogram_kind=None
                    )
                stats[node.alias] = existing
            stack.extend(node.children())
        return CardinalityEstimator(stats)


@dataclass
class QueryResult:
    """Rows plus the plan and the measured execution work."""

    schema: StreamSchema
    rows: List[Tuple[Any, ...]]
    plan: PhysicalOp
    context: ExecContext
    rewrite_trace: List[str] = field(default_factory=list)

    @property
    def column_names(self) -> List[str]:
        """Output column names."""
        return [name for _alias, name in self.schema.slots]

    def __len__(self) -> int:
        return len(self.rows)


class Database:
    """An embedded database: catalog + optimizer + executor.

    Example:
        >>> db = Database()
        >>> from repro.datagen import build_emp_dept
        >>> _ = build_emp_dept(db.catalog, emp_rows=100, dept_rows=10)
        >>> result = db.sql("SELECT name FROM Emp WHERE sal > 100000")
    """

    def __init__(
        self,
        params: CostParameters = DEFAULT_PARAMETERS,
        config: EnumeratorConfig = EnumeratorConfig(),
        use_rewrites: bool = True,
    ) -> None:
        self.catalog = Catalog(page_size_bytes=params.page_size_bytes)
        self.params = params
        self.config = config
        self.use_rewrites = use_rewrites
        self.udfs: Dict[str, UdfRegistration] = {}

    # ------------------------------------------------------------------
    # Schema management
    # ------------------------------------------------------------------
    def create_table(
        self,
        name: str,
        columns: Sequence[Column],
        primary_key: Optional[Sequence[str]] = None,
    ):
        """Create a table (see :meth:`Catalog.create_table`)."""
        return self.catalog.create_table(name, columns, primary_key)

    def create_index(self, name: str, table: str, columns: Sequence[str], **kw):
        """Create an ordered index."""
        return self.catalog.create_index(name, table, columns, **kw)

    def create_view(self, name: str, sql: str) -> None:
        """Register a virtual view by its defining SQL."""
        self.catalog.create_view(name, sql)

    def register_udf(
        self,
        name: str,
        fn,
        per_tuple_cost: float = 100.0,
        selectivity: float = 0.5,
    ) -> None:
        """Register a user-defined function usable in WHERE clauses."""
        self.udfs[name.lower()] = UdfRegistration(fn, per_tuple_cost, selectivity)

    def analyze(self, histogram_kind: Optional[str] = "equi-depth") -> None:
        """Collect statistics for every table."""
        analyze_all(self.catalog, histogram_kind=histogram_kind)

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def optimizer(self) -> Optimizer:
        """A fresh optimizer bound to this database's catalog."""
        return Optimizer(
            self.catalog,
            self.params,
            self.config,
            udfs=self.udfs,
            use_rewrites=self.use_rewrites,
        )

    def optimize(self, sql: str) -> OptimizedQuery:
        """Optimize without executing."""
        return self.optimizer().optimize(sql)

    def sql(self, text: str) -> QueryResult:
        """Optimize and execute a query."""
        optimized = self.optimize(text)
        context = ExecContext(self.params)
        schema, rows = execute(optimized.physical, self.catalog, context)
        return QueryResult(
            schema=schema,
            rows=rows,
            plan=optimized.physical,
            context=context,
            rewrite_trace=optimized.rewrite_trace,
        )

    def explain(self, text: str) -> str:
        """The chosen physical plan for a query, as text."""
        return self.optimize(text).explain()

    def naive(self, text: str) -> Tuple[StreamSchema, List[Tuple[Any, ...]], InterpreterStats]:
        """Execute via the reference interpreter (no optimization).

        Used as the correctness oracle and the unoptimized baseline.
        """
        block = Binder(self.catalog, self.udfs).bind_sql(text)
        logical = lower_block(block, self.catalog)
        stats = InterpreterStats()
        schema, rows = interpret(logical, self.catalog, stats)
        return schema, rows, stats
