"""Expensive user-defined predicate placement (Section 7.2).

An ordinary predicate is evaluated as early as possible; an expensive
one (an image classifier over a BLOB, say) may be worth *delaying*
until joins have shrunk the stream.  Three strategies are implemented
over an analytic pipeline model:

* ``pushdown`` -- the classical heuristic: apply every predicate at its
  relation's scan.  Unsound for expensive predicates.
* ``rank`` -- Hellerstein/Stonebraker predicate migration [29, 30]:
  order predicates by rank = (selectivity - 1) / cost-per-tuple, which
  is provably optimal when there are *no joins*; with joins the greedy
  extension can be suboptimal.
* ``optimal`` -- the [8] approach: treat "which expensive predicates
  have been applied" as a physical property of the plan and let dynamic
  programming place them, guaranteeing optimality.

The model: a fixed linear join sequence; each join step costs work
proportional to the rows flowing through it; each expensive predicate
belongs to one relation and may run at any point after that relation
has entered the pipeline.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.errors import OptimizerError


@dataclass(frozen=True)
class ExpensivePredicate:
    """One user-defined predicate.

    Attributes:
        name: label for reporting.
        relation: index (0-based) of the relation it applies to.
        per_tuple_cost: evaluation cost per input row.
        selectivity: fraction of rows passing.
    """

    name: str
    relation: int
    per_tuple_cost: float
    selectivity: float

    @property
    def rank(self) -> float:
        """Predicate-migration rank: (selectivity - 1) / cost."""
        return (self.selectivity - 1.0) / self.per_tuple_cost


@dataclass
class PipelineProblem:
    """A linear join pipeline with expensive predicates.

    Attributes:
        base_rows: cardinality of each relation, in join order.
        join_selectivities: selectivity of the join predicate linking
            relation i to the prefix (length = len(base_rows) - 1).
        predicates: the expensive predicates.
        join_cost_per_row: modelled work per row flowing into each join.
    """

    base_rows: List[float]
    join_selectivities: List[float]
    predicates: List[ExpensivePredicate] = field(default_factory=list)
    join_cost_per_row: float = 1.0

    def __post_init__(self) -> None:
        if len(self.join_selectivities) != len(self.base_rows) - 1:
            raise OptimizerError(
                "need exactly one join selectivity per join step"
            )
        for predicate in self.predicates:
            if not 0 <= predicate.relation < len(self.base_rows):
                raise OptimizerError(
                    f"predicate {predicate.name!r} references a bad relation"
                )

    @property
    def positions(self) -> int:
        """Number of placement positions (after scan = 0, after join i = i)."""
        return len(self.base_rows)


# A placement maps each predicate to the pipeline position where it runs:
# position p means "after the p-th join" (0 = right after its scan-side
# availability, i.e. before any join touches it only if relation <= p).
Placement = Dict[str, int]


def evaluate(problem: PipelineProblem, placement: Placement) -> float:
    """Total cost of the pipeline under a placement.

    Position semantics: a predicate placed at position p runs after join
    step p (p >= its relation index), on the stream at that point.
    Position equal to the relation's index means immediately when the
    relation enters (for relation 0: at its scan).

    Raises:
        OptimizerError: for placements before the relation is available.
    """
    for predicate in problem.predicates:
        position = placement[predicate.name]
        if position < predicate.relation or position >= problem.positions:
            raise OptimizerError(
                f"predicate {predicate.name!r} placed at {position}, "
                f"but its relation enters at {predicate.relation}"
            )
    cost = 0.0
    rows = problem.base_rows[0]
    # Position 0: predicates on relation 0 placed at 0.
    for predicate in _at(problem, placement, 0):
        cost += rows * predicate.per_tuple_cost
        rows *= predicate.selectivity
    for step in range(1, len(problem.base_rows)):
        right_rows = problem.base_rows[step]
        # Predicates placed "on entry" of this relation filter the scan
        # side before the join.
        for predicate in _at(problem, placement, step):
            if predicate.relation == step:
                cost += right_rows * predicate.per_tuple_cost
                right_rows *= predicate.selectivity
        cost += rows * problem.join_cost_per_row
        rows = rows * right_rows * problem.join_selectivities[step - 1]
        # Predicates from earlier relations placed after this join.
        for predicate in _at(problem, placement, step):
            if predicate.relation != step:
                cost += rows * predicate.per_tuple_cost
                rows *= predicate.selectivity
    return cost


def _at(
    problem: PipelineProblem, placement: Placement, position: int
) -> List[ExpensivePredicate]:
    chosen = [
        predicate
        for predicate in problem.predicates
        if placement[predicate.name] == position
    ]
    # Within one position, cheaper-rank-first is optimal (no joins between).
    return sorted(chosen, key=lambda predicate: predicate.rank)


def pushdown_placement(problem: PipelineProblem) -> Placement:
    """The classical heuristic: every predicate at its relation's entry."""
    return {
        predicate.name: predicate.relation for predicate in problem.predicates
    }


def rank_placement(problem: PipelineProblem) -> Placement:
    """Predicate migration: order all predicates by rank, then place each
    as early as its rank position in the interleaved sequence allows.

    Without joins this is the provably optimal LPT-style ordering; with
    joins it ignores how join steps change stream cardinality, which is
    where it loses to the DP ([8]).
    """
    placement: Placement = {}
    ordered = sorted(problem.predicates, key=lambda predicate: predicate.rank)
    # Greedy: walk rank order; each predicate goes to the earliest legal
    # position not before the previously placed one (migration keeps the
    # relative rank order along the pipeline).
    frontier = 0
    for predicate in ordered:
        position = max(frontier, predicate.relation)
        placement[predicate.name] = min(position, problem.positions - 1)
        frontier = placement[predicate.name]
    return placement


def optimal_placement(problem: PipelineProblem) -> Tuple[Placement, float]:
    """Exact optimum by dynamic programming over applied-predicate sets.

    State: (join step, frozenset of predicates already applied) -> the
    cheapest way to reach it.  This realizes the [8] idea of carrying
    predicate application as a plan property so optimality survives.
    For the small predicate counts of real queries (and our benches)
    the 2^k state space is trivial.
    """
    names = [predicate.name for predicate in problem.predicates]
    best: Optional[Tuple[Placement, float]] = None
    # The DP over subsets is equivalent to trying all position vectors
    # with the within-position rank ordering handled by evaluate();
    # predicate counts are small, so enumerate position assignments.
    spaces = []
    for predicate in problem.predicates:
        spaces.append(range(predicate.relation, problem.positions))
    for combo in itertools.product(*spaces):
        placement = dict(zip(names, combo))
        cost = evaluate(problem, placement)
        if best is None or cost < best[1]:
            best = (placement, cost)
    if best is None:
        return {}, evaluate(problem, {})
    return best


def compare_strategies(problem: PipelineProblem) -> Dict[str, float]:
    """Costs of the three strategies on one problem."""
    push = evaluate(problem, pushdown_placement(problem))
    rank = evaluate(problem, rank_placement(problem))
    _placement, opt = optimal_placement(problem)
    return {"pushdown": push, "rank": rank, "optimal": opt}
