"""Optimization of queries with expensive user-defined predicates (Sec 7.2)."""

from repro.core.udf.placement import (
    ExpensivePredicate,
    PipelineProblem,
    compare_strategies,
    evaluate,
    optimal_placement,
    pushdown_placement,
    rank_placement,
)

__all__ = [
    "ExpensivePredicate",
    "PipelineProblem",
    "compare_strategies",
    "evaluate",
    "optimal_placement",
    "pushdown_placement",
    "rank_placement",
]
