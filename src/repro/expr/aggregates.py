"""Aggregate functions and their algebraic properties.

Section 4.1.3 of the paper distinguishes aggregate functions by whether
``Agg(S U S')`` can be computed from ``Agg(S)`` and ``Agg(S')`` -- the
*decomposability* property that makes staged aggregation (early partial
group-by below a join, final group-by above it) correct.  Each function
here records that property along with its partial/final computation, so
the group-by pushdown rule can check legality mechanically.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, FrozenSet, List, Optional, Sequence, Tuple

from repro.expr.expressions import ColumnRef, Expr


class AggFunc(enum.Enum):
    """Supported aggregate functions."""

    COUNT = "COUNT"
    SUM = "SUM"
    AVG = "AVG"
    MIN = "MIN"
    MAX = "MAX"

    @property
    def decomposable(self) -> bool:
        """Whether Agg(S U S') is computable from Agg(S), Agg(S').

        All five are decomposable: AVG decomposes through (SUM, COUNT).
        DISTINCT variants are not (handled on :class:`AggregateCall`).
        """
        return True


class Accumulator:
    """Mutable running state for one aggregate over one group."""

    __slots__ = ("func", "_count", "_sum", "_min", "_max", "_distinct_seen")

    def __init__(self, func: AggFunc, distinct: bool = False) -> None:
        self.func = func
        self._count = 0
        # Start SUM at integer zero: Python ints are arbitrary-precision,
        # so all-int groups accumulate exactly (no 2^53 rounding) and only
        # become float when a float value actually arrives.
        self._sum: Any = 0
        self._min: Any = None
        self._max: Any = None
        self._distinct_seen: Any = set() if distinct else None

    def add_value(self, value: Any) -> None:
        """Fold one value, honouring DISTINCT when enabled."""
        if self._distinct_seen is not None:
            if value is None or value in self._distinct_seen:
                return
            self._distinct_seen.add(value)
        self.add(value)

    def add(self, value: Any) -> None:
        """Fold one input value into the running state.

        SQL semantics: NULL inputs are ignored by every aggregate, except
        that COUNT(*) is handled by the caller passing a non-NULL marker.
        """
        if value is None:
            return
        self._count += 1
        if self.func in (AggFunc.SUM, AggFunc.AVG):
            self._sum += value
        elif self.func is AggFunc.MIN:
            if self._min is None or value < self._min:
                self._min = value
        elif self.func is AggFunc.MAX:
            if self._max is None or value > self._max:
                self._max = value

    def merge(self, other: "Accumulator") -> None:
        """Combine another accumulator's state (staged aggregation)."""
        if other.func is not self.func:
            raise ValueError("cannot merge accumulators of different functions")
        self._count += other._count
        self._sum += other._sum
        if other._min is not None and (self._min is None or other._min < self._min):
            self._min = other._min
        if other._max is not None and (self._max is None or other._max > self._max):
            self._max = other._max

    def add_partial(self, partial_value: Any, partial_count: int) -> None:
        """Fold a *partial aggregate* produced by a pushed-down group-by.

        For SUM and COUNT the partial value is summed; MIN/MAX take the
        extreme; AVG is invalid here (it must be decomposed into SUM and
        COUNT by the rewrite that introduced the staging).
        """
        if partial_value is None:
            return
        if self.func is AggFunc.COUNT:
            self._count += int(partial_value)
        elif self.func is AggFunc.SUM:
            self._sum += partial_value
            self._count += partial_count
        elif self.func is AggFunc.MIN:
            if self._min is None or partial_value < self._min:
                self._min = partial_value
            self._count += partial_count
        elif self.func is AggFunc.MAX:
            if self._max is None or partial_value > self._max:
                self._max = partial_value
            self._count += partial_count
        else:
            raise ValueError("AVG cannot consume partial aggregates directly")

    def result(self) -> Any:
        """Final value of the aggregate (SQL NULL for empty non-COUNT groups)."""
        if self.func is AggFunc.COUNT:
            return self._count
        if self._count == 0:
            return None
        if self.func is AggFunc.SUM:
            return self._sum
        if self.func is AggFunc.AVG:
            return self._sum / self._count
        if self.func is AggFunc.MIN:
            return self._min
        return self._max


@dataclass(frozen=True)
class AggregateCall:
    """One aggregate invocation in a SELECT list or HAVING clause.

    Attributes:
        func: the aggregate function.
        arg: argument expression, or None for ``COUNT(*)``.
        distinct: whether DISTINCT was specified (blocks staging).
        alias: output column name for the aggregate value.
    """

    func: AggFunc
    arg: Optional[Expr]
    distinct: bool = False
    alias: str = ""

    def __post_init__(self) -> None:
        if self.func is not AggFunc.COUNT and self.arg is None:
            raise ValueError(f"{self.func.value} requires an argument")
        if not self.alias:
            arg_sql = "*" if self.arg is None else self.arg.to_sql()
            name = f"{self.func.value.lower()}_{arg_sql}".replace(".", "_")
            object.__setattr__(self, "alias", name)

    @property
    def is_star(self) -> bool:
        """True for ``COUNT(*)``."""
        return self.arg is None

    @property
    def stageable(self) -> bool:
        """Whether this call permits staged (partial + final) computation."""
        return self.func.decomposable and not self.distinct

    def columns(self) -> FrozenSet[ColumnRef]:
        """Column footprint of the argument."""
        if self.arg is None:
            return frozenset()
        return self.arg.columns()

    def tables(self) -> FrozenSet[str]:
        """Table aliases referenced by the argument."""
        return frozenset(ref.table for ref in self.columns())

    def new_accumulator(self) -> Accumulator:
        """Fresh running state for one group."""
        return Accumulator(self.func, distinct=self.distinct)

    def to_sql(self) -> str:
        """SQL-like rendering."""
        arg_sql = "*" if self.arg is None else self.arg.to_sql()
        distinct = "DISTINCT " if self.distinct else ""
        return f"{self.func.value}({distinct}{arg_sql})"

    def __repr__(self) -> str:
        return self.to_sql()


def decompose_for_staging(
    calls: Sequence[AggregateCall],
) -> Tuple[List[AggregateCall], List[Tuple[AggregateCall, str]]]:
    """Plan a staged computation for a list of aggregate calls.

    Returns ``(partial_calls, final_plan)`` where ``partial_calls`` are the
    aggregates the *lower* (pushed-down) group-by computes, and
    ``final_plan`` maps each original call to the partial output column(s)
    the *upper* group-by combines.  AVG(x) is decomposed into SUM(x) and
    COUNT(x); SUM/MIN/MAX re-aggregate their own partials; COUNT(x) of the
    original becomes SUM over partial counts.

    Raises:
        ValueError: if any call is not stageable (e.g. DISTINCT).
    """
    partial_calls: List[AggregateCall] = []
    final_plan: List[Tuple[AggregateCall, str]] = []
    seen: dict = {}

    def ensure_partial(func: AggFunc, arg: Optional[Expr], tag: str) -> str:
        key = (func, arg)
        if key in seen:
            return seen[key]
        call = AggregateCall(func, arg, alias=f"_p{len(partial_calls)}_{tag}")
        partial_calls.append(call)
        seen[key] = call.alias
        return call.alias

    for call in calls:
        if not call.stageable:
            raise ValueError(f"aggregate {call.to_sql()} is not stageable")
        if call.func is AggFunc.AVG:
            sum_alias = ensure_partial(AggFunc.SUM, call.arg, "sum")
            count_alias = ensure_partial(AggFunc.COUNT, call.arg, "cnt")
            final_plan.append((call, f"{sum_alias}/{count_alias}"))
        elif call.func is AggFunc.COUNT:
            partial_alias = ensure_partial(AggFunc.COUNT, call.arg, "cnt")
            final_plan.append((call, partial_alias))
        else:
            partial_alias = ensure_partial(call.func, call.arg, call.func.value.lower())
            final_plan.append((call, partial_alias))
    return partial_calls, final_plan
