"""Scalar expression trees.

Expressions appear in predicates (WHERE/ON/HAVING), projections, and
aggregate arguments.  They are immutable and hashable so the optimizer can
use them as dictionary keys (e.g. the Cascades memo), and they expose the
column/table footprint that drives predicate placement decisions.
"""

from __future__ import annotations

import enum
from typing import Any, FrozenSet, Iterable, Optional, Sequence, Tuple


class Expr:
    """Base class for all scalar expressions.

    Subclasses are frozen value objects: equality and hashing are
    structural, which the memo and rewrite engine rely on.
    """

    __slots__ = ()

    def columns(self) -> FrozenSet["ColumnRef"]:
        """All column references appearing in this expression."""
        raise NotImplementedError

    def tables(self) -> FrozenSet[str]:
        """All table aliases referenced by this expression."""
        return frozenset(ref.table for ref in self.columns())

    def children(self) -> Tuple["Expr", ...]:
        """Immediate sub-expressions."""
        return ()

    def replace_children(self, children: Sequence["Expr"]) -> "Expr":
        """Rebuild this node with new children (same arity)."""
        if children:
            raise ValueError(f"{type(self).__name__} takes no children")
        return self

    def to_sql(self) -> str:
        """Render as SQL-like text (for plan display and debugging)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.to_sql()


class ColumnRef(Expr):
    """A reference to a column of a (possibly aliased) relation."""

    __slots__ = ("table", "column")

    def __init__(self, table: str, column: str) -> None:
        object.__setattr__(self, "table", table)
        object.__setattr__(self, "column", column)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("ColumnRef is immutable")

    def columns(self) -> FrozenSet["ColumnRef"]:
        return frozenset((self,))

    def to_sql(self) -> str:
        return f"{self.table}.{self.column}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ColumnRef)
            and self.table == other.table
            and self.column == other.column
        )

    def __hash__(self) -> int:
        return hash(("col", self.table, self.column))


class Literal(Expr):
    """A constant value (int, float, str, bool, or None for NULL)."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        object.__setattr__(self, "value", value)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Literal is immutable")

    def columns(self) -> FrozenSet[ColumnRef]:
        return frozenset()

    def to_sql(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return str(self.value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Literal)
            and type(self.value) is type(other.value)
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash(("lit", type(self.value).__name__, self.value))


class Param(Expr):
    """A prepared-statement parameter placeholder (``?``), 0-indexed.

    The optimizer treats a parameter like an opaque constant: it never
    contributes columns, selectivity estimation falls back to the
    System-R defaults, and access-path seek extraction skips it.  The
    executor substitutes the bound value at evaluation time, which is
    what lets one cached plan serve many EXECUTEs.
    """

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        object.__setattr__(self, "index", int(index))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Param is immutable")

    def columns(self) -> FrozenSet[ColumnRef]:
        return frozenset()

    def to_sql(self) -> str:
        return f"?{self.index + 1}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Param) and self.index == other.index

    def __hash__(self) -> int:
        return hash(("param", self.index))


class ComparisonOp(enum.Enum):
    """Binary comparison operators."""

    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    def flip(self) -> "ComparisonOp":
        """The operator with operand sides exchanged (a < b  <=>  b > a)."""
        return {
            ComparisonOp.EQ: ComparisonOp.EQ,
            ComparisonOp.NE: ComparisonOp.NE,
            ComparisonOp.LT: ComparisonOp.GT,
            ComparisonOp.LE: ComparisonOp.GE,
            ComparisonOp.GT: ComparisonOp.LT,
            ComparisonOp.GE: ComparisonOp.LE,
        }[self]

    def negate(self) -> "ComparisonOp":
        """The logical negation of the operator (a < b  <=>  NOT a >= b)."""
        return {
            ComparisonOp.EQ: ComparisonOp.NE,
            ComparisonOp.NE: ComparisonOp.EQ,
            ComparisonOp.LT: ComparisonOp.GE,
            ComparisonOp.LE: ComparisonOp.GT,
            ComparisonOp.GT: ComparisonOp.LE,
            ComparisonOp.GE: ComparisonOp.LT,
        }[self]


class Comparison(Expr):
    """A binary comparison between two scalar expressions."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: ComparisonOp, left: Expr, right: Expr) -> None:
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Comparison is immutable")

    def columns(self) -> FrozenSet[ColumnRef]:
        return self.left.columns() | self.right.columns()

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def replace_children(self, children: Sequence[Expr]) -> "Comparison":
        left, right = children
        return Comparison(self.op, left, right)

    def is_equijoin_predicate(self) -> bool:
        """True when this is ``col = col`` over two different relations."""
        return (
            self.op is ComparisonOp.EQ
            and isinstance(self.left, ColumnRef)
            and isinstance(self.right, ColumnRef)
            and self.left.table != self.right.table
        )

    def to_sql(self) -> str:
        return f"{self.left.to_sql()} {self.op.value} {self.right.to_sql()}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Comparison)
            and self.op is other.op
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self) -> int:
        return hash(("cmp", self.op, self.left, self.right))


class BoolOp(enum.Enum):
    """Boolean connectives."""

    AND = "AND"
    OR = "OR"


class BoolExpr(Expr):
    """An AND/OR over two or more sub-predicates (flattened n-ary form)."""

    __slots__ = ("op", "args")

    def __init__(self, op: BoolOp, args: Sequence[Expr]) -> None:
        if len(args) < 2:
            raise ValueError("BoolExpr needs at least two arguments")
        flattened: list = []
        for arg in args:
            if isinstance(arg, BoolExpr) and arg.op is op:
                flattened.extend(arg.args)
            else:
                flattened.append(arg)
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "args", tuple(flattened))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("BoolExpr is immutable")

    def columns(self) -> FrozenSet[ColumnRef]:
        result: FrozenSet[ColumnRef] = frozenset()
        for arg in self.args:
            result |= arg.columns()
        return result

    def children(self) -> Tuple[Expr, ...]:
        return self.args

    def replace_children(self, children: Sequence[Expr]) -> "BoolExpr":
        return BoolExpr(self.op, tuple(children))

    def to_sql(self) -> str:
        joiner = f" {self.op.value} "
        return "(" + joiner.join(arg.to_sql() for arg in self.args) + ")"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BoolExpr)
            and self.op is other.op
            and self.args == other.args
        )

    def __hash__(self) -> int:
        return hash(("bool", self.op, self.args))


class NotExpr(Expr):
    """Logical negation."""

    __slots__ = ("arg",)

    def __init__(self, arg: Expr) -> None:
        object.__setattr__(self, "arg", arg)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("NotExpr is immutable")

    def columns(self) -> FrozenSet[ColumnRef]:
        return self.arg.columns()

    def children(self) -> Tuple[Expr, ...]:
        return (self.arg,)

    def replace_children(self, children: Sequence[Expr]) -> "NotExpr":
        (arg,) = children
        return NotExpr(arg)

    def to_sql(self) -> str:
        return f"NOT ({self.arg.to_sql()})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, NotExpr) and self.arg == other.arg

    def __hash__(self) -> int:
        return hash(("not", self.arg))


class ArithOp(enum.Enum):
    """Binary arithmetic operators."""

    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"


class Arithmetic(Expr):
    """A binary arithmetic expression."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: ArithOp, left: Expr, right: Expr) -> None:
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Arithmetic is immutable")

    def columns(self) -> FrozenSet[ColumnRef]:
        return self.left.columns() | self.right.columns()

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def replace_children(self, children: Sequence[Expr]) -> "Arithmetic":
        left, right = children
        return Arithmetic(self.op, left, right)

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op.value} {self.right.to_sql()})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Arithmetic)
            and self.op is other.op
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self) -> int:
        return hash(("arith", self.op, self.left, self.right))


class IsNull(Expr):
    """``expr IS [NOT] NULL`` test (always two-valued)."""

    __slots__ = ("arg", "negated")

    def __init__(self, arg: Expr, negated: bool = False) -> None:
        object.__setattr__(self, "arg", arg)
        object.__setattr__(self, "negated", negated)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("IsNull is immutable")

    def columns(self) -> FrozenSet[ColumnRef]:
        return self.arg.columns()

    def children(self) -> Tuple[Expr, ...]:
        return (self.arg,)

    def replace_children(self, children: Sequence[Expr]) -> "IsNull":
        (arg,) = children
        return IsNull(arg, self.negated)

    def to_sql(self) -> str:
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"{self.arg.to_sql()} {suffix}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, IsNull)
            and self.arg == other.arg
            and self.negated == other.negated
        )

    def __hash__(self) -> int:
        return hash(("isnull", self.arg, self.negated))


class InList(Expr):
    """``expr IN (literal, ...)`` membership test over a constant list."""

    __slots__ = ("arg", "values")

    def __init__(self, arg: Expr, values: Sequence[Expr]) -> None:
        object.__setattr__(self, "arg", arg)
        object.__setattr__(self, "values", tuple(values))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("InList is immutable")

    def columns(self) -> FrozenSet[ColumnRef]:
        result = self.arg.columns()
        for value in self.values:
            result |= value.columns()
        return result

    def children(self) -> Tuple[Expr, ...]:
        return (self.arg,) + self.values

    def replace_children(self, children: Sequence[Expr]) -> "InList":
        return InList(children[0], tuple(children[1:]))

    def to_sql(self) -> str:
        items = ", ".join(value.to_sql() for value in self.values)
        return f"{self.arg.to_sql()} IN ({items})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, InList)
            and self.arg == other.arg
            and self.values == other.values
        )

    def __hash__(self) -> int:
        return hash(("inlist", self.arg, self.values))


class UdfCall(Expr):
    """A user-defined function applied to scalar arguments (Section 7.2).

    UDF predicates carry their own per-tuple evaluation cost and
    selectivity, which the expensive-predicate optimizer consumes.

    Attributes:
        name: registered UDF name.
        args: argument expressions.
        per_tuple_cost: modelled CPU cost of one invocation, in the cost
            model's CPU units (an ordinary comparison costs 1).
        selectivity: fraction of input tuples expected to satisfy the
            predicate when the UDF is used as a filter.
    """

    __slots__ = ("name", "args", "per_tuple_cost", "selectivity", "fn")

    def __init__(
        self,
        name: str,
        args: Sequence[Expr],
        per_tuple_cost: float = 100.0,
        selectivity: float = 0.5,
        fn: Any = None,
    ) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "args", tuple(args))
        object.__setattr__(self, "per_tuple_cost", float(per_tuple_cost))
        object.__setattr__(self, "selectivity", float(selectivity))
        object.__setattr__(self, "fn", fn)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("UdfCall is immutable")

    def columns(self) -> FrozenSet[ColumnRef]:
        result: FrozenSet[ColumnRef] = frozenset()
        for arg in self.args:
            result |= arg.columns()
        return result

    def children(self) -> Tuple[Expr, ...]:
        return self.args

    def replace_children(self, children: Sequence[Expr]) -> "UdfCall":
        return UdfCall(
            self.name, tuple(children), self.per_tuple_cost, self.selectivity, self.fn
        )

    @property
    def rank(self) -> float:
        """Predicate-migration rank: (selectivity - 1) / cost ([29, 30]).

        Lower (more negative) rank means the predicate should be applied
        earlier: it is cheap and/or highly selective.
        """
        return (self.selectivity - 1.0) / self.per_tuple_cost

    def to_sql(self) -> str:
        rendered = ", ".join(arg.to_sql() for arg in self.args)
        return f"{self.name}({rendered})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, UdfCall)
            and self.name == other.name
            and self.args == other.args
        )

    def __hash__(self) -> int:
        return hash(("udf", self.name, self.args))


# ----------------------------------------------------------------------
# Convenience constructors and traversals
# ----------------------------------------------------------------------
def col(table: str, column: str) -> ColumnRef:
    """Shorthand for :class:`ColumnRef`."""
    return ColumnRef(table, column)


def lit(value: Any) -> Literal:
    """Shorthand for :class:`Literal`."""
    return Literal(value)


def eq(left: Expr, right: Expr) -> Comparison:
    """Shorthand for an equality comparison."""
    return Comparison(ComparisonOp.EQ, left, right)


def conjuncts(predicate: Optional[Expr]) -> Tuple[Expr, ...]:
    """Split a predicate into its top-level AND conjuncts.

    ``None`` (no predicate) yields the empty tuple; a non-AND predicate
    yields a one-element tuple.
    """
    if predicate is None:
        return ()
    if isinstance(predicate, BoolExpr) and predicate.op is BoolOp.AND:
        return predicate.args
    return (predicate,)


def conjoin(predicates: Iterable[Expr]) -> Optional[Expr]:
    """AND together predicates; returns None for an empty input."""
    items = [p for p in predicates if p is not None]
    if not items:
        return None
    if len(items) == 1:
        return items[0]
    return BoolExpr(BoolOp.AND, items)


def substitute_columns(expr: Expr, mapping: dict) -> Expr:
    """Replace column references per ``mapping`` ({ColumnRef: Expr}).

    Used by view merging (Section 4.2.1) to rewrite a query's references
    to view columns into the view's defining expressions.
    """
    if isinstance(expr, ColumnRef):
        return mapping.get(expr, expr)
    children = expr.children()
    if not children:
        return expr
    new_children = [substitute_columns(child, mapping) for child in children]
    if tuple(new_children) == children:
        return expr
    return expr.replace_children(new_children)


def rename_tables(expr: Expr, mapping: dict) -> Expr:
    """Rewrite table aliases per ``mapping`` ({old_alias: new_alias})."""
    if isinstance(expr, ColumnRef):
        if expr.table in mapping:
            return ColumnRef(mapping[expr.table], expr.column)
        return expr
    children = expr.children()
    if not children:
        return expr
    new_children = [rename_tables(child, mapping) for child in children]
    if tuple(new_children) == children:
        return expr
    return expr.replace_children(new_children)
