"""Vector kernels: whole-batch expression evaluation over numpy columns.

The row-batch engine (PR 5) moves *batches* between operators but still
pays an interpreted-Python closure call per row.  This module is the
third expression backend: :func:`compile_vector` lowers an expression
tree to a kernel that consumes a :class:`ColumnarBatch` and produces a
whole column at once -- numpy elementwise ops on ``int64``/``float64``
columns, an object-dtype path where Python semantics cannot be
reproduced by the dtype (big ints, strings, mixed types), and a
row-at-a-time fallback (through :func:`repro.expr.compiler.compile_scalar`,
whose parity with the tree-walking evaluator is pinned by the
differential suites) for anything else.

NULL is represented by an explicit boolean *validity mask*, never by
NaN: a float column can hold a genuine NaN in a valid lane, and the two
are distinguishable end to end (``x IS NULL`` is False for a NaN value;
an aggregate skips NULL lanes but folds NaN lanes).

Error parity with row-at-a-time execution is kept by *deferring* errors
per lane: kernels that can raise (division by zero, incomparable
comparisons, UDFs) record ``{lane: ExecutionError}`` instead of raising
mid-batch, AND/OR combiners discard errors on lanes where an earlier
argument already decided the outcome (vectorized short-circuit), and the
consuming operator raises the error with the lowest lane index before
the batch escapes -- the same error a row-at-a-time loop would have hit
first.

Fast paths only engage when they are *bit-identical* to Python scalar
semantics.  The guards that matter:

* ``int64`` add/sub/mul runs vectorized only when exact interval
  arithmetic over the operand bounds proves the result cannot leave
  int64 (numpy wraps silently; Python ints are arbitrary precision);
* ``int64`` lanes take part in a float comparison or int/int division
  only when every magnitude is below 2**53 (numpy casts int64 to
  float64, which is lossy past that point; Python compares exactly);
* columns whose Python values overflow int64 ingest as object dtype in
  the first place (see ``ColumnarBatch.from_rows``).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ExecutionError
from repro.expr.compiler import compile_scalar
from repro.expr.evaluator import _param_value
from repro.expr.expressions import (
    Arithmetic,
    ArithOp,
    BoolExpr,
    BoolOp,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Expr,
    InList,
    IsNull,
    Literal,
    NotExpr,
    Param,
)
from repro.expr.schema import StreamSchema

# Largest integer magnitude for which int64 -> float64 conversion is
# exact; beyond it numpy's silent cast diverges from Python's exact
# int-vs-float comparison and exact int/int division.
_EXACT_FLOAT_INT = 2**53
_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1

# Lane-indexed deferred errors; ``None`` means "no error anywhere".
ErrorMap = Optional[Dict[int, ExecutionError]]


class VColumn:
    """One column of a batch: values + validity mask + deferred errors.

    ``values`` is a numpy array (``int64``, ``float64``, ``bool``, or
    ``object``); ``valid`` is a boolean array where ``True`` means the
    lane holds a real (non-NULL) value.  Values in invalid lanes are
    unspecified garbage -- the mask is the single source of truth, so a
    NaN in a *valid* lane is a genuine NaN value, never a NULL.
    """

    __slots__ = ("values", "valid", "errors", "_bounds")

    def __init__(
        self,
        values: np.ndarray,
        valid: np.ndarray,
        errors: ErrorMap = None,
    ) -> None:
        self.values = values
        self.valid = valid
        self.errors = errors
        self._bounds: Optional[Tuple[int, int]] = None

    def __len__(self) -> int:
        return len(self.values)

    def bounds(self) -> Tuple[int, int]:
        """Exact Python-int (min, max) over the full values array.

        Used by the overflow / 2**53 guards for int64 columns.  Garbage
        lanes are included deliberately: fast-path kernels bound their
        outputs over *all* lanes, so the conservative interval stays
        closed under composition.
        """
        if self._bounds is None:
            if len(self.values) == 0:
                self._bounds = (0, 0)
            else:
                self._bounds = (int(self.values.min()), int(self.values.max()))
        return self._bounds

    def raise_first(self) -> None:
        """Raise the deferred error a row-at-a-time loop would hit first."""
        if self.errors:
            raise self.errors[min(self.errors)]


Kernel = Callable[[Any], VColumn]

_NP_CMP = {
    ComparisonOp.EQ: np.equal,
    ComparisonOp.NE: np.not_equal,
    ComparisonOp.LT: np.less,
    ComparisonOp.LE: np.less_equal,
    ComparisonOp.GT: np.greater,
    ComparisonOp.GE: np.greater_equal,
}


def _merge_errors(first: ErrorMap, second: ErrorMap) -> ErrorMap:
    """Lane-wise merge; at a shared lane the *first* map wins (it came
    from the operand a row-at-a-time loop evaluates earlier)."""
    if not second:
        return dict(first) if first else None
    merged = dict(second)
    if first:
        merged.update(first)
    return merged


def _is_numeric(values: np.ndarray) -> bool:
    return values.dtype.kind in ("i", "f", "b")


def _is_int(values: np.ndarray) -> bool:
    return values.dtype.kind in ("i", "b")


def _within_exact_float(vc: VColumn) -> bool:
    lo, hi = vc.bounds()
    return -_EXACT_FLOAT_INT < lo and hi < _EXACT_FLOAT_INT


def _native_values(values: np.ndarray) -> Sequence[Any]:
    """Lane values as native Python objects (object arrays already are;
    numeric arrays convert losslessly via tolist)."""
    if values.dtype == object:
        return values
    return values.tolist()


def truthy(vc: VColumn) -> np.ndarray:
    """Python truthiness of each lane (garbage in invalid/error lanes)."""
    values = vc.values
    if values.dtype == np.bool_:
        return values
    if values.dtype == object:
        out = np.zeros(len(values), dtype=bool)
        for i in np.nonzero(vc.valid)[0]:
            out[i] = bool(values[i])
        return out
    return values != 0


def _broadcast(n: int, value: Any) -> VColumn:
    """A constant column.  Dtype mirrors ``ColumnarBatch.from_rows``:
    int64/float64 when exact, object otherwise (bools stay object so a
    projected ``TRUE`` round-trips as ``True``, not ``1``)."""
    if value is None:
        return VColumn(
            np.empty(n, dtype=object), np.zeros(n, dtype=bool)
        )
    if type(value) is int and _INT64_MIN <= value <= _INT64_MAX:
        return VColumn(
            np.full(n, value, dtype=np.int64), np.ones(n, dtype=bool)
        )
    if type(value) is float:
        return VColumn(
            np.full(n, value, dtype=np.float64), np.ones(n, dtype=bool)
        )
    out = np.empty(n, dtype=object)
    out[:] = value
    return VColumn(out, np.ones(n, dtype=bool))


def _rowwise(expr: Expr, schema: StreamSchema) -> Kernel:
    """Universal fallback: run the compiled scalar closure lane by lane.

    Correct for every expression the row engines accept (it *is* the
    row path), deferring per-lane ExecutionErrors so surrounding vector
    combinators keep short-circuit error parity.
    """
    fn = compile_scalar(expr, schema)

    def kernel(batch: Any) -> VColumn:
        rows = batch.rows()
        n = batch.length
        values = np.empty(n, dtype=object)
        valid = np.ones(n, dtype=bool)
        errors: Dict[int, ExecutionError] = {}
        for i, row in enumerate(rows):
            try:
                value = fn(row)
            except ExecutionError as exc:
                errors[i] = exc
                valid[i] = False
                continue
            if value is None:
                valid[i] = False
            else:
                values[i] = value
        return VColumn(values, valid, errors or None)

    return kernel


def _compare_kernel(expr: Comparison, schema: StreamSchema) -> Kernel:
    from repro.expr.evaluator import _compare

    op = expr.op
    left_k = compile_vector(expr.left, schema)
    right_k = compile_vector(expr.right, schema)
    np_op = _NP_CMP[op]

    def kernel(batch: Any) -> VColumn:
        left = left_k(batch)
        right = right_k(batch)
        errors = _merge_errors(left.errors, right.errors)
        valid = left.valid & right.valid
        if _is_numeric(left.values) and _is_numeric(right.values):
            int_float = _is_int(left.values) != _is_int(right.values)
            safe = True
            if int_float:
                # int-vs-float comparison: numpy casts the int column to
                # float64; only exact below 2**53.
                int_side = left if _is_int(left.values) else right
                safe = _within_exact_float(int_side)
            if safe:
                with np.errstate(invalid="ignore"):
                    values = np_op(left.values, right.values)
                return VColumn(values, valid, errors)
        # Object path: Python semantics lane by lane via the shared
        # _compare helper (same ExecutionError for incomparable pairs).
        # Native values, not numpy scalars: np.int64 comparisons cast.
        lv = _native_values(left.values)
        rv = _native_values(right.values)
        values = np.zeros(batch.length, dtype=bool)
        new_errors: Dict[int, ExecutionError] = {}
        for i in np.nonzero(valid)[0]:
            i = int(i)
            if errors and i in errors:
                continue
            try:
                values[i] = _compare(op, lv[i], rv[i])
            except ExecutionError as exc:
                new_errors[i] = exc
                valid[i] = False
        if new_errors:
            errors = _merge_errors(errors, new_errors)
        return VColumn(values, valid, errors)

    return kernel


def _arith_kernel(expr: Arithmetic, schema: StreamSchema) -> Kernel:
    from repro.expr.evaluator import _arith

    op = expr.op
    left_k = compile_vector(expr.left, schema)
    right_k = compile_vector(expr.right, schema)

    def object_path(
        batch: Any, left: VColumn, right: VColumn,
        valid: np.ndarray, errors: ErrorMap,
    ) -> VColumn:
        # Native values, not numpy scalars: np.int64 + np.int64 wraps
        # silently, which is precisely what this path must not do.
        lv = _native_values(left.values)
        rv = _native_values(right.values)
        values = np.empty(batch.length, dtype=object)
        new_errors: Dict[int, ExecutionError] = {}
        for i in np.nonzero(valid)[0]:
            i = int(i)
            if errors and i in errors:
                continue
            try:
                values[i] = _arith(op, lv[i], rv[i])
            except ExecutionError as exc:
                new_errors[i] = exc
                valid[i] = False
        if new_errors:
            errors = _merge_errors(errors, new_errors)
        return VColumn(values, valid, errors)

    def kernel(batch: Any) -> VColumn:
        left = left_k(batch)
        right = right_k(batch)
        errors = _merge_errors(left.errors, right.errors)
        valid = left.valid & right.valid
        if not (_is_numeric(left.values) and _is_numeric(right.values)):
            return object_path(batch, left, right, valid, errors)
        # Python coerces bool to int under arithmetic (True + False == 1)
        # but numpy bool arrays do logical add and refuse subtraction.
        if left.values.dtype.kind == "b":
            left = VColumn(left.values.astype(np.int64), left.valid, left.errors)
        if right.values.dtype.kind == "b":
            right = VColumn(
                right.values.astype(np.int64), right.valid, right.errors
            )
        both_int = _is_int(left.values) and _is_int(right.values)
        if op is ArithOp.DIV:
            if both_int and not (
                _within_exact_float(left) and _within_exact_float(right)
            ):
                # Python divides big ints exactly (correctly-rounded
                # rational); numpy's int64->float64 casts are lossy.
                return object_path(batch, left, right, valid, errors)
            zero = valid & (right.values == 0)
            if zero.any():
                new_errors: Dict[int, ExecutionError] = {}
                for i in np.nonzero(zero)[0]:
                    i = int(i)
                    if errors and i in errors:
                        continue
                    new_errors[i] = ExecutionError("division by zero")
                errors = _merge_errors(errors, new_errors)
            with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
                values = np.true_divide(left.values, right.values)
            return VColumn(values, valid, errors)
        if both_int:
            llo, lhi = left.bounds()
            rlo, rhi = right.bounds()
            if op is ArithOp.ADD:
                lo, hi = llo + rlo, lhi + rhi
            elif op is ArithOp.SUB:
                lo, hi = llo - rhi, lhi - rlo
            else:  # MUL: extreme products bound the exact interval
                corners = (llo * rlo, llo * rhi, lhi * rlo, lhi * rhi)
                lo, hi = min(corners), max(corners)
            if lo < _INT64_MIN or hi > _INT64_MAX:
                # int64 would wrap silently; Python ints do not.
                return object_path(batch, left, right, valid, errors)
        np_op = {
            ArithOp.ADD: np.add,
            ArithOp.SUB: np.subtract,
            ArithOp.MUL: np.multiply,
        }[op]
        with np.errstate(invalid="ignore", over="ignore"):
            values = np_op(left.values, right.values)
        return VColumn(values, valid, errors)

    return kernel


def _bool_kernel(expr: BoolExpr, schema: StreamSchema) -> Kernel:
    kernels = [compile_vector(arg, schema) for arg in expr.args]
    is_and = expr.op is BoolOp.AND

    def kernel(batch: Any) -> VColumn:
        n = batch.length
        # Lanes where an earlier argument already returned (False for
        # AND, True for OR): later arguments are not "evaluated" there,
        # so their values, unknowns, AND errors are discarded -- the
        # vectorized equivalent of short-circuiting.
        decided = np.zeros(n, dtype=bool)
        saw_unknown = np.zeros(n, dtype=bool)
        errored = np.zeros(n, dtype=bool)
        errors: ErrorMap = None
        for arg_k in kernels:
            arg = arg_k(batch)
            active = ~decided & ~errored
            if arg.errors:
                reached = {
                    i: exc for i, exc in arg.errors.items() if active[i]
                }
                if reached:
                    errors = _merge_errors(errors, reached)
                    for i in reached:
                        errored[i] = True
                        active[i] = False
            t = truthy(arg)
            if is_and:
                early = active & arg.valid & ~t
            else:
                early = active & arg.valid & t
            decided |= early
            saw_unknown |= active & ~arg.valid
        if is_and:
            values = ~decided & ~saw_unknown
        else:
            values = decided
        valid = decided | ~saw_unknown
        return VColumn(values, valid, errors)

    return kernel


def _in_list_kernel(expr: InList, schema: StreamSchema) -> Kernel:
    # Fast path only for all-literal numeric candidate lists over a
    # numeric needle; anything else (strings, expressions as candidates,
    # mixed incomparable types) goes row-at-a-time for exact semantics.
    literals: List[Any] = []
    for candidate in expr.values:
        if not isinstance(candidate, Literal):
            return _rowwise(expr, schema)
        literals.append(candidate.value)
    present = [v for v in literals if v is not None]
    has_null = len(present) < len(literals)
    for v in present:
        if type(v) is int:
            if not (-_EXACT_FLOAT_INT < v < _EXACT_FLOAT_INT):
                return _rowwise(expr, schema)
        elif type(v) is not float:
            return _rowwise(expr, schema)
    needle_k = compile_vector(expr.arg, schema)
    fallback = _rowwise(expr, schema)

    def kernel(batch: Any) -> VColumn:
        needle = needle_k(batch)
        if not _is_numeric(needle.values):
            return fallback(batch)
        if _is_int(needle.values) and any(
            type(v) is float for v in present
        ) and not _within_exact_float(needle):
            return fallback(batch)
        match = np.zeros(batch.length, dtype=bool)
        for v in present:
            with np.errstate(invalid="ignore"):
                match |= needle.values == v
        # NULL candidates make a non-match UNKNOWN, never a match False.
        valid = needle.valid & (match if has_null else np.ones_like(match))
        return VColumn(match, valid, needle.errors)

    return kernel


def compile_vector(expr: Expr, schema: StreamSchema) -> Kernel:
    """Compile an expression into a ``batch -> VColumn`` kernel."""
    if isinstance(expr, Literal):
        value = expr.value
        return lambda batch: _broadcast(batch.length, value)
    if isinstance(expr, Param):
        # Late binding, looked up per batch (prepared-statement reruns).
        return lambda batch: _broadcast(batch.length, _param_value(expr))
    if isinstance(expr, ColumnRef):
        position = schema.position(expr)
        return lambda batch: batch.vcolumns[position]
    if isinstance(expr, Comparison):
        return _compare_kernel(expr, schema)
    if isinstance(expr, BoolExpr):
        return _bool_kernel(expr, schema)
    if isinstance(expr, NotExpr):
        arg_k = compile_vector(expr.arg, schema)

        def negation(batch: Any) -> VColumn:
            arg = arg_k(batch)
            return VColumn(~truthy(arg), arg.valid, arg.errors)

        return negation
    if isinstance(expr, IsNull):
        arg_k = compile_vector(expr.arg, schema)
        negated = expr.negated

        def null_test(batch: Any) -> VColumn:
            arg = arg_k(batch)
            values = arg.valid.copy() if negated else ~arg.valid
            if arg.errors:
                # Error lanes were never NULL-tested by the row loop.
                for i in arg.errors:
                    values[i] = False
            return VColumn(
                values, np.ones(batch.length, dtype=bool), arg.errors
            )

        return null_test
    if isinstance(expr, Arithmetic):
        return _arith_kernel(expr, schema)
    if isinstance(expr, InList):
        return _in_list_kernel(expr, schema)
    # UdfCall, subquery markers, and anything future: row-at-a-time.
    return _rowwise(expr, schema)


def compile_vector_predicate(
    expr: Optional[Expr], schema: StreamSchema
) -> Callable[[Any], np.ndarray]:
    """Compile a filter predicate into a ``batch -> keep-mask`` kernel.

    Deferred errors raise here -- before any row of the batch escapes --
    matching the row-batch engine, which fills a whole output batch
    before yielding it.
    """
    if expr is None:
        return lambda batch: np.ones(batch.length, dtype=bool)
    kern = compile_vector(expr, schema)

    def predicate(batch: Any) -> np.ndarray:
        vc = kern(batch)
        vc.raise_first()
        return vc.valid & truthy(vc)

    return predicate


# ----------------------------------------------------------------------
# Canonical key hashing (shared by the partitioned-parallel runtime and
# the columnar hash-join probe)
# ----------------------------------------------------------------------
# One 64-bit value hash with a single invariant: numerically equal key
# values hash equal regardless of representation -- int 2, float 2.0,
# and bool-as-int lanes agree; every NaN (including the executor's
# shared ``_NAN_KEY`` sentinel, which *is* a NaN) maps to one constant;
# NULL maps to another.  The scalar path (:func:`hash_value` /
# :func:`hash_key`) and the vectorized path (:func:`hash_column` /
# :func:`hash_columns`) produce bit-identical results lane for lane, so
# a query may mix them freely: both sides of a repartitioned join agree
# on partition assignment even when one side hashed vectorized and the
# other fell back to per-row hashing.
#
# The mixer is the splitmix64 finalizer; numpy uint64 arithmetic wraps
# silently, matching the explicitly masked Python-int arithmetic.
_MASK64 = (1 << 64) - 1
_HASH_NULL = 0x9AE16A3B2F90404F
_HASH_NAN = 0xC2B2AE3D27D4EB4F
_HASH_GOLDEN = 0x9E3779B97F4A7C15
_HASH_SEED = 0x8445D61A4E774912
# Integral floats convert to exact Python ints only while the exponent
# keeps them in a range that also fits numpy's int64 cast.
_HASH_INT_FLOAT_BOUND = float(2**62)


def _mix64(x: int) -> int:
    x &= _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def _mix64_array(x: np.ndarray) -> np.ndarray:
    x = x.astype(np.uint64, copy=True)
    x ^= x >> np.uint64(30)
    x *= np.uint64(0xBF58476D1CE4E5B9)
    x ^= x >> np.uint64(27)
    x *= np.uint64(0x94D049BB133111EB)
    x ^= x >> np.uint64(31)
    return x


def hash_value(value: Any) -> int:
    """The canonical 64-bit hash of one key value."""
    if value is None:
        return _mix64(_HASH_NULL)
    if isinstance(value, bool):
        return _mix64(int(value))
    if isinstance(value, int):
        return _mix64(value & _MASK64)
    if isinstance(value, float):
        if value != value:
            return _mix64(_HASH_NAN)
        if value.is_integer() and abs(value) < _HASH_INT_FLOAT_BOUND:
            return _mix64(int(value) & _MASK64)
        bits = np.float64(value).view(np.uint64)
        return _mix64(int(bits))
    return _mix64(hash(value) & _MASK64)


def hash_key(values: Sequence[Any]) -> int:
    """The canonical hash of a multi-part key (matches hash_columns)."""
    h = _HASH_SEED
    for value in values:
        h = _mix64(((h + _HASH_GOLDEN) & _MASK64) ^ hash_value(value))
    return h


def hash_column(values: np.ndarray, valid: np.ndarray) -> np.ndarray:
    """Per-lane canonical hashes for one column (NULL lanes included).

    Bit-identical to ``[hash_value(v) for v in lanes]`` where invalid
    lanes read as None.  Numeric dtypes hash vectorized; object columns
    (strings, big ints, mixed) hash lane by lane through the same
    scalar function.
    """
    n = len(values)
    kind = values.dtype.kind
    if kind in "iub":
        out = _mix64_array(values.astype(np.int64).astype(np.uint64))
    elif kind == "f":
        lanes = values.astype(np.float64, copy=False)
        with np.errstate(invalid="ignore"):
            isnan = np.isnan(lanes)
            integral = (
                np.isfinite(lanes)
                & (np.abs(lanes) < _HASH_INT_FLOAT_BOUND)
                & (np.floor(lanes) == lanes)
            )
        pre = lanes.view(np.uint64).copy()
        if integral.any():
            pre[integral] = (
                lanes[integral].astype(np.int64).astype(np.uint64)
            )
        if isnan.any():
            pre[isnan] = np.uint64(_HASH_NAN)
        out = _mix64_array(pre)
    else:
        out = np.fromiter(
            (
                hash_value(v if ok else None)
                for v, ok in zip(values.tolist(), valid.tolist())
            ),
            dtype=np.uint64,
            count=n,
        )
        return out
    if not valid.all():
        out[~valid] = np.uint64(_mix64(_HASH_NULL))
    return out


def hash_columns(columns: Sequence[Tuple[np.ndarray, np.ndarray]]) -> np.ndarray:
    """Combined per-row hashes over (values, valid) key columns.

    Bit-identical to ``[hash_key(row_values) for row in rows]``.
    """
    if not columns:
        return np.zeros(0, dtype=np.uint64)
    n = len(columns[0][0])
    h = np.full(n, _HASH_SEED, dtype=np.uint64)
    golden = np.uint64(_HASH_GOLDEN)
    for values, valid in columns:
        h = _mix64_array((h + golden) ^ hash_column(values, valid))
    return h
