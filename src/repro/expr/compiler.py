"""Expression compilation: one closure per operator instead of a tree
walk per row.

:func:`evaluate` re-dispatches on expression type for every row an
operator touches.  The pipelined executor instead calls
:func:`compile_scalar` once when an operator's stream starts, folding
schema positions, literals, and operator dispatch into nested Python
closures; the per-row cost is then just the closure calls.

Semantics are identical to the tree-walking evaluator by construction:
the compiled closures reuse its ``_compare`` / ``_arith`` /
``_param_value`` helpers (same three-valued logic, same typed errors,
same late ``Param`` binding through ``bind_parameters``), and the
differential suite cross-checks the two paths on every query.  The
evaluator stays available as the oracle toggle
(``ExecContext.compiled_expressions = False``).
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.errors import ExecutionError
from repro.expr.evaluator import _arith, _compare, _param_value, evaluate
from repro.expr.expressions import (
    Arithmetic,
    BoolExpr,
    BoolOp,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Expr,
    InList,
    IsNull,
    Literal,
    NotExpr,
    Param,
    UdfCall,
)
from repro.expr.schema import StreamSchema

Row = Sequence[Any]
Compiled = Callable[[Row], Any]


def compile_scalar(expr: Expr, schema: StreamSchema) -> Compiled:
    """Compile an expression tree into a ``row -> value`` closure.

    Returns a value, or ``None`` for SQL NULL / UNKNOWN, exactly as
    :func:`repro.expr.evaluator.evaluate` would.
    """
    if isinstance(expr, Literal):
        value = expr.value
        return lambda row: value
    if isinstance(expr, Param):
        # Late binding: the bound-parameter tuple is looked up per row so
        # cached compiled plans see the values of the current execution.
        return lambda row: _param_value(expr)
    if isinstance(expr, ColumnRef):
        position = schema.position(expr)
        return lambda row: row[position]
    if isinstance(expr, Comparison):
        op = expr.op
        left = compile_scalar(expr.left, schema)
        right = compile_scalar(expr.right, schema)
        return lambda row: _compare(op, left(row), right(row))
    if isinstance(expr, BoolExpr):
        args = tuple(compile_scalar(arg, schema) for arg in expr.args)
        if expr.op is BoolOp.AND:

            def conjunction(row: Row) -> Optional[bool]:
                saw_unknown = False
                for arg in args:
                    value = arg(row)
                    if value is None:
                        saw_unknown = True
                    elif not value:
                        return False
                return None if saw_unknown else True

            return conjunction

        def disjunction(row: Row) -> Optional[bool]:
            saw_unknown = False
            for arg in args:
                value = arg(row)
                if value is None:
                    saw_unknown = True
                elif value:
                    return True
            return None if saw_unknown else False

        return disjunction
    if isinstance(expr, NotExpr):
        arg = compile_scalar(expr.arg, schema)

        def negation(row: Row) -> Optional[bool]:
            value = arg(row)
            if value is None:
                return None
            return not value

        return negation
    if isinstance(expr, Arithmetic):
        op = expr.op
        left = compile_scalar(expr.left, schema)
        right = compile_scalar(expr.right, schema)
        return lambda row: _arith(op, left(row), right(row))
    if isinstance(expr, IsNull):
        arg = compile_scalar(expr.arg, schema)
        if expr.negated:
            return lambda row: arg(row) is not None
        return lambda row: arg(row) is None
    if isinstance(expr, InList):
        needle_fn = compile_scalar(expr.arg, schema)
        values = tuple(compile_scalar(value, schema) for value in expr.values)

        def membership(row: Row) -> Optional[bool]:
            needle = needle_fn(row)
            if needle is None:
                return None
            saw_null = False
            for candidate in values:
                value = candidate(row)
                if value is None:
                    saw_null = True
                elif _compare(ComparisonOp.EQ, value, needle):
                    return True
            return None if saw_null else False

        return membership
    if isinstance(expr, UdfCall):
        fn = expr.fn
        name = expr.name
        args = tuple(compile_scalar(arg, schema) for arg in expr.args)

        def call(row: Row) -> Any:
            if fn is None:
                raise ExecutionError(f"UDF {name!r} has no bound implementation")
            values = [arg(row) for arg in args]
            try:
                return fn(*values)
            except Exception as exc:  # surface UDF bugs as execution errors
                raise ExecutionError(f"UDF {name!r} raised: {exc}") from exc

        return call
    # Unknown expression types defer to the evaluator, which raises the
    # canonical ExecutionError at evaluation time (not compile time).
    return lambda row: evaluate(expr, row, schema)


def compile_predicate(
    expr: Optional[Expr], schema: StreamSchema
) -> Callable[[Row], bool]:
    """Compile a filter predicate: keep the row only when exactly True.

    A missing predicate compiles to keep-everything, mirroring
    :func:`repro.expr.evaluator.predicate_holds`.
    """
    if expr is None:
        return lambda row: True
    scalar = compile_scalar(expr, schema)
    return lambda row: scalar(row) is True
