"""Row-at-a-time expression evaluation with SQL three-valued logic.

Predicates evaluate to ``True``, ``False``, or ``None`` (UNKNOWN); a
filter keeps a row only when the predicate is exactly ``True``.  Getting
NULL semantics right matters for the paper's outerjoin and unnesting
rewrites (Section 4.2.2 dwells on precisely this subtlety).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Optional, Sequence, Tuple

from repro.errors import ExecutionError
from repro.expr.expressions import (
    Arithmetic,
    ArithOp,
    BoolExpr,
    BoolOp,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Expr,
    InList,
    IsNull,
    Literal,
    NotExpr,
    Param,
    UdfCall,
)
from repro.expr.schema import StreamSchema

Row = Sequence[Any]

# Parameter values for the execution currently in progress.  Bound by
# the executor around a plan run (see :func:`bind_parameters`) so cached
# prepared-statement plans can be re-executed with fresh values without
# rewriting the plan tree.  Thread-local: concurrent sessions executing
# prepared statements over one shared Database must each see their own
# binding, never another thread's.
_BINDING = threading.local()


def _bound_params() -> Optional[Tuple[Any, ...]]:
    return getattr(_BINDING, "params", None)


@contextmanager
def bind_parameters(values: Optional[Sequence[Any]]):
    """Bind positional parameter values for the duration of a block.

    Nested executions (e.g. Apply running a subplan) see the innermost
    binding; the previous binding is restored on exit.  Bindings are
    per-thread.
    """
    previous = _bound_params()
    _BINDING.params = tuple(values) if values is not None else None
    try:
        yield
    finally:
        _BINDING.params = previous


def _param_value(expr: Param) -> Any:
    params = _bound_params()
    if params is None:
        raise ExecutionError(
            f"parameter ?{expr.index + 1} has no bound value "
            "(EXECUTE the statement with arguments)"
        )
    if expr.index >= len(params):
        raise ExecutionError(
            f"parameter ?{expr.index + 1} out of range "
            f"({len(params)} values bound)"
        )
    return params[expr.index]


def evaluate(expr: Expr, row: Row, schema: StreamSchema) -> Any:
    """Evaluate a scalar expression against one row.

    Returns a value, or ``None`` to represent SQL NULL / UNKNOWN.

    Raises:
        ExecutionError: on unsupported expression types or bad UDFs.
    """
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, Param):
        return _param_value(expr)
    if isinstance(expr, ColumnRef):
        return row[schema.position(expr)]
    if isinstance(expr, Comparison):
        return _compare(
            expr.op,
            evaluate(expr.left, row, schema),
            evaluate(expr.right, row, schema),
        )
    if isinstance(expr, BoolExpr):
        return _bool_connect(expr, row, schema)
    if isinstance(expr, NotExpr):
        value = evaluate(expr.arg, row, schema)
        if value is None:
            return None
        return not value
    if isinstance(expr, Arithmetic):
        return _arith(
            expr.op,
            evaluate(expr.left, row, schema),
            evaluate(expr.right, row, schema),
        )
    if isinstance(expr, IsNull):
        value = evaluate(expr.arg, row, schema)
        is_null = value is None
        return not is_null if expr.negated else is_null
    if isinstance(expr, InList):
        return _in_list(expr, row, schema)
    if isinstance(expr, UdfCall):
        return _udf(expr, row, schema)
    raise ExecutionError(f"cannot evaluate expression type {type(expr).__name__}")


def _compare(op: ComparisonOp, left: Any, right: Any) -> Optional[bool]:
    if left is None or right is None:
        return None
    try:
        if op is ComparisonOp.EQ:
            return left == right
        if op is ComparisonOp.NE:
            return left != right
        if op is ComparisonOp.LT:
            return left < right
        if op is ComparisonOp.LE:
            return left <= right
        if op is ComparisonOp.GT:
            return left > right
        return left >= right
    except TypeError as exc:
        raise ExecutionError(
            f"incomparable values {left!r} and {right!r}"
        ) from exc


def _bool_connect(expr: BoolExpr, row: Row, schema: StreamSchema) -> Optional[bool]:
    # Three-valued AND: False dominates, then UNKNOWN, then True.
    # Three-valued OR:  True dominates, then UNKNOWN, then False.
    saw_unknown = False
    if expr.op is BoolOp.AND:
        for arg in expr.args:
            value = evaluate(arg, row, schema)
            if value is None:
                saw_unknown = True
            elif not value:
                return False
        return None if saw_unknown else True
    for arg in expr.args:
        value = evaluate(arg, row, schema)
        if value is None:
            saw_unknown = True
        elif value:
            return True
    return None if saw_unknown else False


def _arith(op: ArithOp, left: Any, right: Any) -> Any:
    if left is None or right is None:
        return None
    try:
        if op is ArithOp.ADD:
            return left + right
        if op is ArithOp.SUB:
            return left - right
        if op is ArithOp.MUL:
            return left * right
        if right == 0:
            raise ExecutionError("division by zero")
        return left / right
    except (TypeError, OverflowError) as exc:
        # OverflowError covers sequence repetition with a huge count
        # ('' * 2**70) and int-to-float conversion overflow; both must
        # surface as the canonical ExecutionError so the vectorized
        # backend can defer them per lane like any other row error.
        raise ExecutionError(
            f"bad arithmetic operands {left!r}, {right!r}"
        ) from exc


def _in_list(expr: InList, row: Row, schema: StreamSchema) -> Optional[bool]:
    needle = evaluate(expr.arg, row, schema)
    if needle is None:
        return None
    saw_null = False
    for candidate in expr.values:
        value = evaluate(candidate, row, schema)
        if value is None:
            saw_null = True
        elif _compare(ComparisonOp.EQ, value, needle):
            # Membership is equality: route through _compare so that
            # incomparable pairs (e.g. 1 IN ('a')) raise the canonical
            # ExecutionError instead of silently comparing unequal.
            return True
    return None if saw_null else False


def _udf(expr: UdfCall, row: Row, schema: StreamSchema) -> Any:
    if expr.fn is None:
        raise ExecutionError(f"UDF {expr.name!r} has no bound implementation")
    args = [evaluate(arg, row, schema) for arg in expr.args]
    try:
        return expr.fn(*args)
    except Exception as exc:  # surface UDF bugs as execution errors
        raise ExecutionError(f"UDF {expr.name!r} raised: {exc}") from exc


def predicate_holds(expr: Optional[Expr], row: Row, schema: StreamSchema) -> bool:
    """SQL filter semantics: keep the row only when the predicate is True.

    A missing predicate (``None``) keeps every row.
    """
    if expr is None:
        return True
    return evaluate(expr, row, schema) is True
