"""Stream schemas: the column layout of intermediate data streams.

Every operator in a plan produces a *data stream* (the paper's term); a
:class:`StreamSchema` describes the layout of one row of that stream as an
ordered list of qualified columns, and provides the positional lookup the
row-at-a-time evaluator needs.

Schemas optionally carry per-slot :class:`~repro.catalog.schema.ColumnType`
information.  Scans populate it from the catalog and joins/projections
propagate it, so the executor's memory accounting (spill decisions, the
governor's working-set reservations) can size rows from real column
widths instead of a global guess.  Slots with unknown type fall back to
``DEFAULT_SLOT_WIDTH_BYTES``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import PlanError
from repro.expr.expressions import ColumnRef

# Width assumed for a slot whose column type is unknown (derived columns,
# hand-built plans).  Matches the executor's historical per-row guess.
DEFAULT_SLOT_WIDTH_BYTES = 16.0

# Modelled widths per column type; mirrors Column.__post_init__ defaults.
_TYPE_WIDTH_BYTES = {"int": 8.0, "float": 8.0, "str": 24.0}


class StreamSchema:
    """Ordered layout of the columns in a data stream.

    Each slot is a ``(table_alias, column_name)`` pair.  Derived columns
    (aggregate outputs, computed projections) use a synthetic alias such
    as ``""`` or a block label; lookup by bare column name is supported
    when unambiguous.

    Args:
        slots: the ``(alias, column)`` pairs.
        types: optional per-slot column types (None entries are allowed
            and mean "unknown").  Equality and hashing ignore types --
            they are sizing metadata, not identity.
    """

    __slots__ = ("slots", "types", "_positions", "_by_column")

    def __init__(
        self,
        slots: Sequence[Tuple[str, str]],
        types: Optional[Sequence[Optional[object]]] = None,
    ) -> None:
        self.slots: Tuple[Tuple[str, str], ...] = tuple(slots)
        if types is None:
            self.types: Tuple[Optional[object], ...] = (None,) * len(self.slots)
        else:
            padded = list(types)[: len(self.slots)]
            padded.extend([None] * (len(self.slots) - len(padded)))
            self.types = tuple(padded)
        self._positions: Dict[Tuple[str, str], int] = {}
        self._by_column: Dict[str, List[int]] = {}
        for position, (alias, column) in enumerate(self.slots):
            key = (alias, column)
            if key in self._positions:
                raise PlanError(f"duplicate column {alias}.{column} in stream schema")
            self._positions[key] = position
            self._by_column.setdefault(column, []).append(position)

    @classmethod
    def for_table(
        cls,
        alias: str,
        column_names: Iterable[str],
        types: Optional[Sequence[Optional[object]]] = None,
    ) -> "StreamSchema":
        """Schema of a base-table scan under an alias."""
        return cls([(alias, name) for name in column_names], types=types)

    @property
    def arity(self) -> int:
        """Number of columns in the stream."""
        return len(self.slots)

    def position(self, ref: ColumnRef) -> int:
        """Slot position of a column reference.

        Falls back to an unambiguous bare-column match when the qualified
        name is absent (supports post-projection lookups).

        Raises:
            PlanError: if the column is missing or ambiguous.
        """
        key = (ref.table, ref.column)
        if key in self._positions:
            return self._positions[key]
        candidates = self._by_column.get(ref.column, [])
        if len(candidates) == 1:
            return candidates[0]
        if not candidates:
            raise PlanError(f"column {ref.to_sql()} not in stream {self.slots}")
        raise PlanError(f"column {ref.to_sql()} is ambiguous in stream {self.slots}")

    def has(self, ref: ColumnRef) -> bool:
        """Whether the reference resolves in this schema."""
        if (ref.table, ref.column) in self._positions:
            return True
        return len(self._by_column.get(ref.column, [])) == 1

    def type_at(self, position: int) -> Optional[object]:
        """The column type of a slot, or None when unknown."""
        return self.types[position]

    def row_width_bytes(self) -> float:
        """Modelled width of one stream row, from slot types where known.

        Typed slots use the same widths the catalog models for stored
        columns; untyped slots fall back to the default guess, so fully
        untyped schemas price exactly as they did before types existed.
        """
        total = 0.0
        for slot_type in self.types:
            value = getattr(slot_type, "value", None)
            total += _TYPE_WIDTH_BYTES.get(value, DEFAULT_SLOT_WIDTH_BYTES)
        return total if self.slots else DEFAULT_SLOT_WIDTH_BYTES

    def concat(self, other: "StreamSchema") -> "StreamSchema":
        """Schema of the concatenation of two streams (join output)."""
        return StreamSchema(
            self.slots + other.slots, types=self.types + other.types
        )

    def project(self, refs: Sequence[ColumnRef]) -> "StreamSchema":
        """Schema after projecting to the given columns (types follow)."""
        types = []
        for ref in refs:
            types.append(self.types[self.position(ref)] if self.has(ref) else None)
        return StreamSchema(
            [(ref.table, ref.column) for ref in refs], types=types
        )

    def aliases(self) -> List[str]:
        """Distinct table aliases appearing in the stream, in slot order."""
        seen: List[str] = []
        for alias, _column in self.slots:
            if alias not in seen:
                seen.append(alias)
        return seen

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StreamSchema) and self.slots == other.slots

    def __hash__(self) -> int:
        return hash(self.slots)

    def __repr__(self) -> str:
        rendered = ", ".join(f"{alias}.{column}" for alias, column in self.slots)
        return f"StreamSchema({rendered})"
