"""Stream schemas: the column layout of intermediate data streams.

Every operator in a plan produces a *data stream* (the paper's term); a
:class:`StreamSchema` describes the layout of one row of that stream as an
ordered list of qualified columns, and provides the positional lookup the
row-at-a-time evaluator needs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import PlanError
from repro.expr.expressions import ColumnRef


class StreamSchema:
    """Ordered layout of the columns in a data stream.

    Each slot is a ``(table_alias, column_name)`` pair.  Derived columns
    (aggregate outputs, computed projections) use a synthetic alias such
    as ``""`` or a block label; lookup by bare column name is supported
    when unambiguous.
    """

    __slots__ = ("slots", "_positions", "_by_column")

    def __init__(self, slots: Sequence[Tuple[str, str]]) -> None:
        self.slots: Tuple[Tuple[str, str], ...] = tuple(slots)
        self._positions: Dict[Tuple[str, str], int] = {}
        self._by_column: Dict[str, List[int]] = {}
        for position, (alias, column) in enumerate(self.slots):
            key = (alias, column)
            if key in self._positions:
                raise PlanError(f"duplicate column {alias}.{column} in stream schema")
            self._positions[key] = position
            self._by_column.setdefault(column, []).append(position)

    @classmethod
    def for_table(cls, alias: str, column_names: Iterable[str]) -> "StreamSchema":
        """Schema of a base-table scan under an alias."""
        return cls([(alias, name) for name in column_names])

    @property
    def arity(self) -> int:
        """Number of columns in the stream."""
        return len(self.slots)

    def position(self, ref: ColumnRef) -> int:
        """Slot position of a column reference.

        Falls back to an unambiguous bare-column match when the qualified
        name is absent (supports post-projection lookups).

        Raises:
            PlanError: if the column is missing or ambiguous.
        """
        key = (ref.table, ref.column)
        if key in self._positions:
            return self._positions[key]
        candidates = self._by_column.get(ref.column, [])
        if len(candidates) == 1:
            return candidates[0]
        if not candidates:
            raise PlanError(f"column {ref.to_sql()} not in stream {self.slots}")
        raise PlanError(f"column {ref.to_sql()} is ambiguous in stream {self.slots}")

    def has(self, ref: ColumnRef) -> bool:
        """Whether the reference resolves in this schema."""
        if (ref.table, ref.column) in self._positions:
            return True
        return len(self._by_column.get(ref.column, [])) == 1

    def concat(self, other: "StreamSchema") -> "StreamSchema":
        """Schema of the concatenation of two streams (join output)."""
        return StreamSchema(self.slots + other.slots)

    def project(self, refs: Sequence[ColumnRef]) -> "StreamSchema":
        """Schema after projecting to the given columns."""
        return StreamSchema([(ref.table, ref.column) for ref in refs])

    def aliases(self) -> List[str]:
        """Distinct table aliases appearing in the stream, in slot order."""
        seen: List[str] = []
        for alias, _column in self.slots:
            if alias not in seen:
                seen.append(alias)
        return seen

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StreamSchema) and self.slots == other.slots

    def __hash__(self) -> int:
        return hash(self.slots)

    def __repr__(self) -> str:
        rendered = ", ".join(f"{alias}.{column}" for alias, column in self.slots)
        return f"StreamSchema({rendered})"
