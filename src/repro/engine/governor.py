"""Per-query resource governance: budgets, cancellation, and retries.

The survey's cost model (Section 5) treats estimates as the whole story;
a production engine must also survive the runs where the estimates were
wrong.  This module supplies the runtime defenses: a :class:`QueryBudget`
declares hard per-query limits (wall clock, working memory, output rows,
page reads), a :class:`ResourceGovernor` enforces them cooperatively at
operator batch boundaries inside the executor, a
:class:`CancellationToken` lets callers (e.g. the shell's Ctrl-C handler)
abort a running query cleanly, and :func:`call_with_retries` gives
storage accesses bounded, deterministic retry-with-backoff semantics for
transient faults.

Violations raise the typed errors of :mod:`repro.errors`
(:class:`QueryTimeout`, :class:`QueryCancelled`,
:class:`MemoryBudgetExceeded`, :class:`ResourceError`), never bare
exceptions, so sessions stay alive and callers can branch on
``retryable``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, TypeVar

from repro.errors import (
    MemoryBudgetExceeded,
    QueryCancelled,
    QueryTimeout,
    ReproError,
    ResourceError,
)

T = TypeVar("T")


@dataclass(frozen=True)
class QueryBudget:
    """Hard per-query resource limits; ``None`` disables a dimension.

    Attributes:
        timeout_seconds: wall-clock limit for one execution.
        memory_limit_bytes: largest working set any single blocking
            operator (hash build, aggregation table) may pin; operators
            with a spill path degrade instead of failing.
        max_output_rows: largest row count any single operator may
            produce (a runaway-join guard, checked at batch boundaries).
        max_page_reads: limit on physical page reads (buffer misses do
            not count; this bounds simulated I/O).
        max_rows_written: limit on rows a DML statement may write (a
            runaway-UPDATE guard).
        max_pages_written: limit on heap pages a DML statement may dirty.
    """

    timeout_seconds: Optional[float] = None
    memory_limit_bytes: Optional[int] = None
    max_output_rows: Optional[int] = None
    max_page_reads: Optional[int] = None
    max_rows_written: Optional[int] = None
    max_pages_written: Optional[int] = None

    @property
    def unlimited(self) -> bool:
        """Whether no dimension is constrained."""
        return (
            self.timeout_seconds is None
            and self.memory_limit_bytes is None
            and self.max_output_rows is None
            and self.max_page_reads is None
            and self.max_rows_written is None
            and self.max_pages_written is None
        )

    def describe(self) -> str:
        """Readable one-line rendering (the shell's ``\\budget``)."""
        parts = []
        if self.timeout_seconds is not None:
            parts.append(f"timeout={self.timeout_seconds * 1000.0:.0f}ms")
        if self.memory_limit_bytes is not None:
            parts.append(f"memory={self.memory_limit_bytes}B")
        if self.max_output_rows is not None:
            parts.append(f"rows={self.max_output_rows}")
        if self.max_page_reads is not None:
            parts.append(f"pages={self.max_page_reads}")
        if self.max_rows_written is not None:
            parts.append(f"rows_written={self.max_rows_written}")
        if self.max_pages_written is not None:
            parts.append(f"pages_written={self.max_pages_written}")
        return ", ".join(parts) if parts else "unlimited"


class CancellationToken:
    """A latch a caller flips to abort the query currently executing.

    The executor polls the token at operator batch boundaries and raises
    :class:`QueryCancelled` when it is set -- cooperative cancellation,
    so the engine always unwinds through normal (typed) error paths with
    the catalog intact.
    """

    __slots__ = ("_cancelled",)

    def __init__(self) -> None:
        self._cancelled = False

    def cancel(self) -> None:
        """Request cancellation of the running query."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        """Whether cancellation has been requested."""
        return self._cancelled

    def reset(self) -> None:
        """Clear the token (called before each new execution)."""
        self._cancelled = False


class ResourceGovernor:
    """Cooperative enforcement of one :class:`QueryBudget`.

    The executor calls :meth:`check` when an operator starts,
    :meth:`tick` inside row loops (the clock is consulted every
    ``CHECK_INTERVAL`` ticks to keep the per-row overhead negligible),
    :meth:`on_page_read` per physical page, :meth:`on_rows` per operator
    batch, and :meth:`reserve_memory` before pinning a working set.
    """

    CHECK_INTERVAL = 128

    def __init__(
        self,
        budget: Optional[QueryBudget] = None,
        token: Optional[CancellationToken] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.budget = budget or QueryBudget()
        self.token = token
        self._clock = clock
        self._deadline: Optional[float] = None
        self._started_at: Optional[float] = None
        self._ticks = 0
        self.page_reads = 0
        self.rows_written = 0
        self.pages_written = 0
        self.memory_high_water_bytes = 0
        self.reoptimizations = 0

    def start(self) -> None:
        """Begin (or restart) the clock for one execution."""
        self._started_at = self._clock()
        self._ticks = 0
        self.page_reads = 0
        self.rows_written = 0
        self.pages_written = 0
        self.memory_high_water_bytes = 0
        self.reoptimizations = 0
        if self.budget.timeout_seconds is not None:
            self._deadline = self._started_at + self.budget.timeout_seconds
        else:
            self._deadline = None

    # ------------------------------------------------------------------
    # Checks (raise typed errors on violation)
    # ------------------------------------------------------------------
    def check(self) -> None:
        """Full check: cancellation then deadline.  Called at operator
        boundaries and every ``CHECK_INTERVAL`` row ticks."""
        if self.token is not None and self.token.cancelled:
            raise QueryCancelled()
        if self._deadline is not None:
            now = self._clock()
            if now > self._deadline:
                raise QueryTimeout(
                    f"query exceeded its {self.budget.timeout_seconds * 1000.0:.0f}ms "
                    "wall-clock budget",
                    limit=self.budget.timeout_seconds,
                    used=now - (self._started_at or now),
                )

    def tick(self, rows: int = 1) -> None:
        """Cheap per-row hook; consults the clock only periodically.

        The batch engine calls this once per batch with the batch's row
        count for linear streaming operators, and per row (or per joined
        pair) inside quadratic and blocking loops, so a timeout still
        fires promptly in the middle of one long pull.
        """
        self._ticks += rows
        if self._ticks >= self.CHECK_INTERVAL:
            self._ticks = 0
            self.check()

    def on_page_read(self) -> None:
        """Account one physical page read against the budget."""
        self.page_reads += 1
        limit = self.budget.max_page_reads
        if limit is not None and self.page_reads > limit:
            raise ResourceError(
                f"query exceeded its {limit}-page read budget",
                resource="page_reads",
                limit=limit,
                used=self.page_reads,
            )
        self.tick()

    def on_rows_written(self, rows: int = 1) -> None:
        """Account rows written by a DML statement against the budget."""
        self.rows_written += rows
        limit = self.budget.max_rows_written
        if limit is not None and self.rows_written > limit:
            raise ResourceError(
                f"statement wrote {self.rows_written} rows, over the "
                f"{limit}-row write budget",
                resource="rows_written",
                limit=limit,
                used=self.rows_written,
            )
        self.tick(rows)

    def on_page_write(self) -> None:
        """Account one dirtied heap page against the budget."""
        self.pages_written += 1
        limit = self.budget.max_pages_written
        if limit is not None and self.pages_written > limit:
            raise ResourceError(
                f"statement dirtied {self.pages_written} pages, over the "
                f"{limit}-page write budget",
                resource="pages_written",
                limit=limit,
                used=self.pages_written,
            )
        self.tick()

    def on_rows(self, rows: int) -> None:
        """Check one operator's output batch against the row budget."""
        limit = self.budget.max_output_rows
        if limit is not None and rows > limit:
            raise ResourceError(
                f"an operator produced {rows} rows, over the {limit}-row budget",
                resource="output_rows",
                limit=limit,
                used=rows,
            )

    def remaining_seconds(self) -> Optional[float]:
        """Wall clock left before this query's deadline, or None when
        the budget has no timeout.  May be negative once past due."""
        if self._deadline is None:
            return None
        return self._deadline - self._clock()

    def on_reoptimization(self) -> None:
        """Charge one mid-query re-optimization against the budget.

        Re-planning spends the *same* query's wall clock: a query already
        past its deadline fails typed here instead of starting another
        optimization pass it has no budget to execute.
        """
        self.reoptimizations += 1
        self.check()

    def reserve_memory(self, bytes_needed: int, site: str = "") -> None:
        """Validate a working-set reservation against the memory budget.

        Raises:
            MemoryBudgetExceeded: when the reservation does not fit.
                Spill-capable callers catch this and degrade.
        """
        self.memory_high_water_bytes = max(
            self.memory_high_water_bytes, int(bytes_needed)
        )
        limit = self.budget.memory_limit_bytes
        if limit is not None and bytes_needed > limit:
            where = f" ({site})" if site else ""
            raise MemoryBudgetExceeded(
                f"working set of {int(bytes_needed)} bytes{where} exceeds the "
                f"{limit}-byte memory budget",
                limit=limit,
                used=bytes_needed,
            )


# ----------------------------------------------------------------------
# Retry with exponential backoff
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry-with-exponential-backoff for retryable errors.

    Attributes:
        max_attempts: total tries (first attempt included).
        base_backoff_seconds: delay before the first retry; doubles per
            subsequent retry.
        max_backoff_seconds: cap on any single delay.
        sleep: actually sleep the backoff delay.  Off by default: tests
            and benchmarks account the delay deterministically via the
            caller's counters instead of stalling the suite.
    """

    max_attempts: int = 4
    base_backoff_seconds: float = 0.001
    max_backoff_seconds: float = 0.05
    sleep: bool = False

    def backoff_seconds(
        self, retry_number: int, jitter: Optional[float] = None
    ) -> float:
        """Delay before retry ``retry_number`` (1-based).

        Full jitter (the AWS recommendation): the capped exponential
        delay is the *ceiling* and the actual delay is uniform in
        [0, ceiling) via ``jitter`` in [0, 1).  Stretch-style jitter
        (the previous ``delay * (1 + j)``) synchronizes retry herds at
        the cap under brownouts; full jitter decorrelates them.  With
        ``jitter=None`` (no jitter source) the ceiling itself is used,
        keeping jitter-free schedules deterministic.
        """
        delay = self.base_backoff_seconds * (2.0 ** (retry_number - 1))
        delay = min(delay, self.max_backoff_seconds)
        if jitter is None:
            return delay
        return delay * jitter


def call_with_retries(
    fn: Callable[[], T],
    policy: RetryPolicy,
    jitter_source: Optional[Callable[[], float]] = None,
    on_retry: Optional[Callable[[int, float, ReproError], Any]] = None,
    retry_gate: Optional[Callable[[], bool]] = None,
    remaining_seconds: Optional[Callable[[], Optional[float]]] = None,
) -> T:
    """Run ``fn``, retrying on errors whose ``retryable`` flag is set.

    Non-retryable errors propagate immediately; retryable ones are
    retried up to ``policy.max_attempts`` total attempts with
    full-jitter exponential backoff, then re-raised.  Errors that also
    carry ``fail_fast`` (a tripped circuit breaker) are never retried
    here even though the *query* is retryable -- spinning on them is
    the amplification the breaker exists to stop.  ``jitter_source``
    supplies a float in [0, 1) per retry -- the fault injector's seeded
    RNG, so a rerun with the same seed produces the identical schedule.

    Args:
        fn: the operation to attempt.
        policy: attempt/backoff bounds.
        jitter_source: deterministic jitter supplier, or None for no jitter.
        on_retry: callback ``(retry_number, delay_seconds, error)`` for
            accounting, invoked before each retry.
        retry_gate: admission hook consulted before each retry (the
            global retry token bucket); returning False re-raises the
            error instead of retrying, capping server-wide retry volume
            during brownouts.
        remaining_seconds: supplies the query's remaining deadline (the
            governor's clock), or None within it for no deadline.  A
            backoff sleep is clamped to the remaining budget and a query
            already past due fails now rather than sleeping through a
            deadline it can no longer make.
    """
    attempt = 1
    while True:
        try:
            return fn()
        except ReproError as error:
            if not getattr(error, "retryable", False):
                raise
            if getattr(error, "fail_fast", False):
                raise
            if attempt >= policy.max_attempts:
                raise
            if retry_gate is not None and not retry_gate():
                raise
            jitter = jitter_source() if jitter_source is not None else None
            delay = policy.backoff_seconds(attempt, jitter)
            if remaining_seconds is not None:
                left = remaining_seconds()
                if left is not None:
                    if left <= 0.0:
                        raise
                    delay = min(delay, left)
            if on_retry is not None:
                on_retry(attempt, delay, error)
            if policy.sleep:
                time.sleep(delay)
            attempt += 1
