"""Mid-query adaptive re-optimization (progressive optimization).

The POP design (Markl et al.), instantiated for this engine: the
optimizer annotates chosen (sub)plans with **validity ranges** -- the
interval of intermediate-result cardinalities over which the plan stays
within a configurable factor of the best alternative the cost model
knows -- and the physicalizer inserts lightweight :class:`CheckP`
operators at natural materialization points (sort inputs, hash build
and probe sides, spools, group-by boundaries, index-nested-loop outer
batches).

At runtime a CHECK that observes a cardinality outside its validity
range raises :class:`ReoptimizeSignal`.  (Under the batch engine a
CheckP is a declared pipeline breaker -- it must see its child's full
cardinality before letting a single batch through, and the signal
unwinds the suspended generator pipeline above it, whose drivers close
their children on the way out.)  The executor catches it,
harvests the cardinalities observed so far into the feedback store,
re-optimizes the remainder of the query, splices already-materialized
intermediates back in as :class:`CheckpointSourceP` leaves
(Kabra--DeWitt: never repeat completed work), and resumes -- bounded by
a re-optimization budget and charged against the query's
:class:`~repro.engine.governor.QueryBudget`.

This module deliberately imports only the physical-plan and cost layers
so both the physicalizer (plan time) and the executor (run time) can
use it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.cost.model import (
    Cost,
    cost_hash_join,
    cost_index_nested_loop_join,
    cost_merge_join,
    cost_nested_loop_join,
    cost_seq_scan,
    cost_sort,
    pages_for_rows,
)
from repro.cost.parameters import CostParameters
from repro.expr.schema import StreamSchema
from repro.physical.plans import (
    CheckP,
    CheckpointSourceP,
    DistinctP,
    HashAggP,
    HashJoinP,
    INLJoinP,
    MaterializeP,
    PhysicalOp,
    SeqScanP,
    SortP,
    plan_signature,
)

#: Attribute names through which physical operators reference inputs.
_INPUT_ATTRS = ("child", "left", "right", "outer")

#: Geometric-grid halvings/doublings explored around the estimate when
#: computing a cost-crossover validity range.
_GRID_STEPS = 16


class ReoptimizeSignal(Exception):
    """Raised by a CHECK whose observed cardinality left the validity range.

    Deliberately *not* a ReproError: retry machinery, shell error
    handling, and the chaos harness's typed-failure accounting must
    never absorb it -- only the adaptive executor loop catches it.
    """

    def __init__(self, check: CheckP, observed_rows: int) -> None:
        super().__init__(
            f"cardinality {observed_rows} outside validity range "
            f"[{check.low:.0f}, {check.high:.0f}] {check.context_label}"
        )
        self.check = check
        self.observed_rows = observed_rows


@dataclass(frozen=True)
class AdaptiveConfig:
    """Knobs for progressive re-optimization.

    Attributes:
        enabled: master switch; when False no CHECKs are inserted.
        max_reopts: re-optimizations allowed per query execution.
        validity_factor: a plan is "valid" at cardinality n while its
            modelled cost stays within this factor of the best
            alternative's; also the minimum half-width of every range
            (a deviation smaller than the factor never fires).
        min_rows: absolute row-count deviation below which a CHECK never
            fires -- re-planning around a handful of rows cannot pay off.
    """

    enabled: bool = True
    max_reopts: int = 2
    validity_factor: float = 4.0
    min_rows: int = 32


@dataclass
class AdaptiveEvent:
    """One CHECK decision, kept for EXPLAIN ANALYZE and replay tests."""

    context_label: str
    est_rows: float
    observed_rows: int
    low: float
    high: float
    action: str  # "reoptimized" | "max-reopts-reached"

    def describe(self) -> str:
        return (
            f"{self.context_label}: est={self.est_rows:.0f} "
            f"observed={self.observed_rows} "
            f"valid=[{self.low:.0f}, {self.high:.0f}] -> {self.action}"
        )


class AdaptiveState:
    """Per-execution adaptive bookkeeping carried on the ExecContext."""

    def __init__(self, config: AdaptiveConfig) -> None:
        self.config = config
        self.reoptimizations = 0
        self.checks_fired = 0
        self.checkpoints_reused = 0
        self.events: List[AdaptiveEvent] = []
        #: plan_signature -> (schema, rows, note): intermediates already
        #: materialized this execution, reusable by remainder plans.
        #: Cleared when the execution finishes (no leaked temps).
        self.materialized: Dict[str, Tuple[StreamSchema, List[tuple], str]] = {}
        #: every plan tried, oldest first; keeps replaced plans alive so
        #: id()-keyed runtime stats never collide across replans.
        self.plan_history: List[PhysicalOp] = []
        self.final_plan: Optional[PhysicalOp] = None
        #: re-optimizes the remainder under current feedback; installed
        #: by the Database before execution.
        self.replanner: Optional[Callable[[], PhysicalOp]] = None

    # ------------------------------------------------------------------
    def note_check(self, check: CheckP, observed_rows: int) -> bool:
        """Decide whether a CHECK fires; records the decision.

        Returns True when the executor should raise ReoptimizeSignal.
        """
        if check.low <= observed_rows <= check.high:
            return False
        if abs(observed_rows - check.est_rows) < self.config.min_rows:
            return False
        if self.replanner is None:
            return False
        fire = self.reoptimizations < self.config.max_reopts
        self.events.append(
            AdaptiveEvent(
                context_label=check.context_label,
                est_rows=check.est_rows,
                observed_rows=observed_rows,
                low=check.low,
                high=check.high,
                action="reoptimized" if fire else "max-reopts-reached",
            )
        )
        if fire:
            self.checks_fired += 1
        return fire

    def store_checkpoint(
        self, signature: str, schema: StreamSchema, rows: List[tuple], note: str
    ) -> None:
        """Remember a fully-materialized intermediate for splicing."""
        self.materialized[signature] = (schema, rows, note)

    def replay_key(self) -> List[Tuple[str, int, str]]:
        """Deterministic digest of every re-optimization decision."""
        return [
            (event.context_label, event.observed_rows, event.action)
            for event in self.events
        ]

    def format(self) -> str:
        lines = [
            f"re-optimizations: {self.reoptimizations} "
            f"(checks fired: {self.checks_fired}, "
            f"checkpoints reused: {self.checkpoints_reused})"
        ]
        lines.extend("  " + event.describe() for event in self.events)
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Validity ranges: cost crossover on a geometric cardinality grid
# ----------------------------------------------------------------------
def _crossover_range(
    est: float,
    factor: float,
    chosen: Callable[[float], float],
    alternatives: Tuple[Callable[[float], float], ...],
) -> Optional[Tuple[float, float]]:
    """Widest [low, high] around ``est`` where the chosen operator's cost
    stays within ``factor`` of the cheapest modelled alternative.

    Walks a geometric grid (est * 2**k); returns None when the chosen
    plan is not within the factor even at the estimate itself -- the
    local cost functions disagree with the enumerator's full costing,
    so the plain factor range is the honest fallback.
    """

    def ok(n: float) -> bool:
        try:
            best_alternative = min(fn(n) for fn in alternatives)
            return chosen(n) <= factor * best_alternative
        except (ValueError, ZeroDivisionError, OverflowError):
            return True
    if not ok(est):
        return None
    low = est
    for _step in range(_GRID_STEPS):
        candidate = low / 2.0
        if candidate < 1.0 or not ok(candidate):
            break
        low = candidate
    high = est
    for _step in range(_GRID_STEPS):
        candidate = high * 2.0
        if not ok(candidate):
            break
        high = candidate
    return low, high


def _hash_build_range(
    op: HashJoinP, params: CostParameters, factor: float
) -> Optional[Tuple[float, float]]:
    """Validity range for a hash join's build-side cardinality."""
    est_build = op.right.est_rows
    probe_rows = op.left.est_rows
    build_width = op.right.output_schema().row_width_bytes()
    probe_width = op.left.output_schema().row_width_bytes()
    probe_pages = pages_for_rows(probe_rows, probe_width, params)
    est_out = op.est_rows

    def out_at(n: float) -> float:
        # Join output scales linearly with one input, selectivity held.
        return est_out * n / est_build if est_build > 0 else est_out

    def build_pages(n: float) -> float:
        return pages_for_rows(n, build_width, params)

    def chosen(n: float) -> float:
        return cost_hash_join(
            n, build_pages(n), probe_rows, probe_pages, out_at(n), params
        ).total

    def alt_swapped(n: float) -> float:
        return cost_hash_join(
            probe_rows, probe_pages, n, build_pages(n), out_at(n), params
        ).total

    def alt_merge(n: float) -> float:
        return (
            cost_sort(n, build_pages(n), params)
            + cost_sort(probe_rows, probe_pages, params)
            + cost_merge_join(probe_rows, n, out_at(n), params)
        ).total

    def alt_nested(n: float) -> float:
        rescan = Cost(cpu=n * params.cpu_tuple_cost)
        return cost_nested_loop_join(probe_rows, rescan, n, 1, params).total

    return _crossover_range(
        est_build, factor, chosen, (alt_swapped, alt_merge, alt_nested)
    )


def _inl_outer_range(
    op: INLJoinP, catalog, params: CostParameters, factor: float
) -> Optional[Tuple[float, float]]:
    """Validity range for the outer cardinality of an index nested loop.

    The alternative is the canonical escape hatch when the outer blows
    up: scan the inner table once and hash join against the
    materialized outer.
    """
    try:
        table = catalog.table(op.table)
        index = catalog.index(op.index_name)
    except Exception:
        return None
    est_outer = op.outer.est_rows
    matches_per_outer = op.est_rows / est_outer if est_outer > 0 else 1.0
    inner_rows = float(table.row_count)
    inner_pages = float(table.page_count)
    outer_width = op.outer.output_schema().row_width_bytes()
    est_out = op.est_rows

    def chosen(n: float) -> float:
        return cost_index_nested_loop_join(
            n,
            matches_per_outer,
            inner_rows,
            inner_pages,
            index.height,
            index.definition.clustered,
            params,
        ).total

    def alt_hash(n: float) -> float:
        out = est_out * n / est_outer if est_outer > 0 else est_out
        scan = cost_seq_scan(inner_rows, inner_pages, 0, params)
        join = cost_hash_join(
            n,
            pages_for_rows(n, outer_width, params),
            inner_rows,
            inner_pages,
            out,
            params,
        )
        return (scan + join).total

    return _crossover_range(est_outer, factor, chosen, (alt_hash,))


# ----------------------------------------------------------------------
# CHECK insertion at materialization points
# ----------------------------------------------------------------------
def insert_checks(
    plan: PhysicalOp,
    catalog,
    params: CostParameters,
    config: AdaptiveConfig,
) -> PhysicalOp:
    """Wrap natural materialization points of ``plan`` in CheckP nodes.

    The executor materializes every input fully, so each listed site is
    a true pipeline break: the row count is exact when the CHECK runs
    and the work above it has not started.  Ranges come from cost
    crossover where a local alternative model exists (hash build, INL
    outer) and from the plain validity factor elsewhere; the crossover
    range is always at least the plain range, so a deviation smaller
    than the factor never triggers.
    """
    if not config.enabled:
        return plan
    factor = max(config.validity_factor, 1.0)

    def plain_range(est: float) -> Tuple[float, float]:
        return est / factor, est * factor

    def wrap(
        child: PhysicalOp,
        label: str,
        ranged: Optional[Tuple[float, float]] = None,
    ) -> PhysicalOp:
        if isinstance(child, (CheckP, CheckpointSourceP)):
            return child
        if isinstance(child, SeqScanP) and child.predicate is None:
            return child  # base-table cardinality is exactly known
        est = child.est_rows
        if est <= 0:
            return child
        low, high = plain_range(est)
        if ranged is not None:
            low, high = min(low, ranged[0]), max(high, ranged[1])
        return CheckP(child, low, high, label)

    def visit(op: PhysicalOp) -> PhysicalOp:
        for attr in _INPUT_ATTRS:
            sub = getattr(op, attr, None)
            if isinstance(sub, PhysicalOp):
                setattr(op, attr, visit(sub))
        if isinstance(op, HashJoinP):
            op.right = wrap(
                op.right, "hash build", _hash_build_range(op, params, factor)
            )
            op.left = wrap(op.left, "hash probe")
        elif isinstance(op, INLJoinP):
            op.outer = wrap(
                op.outer,
                "inl outer",
                _inl_outer_range(op, catalog, params, factor),
            )
        elif isinstance(op, SortP):
            op.child = wrap(op.child, "sort input")
        elif isinstance(op, HashAggP):  # StreamAggP included
            op.child = wrap(op.child, "group-by input")
        elif isinstance(op, DistinctP):
            op.child = wrap(op.child, "distinct input")
        elif isinstance(op, MaterializeP):
            op.child = wrap(op.child, "spool")
        return op

    return visit(plan)


# ----------------------------------------------------------------------
# Splicing checkpointed intermediates into a re-optimized remainder
# ----------------------------------------------------------------------
def splice_checkpoints(plan: PhysicalOp, state: AdaptiveState) -> PhysicalOp:
    """Replace subtrees already materialized this execution.

    Any subtree of the new plan whose structural signature matches a
    stored checkpoint becomes a CheckpointSourceP leaf replaying the
    saved rows -- including the subtree under the CHECK that fired, so
    the new plan starts from the observed intermediate rather than
    recomputing it.  CHECK wrappers at matched sites are dropped: the
    cardinality there is now a fact, not an estimate.
    """
    if not state.materialized:
        return plan

    def visit(op: PhysicalOp) -> PhysicalOp:
        stored = state.materialized.get(plan_signature(op))
        if stored is not None:
            schema, rows, note = stored
            source = CheckpointSourceP(schema, rows, note)
            source.est_cost = op.est_cost
            source.order = op.order
            state.checkpoints_reused += 1
            return source
        for attr in _INPUT_ATTRS:
            sub = getattr(op, attr, None)
            if isinstance(sub, PhysicalOp):
                setattr(op, attr, visit(sub))
        return op

    return visit(plan)
