"""The physical-plan executor.

Executes physical operator trees against catalog data, materializing
intermediate results operator by operator, and records the work done
(page reads through the simulated buffer pool, comparisons, UDF calls)
in the :class:`~repro.engine.context.ExecContext`.  Benchmarks use these
counters as the *measured* cost to validate optimizer estimates.

Robustness hooks run throughout: the context's
:class:`~repro.engine.governor.ResourceGovernor` is consulted at
operator boundaries, inside row loops, and on every page read, so
budget violations and cancellations surface as typed errors instead of
runaway executions; storage faults injected on page reads and index
lookups are retried with bounded backoff; and blocking hash operators
whose working set would bust the memory budget degrade to partitioned
(spilling) execution rather than failing.
"""

from __future__ import annotations

import time
import zlib
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.catalog.catalog import Catalog
from repro.cost.model import pages_for_rows
from repro.engine.adaptive import ReoptimizeSignal, splice_checkpoints
from repro.engine.context import ExecContext
from repro.engine.interpreter import InterpreterStats, interpret, sort_rows
from repro.engine.runtime_stats import RuntimeStats
from repro.errors import ExecutionError, MemoryBudgetExceeded
from repro.expr.evaluator import bind_parameters, evaluate, predicate_holds
from repro.expr.expressions import ColumnRef, Expr
from repro.expr.schema import StreamSchema
from repro.logical.operators import JoinKind
from repro.stats.feedback import harvest_feedback
from repro.physical.plans import (
    ApplyP,
    CheckP,
    CheckpointSourceP,
    DistinctP,
    ExchangeP,
    FilterP,
    HashAggP,
    HashJoinP,
    INLJoinP,
    IndexScanP,
    MaterializeP,
    MergeJoinP,
    NLJoinP,
    PhysicalOp,
    ProjectP,
    SeqScanP,
    SortP,
    StreamAggP,
    UdfFilterP,
    UnionAllP,
    plan_signature,
)

Row = Tuple[Any, ...]

# Cap on how finely degraded hash operators partition their input when
# squeezing under a memory budget.
_MAX_SPILL_PARTITIONS = 64


def execute(
    plan: PhysicalOp,
    catalog: Catalog,
    context: Optional[ExecContext] = None,
    parameters: Optional[Sequence[Any]] = None,
) -> Tuple[StreamSchema, List[Row]]:
    """Run a physical plan; returns ``(schema, rows)``.

    Every run attaches a *fresh* :class:`RuntimeStats` tree to
    ``context.runtime`` before touching any operator, so per-operator
    actuals (rows, invocations, wall time, pages) describe exactly one
    execution -- re-running a cached prepared-statement plan never
    accumulates counters from earlier runs.

    Args:
        plan: the physical plan to run.
        catalog: table and index data.
        context: execution context (a fresh one is created if omitted).
        parameters: positional values for ``?`` markers in the plan
            (overrides any values already on the context).

    Raises:
        ExecutionError: on malformed plans or runtime failures.
        ResourceError: when the context's budget is violated or its
            cancellation token fires (see QueryTimeout, QueryCancelled).
        TransientStorageError: when an injected fault outlives its retries.
    """
    if context is None:
        context = ExecContext()
    if parameters is not None:
        context.parameters = tuple(parameters)
    context.runtime = RuntimeStats()
    context.begin_execution()
    start = time.perf_counter()
    current = plan
    try:
        with bind_parameters(context.parameters):
            if context.adaptive is not None:
                rows, current = _run_adaptive(plan, catalog, context)
            else:
                rows = _run(plan, catalog, context)
    finally:
        if context.adaptive is not None:
            # Materialized intermediates live only within one execution;
            # dropping them here guarantees no temps leak, success or not.
            context.adaptive.materialized.clear()
        context.runtime.total_seconds = time.perf_counter() - start
    if context.feedback is not None:
        # Close the loop: per-operator actuals recorded at operator
        # boundaries become observed selectivities for the optimizer.
        context.feedback_summary = harvest_feedback(
            current, context.runtime, catalog, context.feedback
        )
    return current.output_schema(), rows


def _run_adaptive(
    plan: PhysicalOp, catalog: Catalog, context: ExecContext
) -> Tuple[List[Row], PhysicalOp]:
    """Progressive-optimization driver: run, and on a CHECK whose observed
    cardinality escapes its validity range, harvest what was learned,
    re-optimize the remainder, splice in already-materialized
    intermediates, and resume.  Returns ``(rows, final_plan)``.

    One RuntimeStats tree spans all attempts (stats are keyed by operator
    identity, and abandoned plans are kept alive on the state's plan
    history, so ids never collide); EXPLAIN ANALYZE over the final plan
    therefore shows checkpoint sources with the rows they replayed.
    """
    state = context.adaptive
    state.plan_history.append(plan)
    state.final_plan = plan
    current = plan
    while True:
        try:
            rows = _run(current, catalog, context)
            return rows, current
        except ReoptimizeSignal:
            state.reoptimizations += 1
            if context.governor is not None:
                # A replan consumes budget like any other work: charge it
                # and fail typed if the deadline has already passed.
                context.governor.on_reoptimization()
            if context.feedback is not None:
                # Feed the observed cardinalities (including the row count
                # that fired the CHECK) to the estimator, so re-planning
                # sees corrected selectivities, not the ones that misled.
                harvest_feedback(
                    current, context.runtime, catalog, context.feedback
                )
            if state.replanner is None:  # pragma: no cover - note_check
                raise ExecutionError("CHECK fired without a replanner")
            remainder = splice_checkpoints(state.replanner(), state)
            state.plan_history.append(remainder)
            state.final_plan = remainder
            current = remainder


def _run(op: PhysicalOp, catalog: Catalog, ctx: ExecContext) -> List[Row]:
    handler = _HANDLERS.get(type(op))
    if handler is None:
        for op_type, candidate in _HANDLERS.items():
            if isinstance(op, op_type):
                handler = candidate
                break
    if handler is None:
        raise ExecutionError(f"no executor for {type(op).__name__}")
    governor = ctx.governor
    if governor is not None:
        # Operator batch boundary: the cheapest place to observe budget
        # violations and cancellations with full-check fidelity.
        governor.check()
    if ctx.runtime is None:
        rows = handler(op, catalog, ctx)
        if governor is not None:
            governor.on_rows(len(rows))
        return rows
    node = ctx.runtime.node_for(op)
    pages_before = ctx.counters.total_page_reads
    retries_before = ctx.counters.retries
    start = time.perf_counter()
    rows = handler(op, catalog, ctx)
    node.wall_seconds += time.perf_counter() - start
    node.pages_read += ctx.counters.total_page_reads - pages_before
    # Cumulative over the subtree, like pages_read; the renderer
    # subtracts children to show each operator's own absorbed retries.
    node.retries += ctx.counters.retries - retries_before
    node.invocations += 1
    node.actual_rows += len(rows)
    if governor is not None:
        governor.on_rows(len(rows))
    return rows


def _row_width(schema: StreamSchema) -> float:
    """Modelled bytes per row of a stream, from slot types where known."""
    return schema.row_width_bytes()


# ----------------------------------------------------------------------
# Scans
# ----------------------------------------------------------------------
def _run_seq_scan(op: SeqScanP, catalog: Catalog, ctx: ExecContext) -> List[Row]:
    table = catalog.table(op.table)
    schema = op.output_schema()
    governor = ctx.governor
    out: List[Row] = []
    for page_no in range(table.page_count):
        ctx.read_page(op.table, page_no, sequential=True)
    for _row_id, row in table.scan():
        if governor is not None:
            governor.tick()
        if op.predicate is not None:
            ctx.counters.rows_compared += 1
            if not predicate_holds(op.predicate, row, schema):
                continue
        out.append(tuple(row))
    ctx.counters.rows_produced += len(out)
    return out


def _run_index_scan(op: IndexScanP, catalog: Catalog, ctx: ExecContext) -> List[Row]:
    table = catalog.table(op.table)
    index = catalog.index(op.index_name)
    schema = op.output_schema()
    # Traverse the index: height pages randomly, through the buffer pool.
    for level in range(index.height):
        ctx.read_page(f"idx:{op.index_name}", -(level + 1), sequential=False)
    site = f"idx:{op.index_name}"
    if op.eq_value is not None:
        row_ids = ctx.index_lookup(lambda: index.seek_prefix(op.eq_value), site)
    elif op.low is not None or op.high is not None:
        row_ids = ctx.index_lookup(lambda: index.range(op.low, op.high), site)
    else:
        row_ids = ctx.index_lookup(index.ordered_row_ids, site)
    # Leaf pages covered by the scan.
    if index.page_count:
        covered = max(1, round(index.page_count * len(row_ids) / max(index.entry_count, 1)))
        for leaf in range(covered):
            ctx.read_page(f"idx:{op.index_name}", leaf, sequential=True)
    clustered = index.definition.clustered
    governor = ctx.governor
    out: List[Row] = []
    for row_id in row_ids:
        if governor is not None:
            governor.tick()
        ctx.read_page(op.table, table.page_of(row_id), sequential=clustered)
        row = table.fetch(row_id)
        if op.predicate is not None:
            ctx.counters.rows_compared += 1
            if not predicate_holds(op.predicate, row, schema):
                continue
        out.append(tuple(row))
    ctx.counters.rows_produced += len(out)
    return out


# ----------------------------------------------------------------------
# Stream operators
# ----------------------------------------------------------------------
def _run_filter(op: FilterP, catalog: Catalog, ctx: ExecContext) -> List[Row]:
    rows = _run(op.child, catalog, ctx)
    schema = op.child.output_schema()
    governor = ctx.governor
    out = []
    for row in rows:
        if governor is not None:
            governor.tick()
        ctx.counters.rows_compared += 1
        if predicate_holds(op.predicate, row, schema):
            out.append(row)
    ctx.counters.rows_produced += len(out)
    return out


def _run_udf_filter(op: UdfFilterP, catalog: Catalog, ctx: ExecContext) -> List[Row]:
    rows = _run(op.child, catalog, ctx)
    schema = op.child.output_schema()
    governor = ctx.governor
    out = []
    for row in rows:
        if governor is not None:
            governor.tick()
        ctx.counters.udf_invocations += 1
        ctx.counters.rows_compared += max(1, int(op.udf.per_tuple_cost))
        if evaluate(op.udf, row, schema) is True:
            out.append(row)
    ctx.counters.rows_produced += len(out)
    return out


def _run_project(op: ProjectP, catalog: Catalog, ctx: ExecContext) -> List[Row]:
    rows = _run(op.child, catalog, ctx)
    schema = op.child.output_schema()
    out = [
        tuple(evaluate(item.expr, row, schema) for item in op.items) for row in rows
    ]
    ctx.counters.rows_produced += len(out)
    return out


def _run_sort(op: SortP, catalog: Catalog, ctx: ExecContext) -> List[Row]:
    rows = _run(op.child, catalog, ctx)
    schema = op.child.output_schema()
    width = _row_width(schema)
    pages = pages_for_rows(len(rows), width, ctx.params)
    if pages > ctx.params.sort_memory_pages:
        ctx.counters.sort_spill_pages += int(2 * pages)
    if ctx.governor is not None:
        # Sorts always have the external-merge path, so a sort working
        # set over budget is recorded (high-water mark) but never fatal.
        ctx.governor.memory_high_water_bytes = max(
            ctx.governor.memory_high_water_bytes, int(len(rows) * width)
        )
    out = sort_rows(rows, schema, op.sort_order)
    ctx.counters.rows_compared += int(len(rows) * max(1, len(rows)).bit_length())
    ctx.counters.rows_produced += len(out)
    return out


def _run_check(op: CheckP, catalog: Catalog, ctx: ExecContext) -> List[Row]:
    rows = _run(op.child, catalog, ctx)
    state = ctx.adaptive
    if state is None:
        return rows
    # Checkpoint on pass *and* fire: any completed intermediate is
    # reusable by a later remainder plan, not just the one that fired.
    state.store_checkpoint(
        plan_signature(op.child),
        op.child.output_schema(),
        rows,
        op.context_label or "check",
    )
    if state.note_check(op, len(rows)):
        if ctx.runtime is not None:
            # The raise skips the _run wrapper's accounting; record the
            # observation here so EXPLAIN ANALYZE shows the fired CHECK.
            node = ctx.runtime.node_for(op)
            node.invocations += 1
            node.actual_rows += len(rows)
            node.check_fired = True
        raise ReoptimizeSignal(op, len(rows))
    return rows


def _run_checkpoint_source(
    op: CheckpointSourceP, catalog: Catalog, ctx: ExecContext
) -> List[Row]:
    if ctx.runtime is not None:
        ctx.runtime.node_for(op).from_checkpoint = True
    rows = list(op.rows)
    ctx.counters.rows_produced += len(rows)
    return rows


def _run_materialize(op: MaterializeP, catalog: Catalog, ctx: ExecContext) -> List[Row]:
    rows = _run(op.child, catalog, ctx)
    pages = pages_for_rows(len(rows), _row_width(op.child.output_schema()), ctx.params)
    if pages > ctx.params.sort_memory_pages:
        ctx.counters.sort_spill_pages += int(2 * pages)
    return rows


# ----------------------------------------------------------------------
# Joins
# ----------------------------------------------------------------------
def _run_nl_join(op: NLJoinP, catalog: Catalog, ctx: ExecContext) -> List[Row]:
    left_rows = _run(op.left, catalog, ctx)
    right_rows = _run(op.right, catalog, ctx)
    left_schema = op.left.output_schema()
    right_schema = op.right.output_schema()
    combined = left_schema.concat(right_schema)
    governor = ctx.governor
    out: List[Row] = []

    def matches(lrow: Row, rrow: Row) -> bool:
        if governor is not None:
            governor.tick()
        ctx.counters.rows_compared += 1
        if op.predicate is None:
            return True
        return predicate_holds(op.predicate, lrow + rrow, combined)

    if op.kind in (JoinKind.INNER, JoinKind.CROSS):
        for lrow in left_rows:
            for rrow in right_rows:
                if matches(lrow, rrow):
                    out.append(lrow + rrow)
    elif op.kind is JoinKind.LEFT_OUTER:
        pad = (None,) * right_schema.arity
        for lrow in left_rows:
            matched = False
            for rrow in right_rows:
                if matches(lrow, rrow):
                    matched = True
                    out.append(lrow + rrow)
            if not matched:
                out.append(lrow + pad)
    elif op.kind is JoinKind.SEMI:
        for lrow in left_rows:
            if any(matches(lrow, rrow) for rrow in right_rows):
                out.append(lrow)
    elif op.kind is JoinKind.ANTI:
        for lrow in left_rows:
            if not any(matches(lrow, rrow) for rrow in right_rows):
                out.append(lrow)
    else:
        raise ExecutionError(f"nested loop join cannot run kind {op.kind}")
    ctx.counters.rows_produced += len(out)
    return out


def _run_inl_join(op: INLJoinP, catalog: Catalog, ctx: ExecContext) -> List[Row]:
    outer_rows = _run(op.outer, catalog, ctx)
    outer_schema = op.outer.output_schema()
    table = catalog.table(op.table)
    ordered = {index.definition.name: index for index in catalog.indexes_on(op.table)}
    hashed = {
        index.definition.name: index for index in catalog.hash_indexes_on(op.table)
    }
    index = ordered.get(op.index_name) or hashed.get(op.index_name)
    if index is None:
        raise ExecutionError(f"unknown index {op.index_name!r} on {op.table!r}")
    inner_schema = StreamSchema.for_table(
        op.alias, op.columns, types=op.column_types
    )
    combined = outer_schema.concat(inner_schema)
    height = getattr(index, "height", 1)
    site = f"idx:{op.index_name}"
    governor = ctx.governor
    out: List[Row] = []
    for orow in outer_rows:
        if governor is not None:
            governor.tick()
        key = tuple(evaluate(expr, orow, outer_schema) for expr in op.outer_keys)
        if any(part is None for part in key):
            matched_ids: List[int] = []
        else:
            for level in range(height):
                ctx.read_page(site, -(level + 1), sequential=False)
            if hasattr(index, "seek_prefix"):
                matched_ids = ctx.index_lookup(
                    lambda: index.seek_prefix(key), site
                )
            else:
                matched_ids = ctx.index_lookup(lambda: index.seek(key), site)
        matched_rows: List[Row] = []
        for row_id in matched_ids:
            ctx.read_page(op.table, table.page_of(row_id), sequential=False)
            irow = table.fetch(row_id)
            if op.residual is not None:
                ctx.counters.rows_compared += 1
                if not predicate_holds(op.residual, orow + irow, combined):
                    continue
            matched_rows.append(tuple(irow))
        if op.kind in (JoinKind.INNER, JoinKind.CROSS):
            out.extend(orow + irow for irow in matched_rows)
        elif op.kind is JoinKind.LEFT_OUTER:
            if matched_rows:
                out.extend(orow + irow for irow in matched_rows)
            else:
                out.append(orow + (None,) * inner_schema.arity)
        elif op.kind is JoinKind.SEMI:
            if matched_rows:
                out.append(orow)
        elif op.kind is JoinKind.ANTI:
            if not matched_rows:
                out.append(orow)
        else:
            raise ExecutionError(f"index NL join cannot run kind {op.kind}")
    ctx.counters.rows_produced += len(out)
    return out


def _key_getter(
    schema: StreamSchema, keys: Sequence[ColumnRef]
) -> Callable[[Row], Tuple[Any, ...]]:
    positions = [schema.position(ref) for ref in keys]
    return lambda row: tuple(row[p] for p in positions)


def _run_merge_join(op: MergeJoinP, catalog: Catalog, ctx: ExecContext) -> List[Row]:
    left_rows = _run(op.left, catalog, ctx)
    right_rows = _run(op.right, catalog, ctx)
    left_schema = op.left.output_schema()
    right_schema = op.right.output_schema()
    combined = left_schema.concat(right_schema)
    left_key = _key_getter(left_schema, op.left_keys)
    right_key = _key_getter(right_schema, op.right_keys)
    governor = ctx.governor
    out: List[Row] = []
    pad = (None,) * right_schema.arity
    i = j = 0
    n, m = len(left_rows), len(right_rows)
    while i < n:
        if governor is not None:
            governor.tick()
        lkey = left_key(left_rows[i])
        if any(part is None for part in lkey):
            # NULL join keys never match.
            if op.kind is JoinKind.LEFT_OUTER:
                out.append(left_rows[i] + pad)
            elif op.kind is JoinKind.ANTI:
                out.append(left_rows[i])
            i += 1
            continue
        while j < m:
            rkey = right_key(right_rows[j])
            ctx.counters.rows_compared += 1
            if any(part is None for part in rkey) or rkey < lkey:
                j += 1
            else:
                break
        # Collect the right group equal to lkey.
        group_start = j
        k = j
        while k < m and right_key(right_rows[k]) == lkey:
            k += 1
        group = right_rows[group_start:k]
        # Emit for every left row sharing lkey.
        while i < n and left_key(left_rows[i]) == lkey:
            lrow = left_rows[i]
            matched = []
            for rrow in group:
                if op.residual is not None:
                    ctx.counters.rows_compared += 1
                    if not predicate_holds(op.residual, lrow + rrow, combined):
                        continue
                matched.append(rrow)
            if op.kind in (JoinKind.INNER, JoinKind.CROSS):
                out.extend(lrow + rrow for rrow in matched)
            elif op.kind is JoinKind.LEFT_OUTER:
                if matched:
                    out.extend(lrow + rrow for rrow in matched)
                else:
                    out.append(lrow + pad)
            elif op.kind is JoinKind.SEMI:
                if matched:
                    out.append(lrow)
            elif op.kind is JoinKind.ANTI:
                if not matched:
                    out.append(lrow)
            else:
                raise ExecutionError(f"merge join cannot run kind {op.kind}")
            i += 1
    ctx.counters.rows_produced += len(out)
    return out


def _partition_of(key: Tuple[Any, ...], parts: int) -> int:
    """Stable partition assignment for degraded hash operators.

    ``hash(str)`` is salted per process, so the builtin would make the
    partition layout -- and therefore per-partition work counters --
    differ between runs.  CRC32 of the key's repr is deterministic.
    """
    return zlib.crc32(repr(key).encode("utf-8")) % parts


def _spill_partitions(build_bytes: int, limit: Optional[int]) -> int:
    """Partition count for a degraded hash operator: enough that each
    partition's build side fits the budget, bounded for sanity."""
    if not limit or limit <= 0:
        return 2
    needed = -(-build_bytes // limit)  # ceil division
    return int(min(_MAX_SPILL_PARTITIONS, max(2, needed)))


def _run_hash_join(op: HashJoinP, catalog: Catalog, ctx: ExecContext) -> List[Row]:
    left_rows = _run(op.left, catalog, ctx)
    right_rows = _run(op.right, catalog, ctx)
    left_schema = op.left.output_schema()
    right_schema = op.right.output_schema()
    combined = left_schema.concat(right_schema)
    left_key = _key_getter(left_schema, op.left_keys)
    right_key = _key_getter(right_schema, op.right_keys)
    governor = ctx.governor
    pad = (None,) * right_schema.arity

    def probe_into(build_rows: List[Row], probe_rows: List[Row]) -> List[Row]:
        build: Dict[Tuple[Any, ...], List[Row]] = {}
        for rrow in build_rows:
            key = right_key(rrow)
            ctx.counters.rows_compared += 1
            if any(part is None for part in key):
                continue
            build.setdefault(key, []).append(rrow)
        out: List[Row] = []
        for lrow in probe_rows:
            if governor is not None:
                governor.tick()
            key = left_key(lrow)
            ctx.counters.rows_compared += 1
            candidates = (
                build.get(key, []) if not any(part is None for part in key) else []
            )
            matched = []
            for rrow in candidates:
                if op.residual is not None:
                    ctx.counters.rows_compared += 1
                    if not predicate_holds(op.residual, lrow + rrow, combined):
                        continue
                matched.append(rrow)
            if op.kind in (JoinKind.INNER, JoinKind.CROSS):
                out.extend(lrow + rrow for rrow in matched)
            elif op.kind is JoinKind.LEFT_OUTER:
                if matched:
                    out.extend(lrow + rrow for rrow in matched)
                else:
                    out.append(lrow + pad)
            elif op.kind is JoinKind.SEMI:
                if matched:
                    out.append(lrow)
            elif op.kind is JoinKind.ANTI:
                if not matched:
                    out.append(lrow)
            else:
                raise ExecutionError(f"hash join cannot run kind {op.kind}")
        return out

    build_width = _row_width(right_schema)
    build_bytes = int(len(right_rows) * build_width)
    build_pages = pages_for_rows(len(right_rows), build_width, ctx.params)
    probe_pages = pages_for_rows(
        len(left_rows), _row_width(left_schema), ctx.params
    )
    if build_pages > ctx.params.hash_memory_pages:
        ctx.counters.sort_spill_pages += int(2 * (build_pages + probe_pages))

    degraded = False
    if governor is not None:
        try:
            governor.reserve_memory(build_bytes, "HashJoin build")
        except MemoryBudgetExceeded:
            degraded = True

    if not degraded:
        out = probe_into(right_rows, left_rows)
    else:
        # Graceful degradation: Grace-style partitioning.  Both inputs are
        # hashed on their join keys into the same partition space, so rows
        # that could match always land in the same partition and every
        # join kind (including LEFT_OUTER/ANTI, whose unmatched probe rows
        # stay with their partition) is preserved.  Partitions are joined
        # in order, keeping output deterministic.
        parts = _spill_partitions(
            build_bytes, governor.budget.memory_limit_bytes
        )
        ctx.counters.degraded_operators += 1
        if ctx.runtime is not None:
            ctx.runtime.node_for(op).degraded = True
        ctx.counters.sort_spill_pages += int(2 * (build_pages + probe_pages))
        build_parts: List[List[Row]] = [[] for _ in range(parts)]
        for rrow in right_rows:
            build_parts[_partition_of(right_key(rrow), parts)].append(rrow)
        probe_parts: List[List[Row]] = [[] for _ in range(parts)]
        for lrow in left_rows:
            probe_parts[_partition_of(left_key(lrow), parts)].append(lrow)
        out = []
        for build_part, probe_part in zip(build_parts, probe_parts):
            governor.check()
            out.extend(probe_into(build_part, probe_part))

    ctx.counters.rows_produced += len(out)
    return out


# ----------------------------------------------------------------------
# Aggregation, distinct, union, apply, exchange
# ----------------------------------------------------------------------
def _aggregate_groups(
    op: HashAggP, rows: List[Row], schema: StreamSchema, ctx: ExecContext
) -> List[Row]:
    key_of = _key_getter(schema, op.keys) if op.keys else (lambda _row: ())
    governor = ctx.governor
    groups: Dict[Tuple[Any, ...], list] = {}
    order: List[Tuple[Any, ...]] = []
    for row in rows:
        if governor is not None:
            governor.tick()
        key = key_of(row)
        ctx.counters.rows_compared += 1
        if key not in groups:
            groups[key] = [call.new_accumulator() for call in op.aggregates]
            order.append(key)
        for call, accumulator in zip(op.aggregates, groups[key]):
            if call.is_star:
                accumulator.add(1)
            else:
                accumulator.add_value(evaluate(call.arg, row, schema))
    if not groups and not op.keys:
        groups[()] = [call.new_accumulator() for call in op.aggregates]
        order.append(())
    out = [key + tuple(acc.result() for acc in groups[key]) for key in order]
    ctx.counters.rows_produced += len(out)
    return out


def _run_hash_agg(op: HashAggP, catalog: Catalog, ctx: ExecContext) -> List[Row]:
    rows = _run(op.child, catalog, ctx)
    schema = op.child.output_schema()
    governor = ctx.governor
    if governor is not None and op.keys:
        # The aggregation table holds roughly one input row per group in
        # the worst case; reserve the input working set and degrade to
        # partition-wise aggregation if it busts the memory budget.
        # (Global aggregation -- no keys -- keeps O(1) state and never
        # needs to degrade; partitioning it would also fabricate one
        # spurious row per empty partition.)
        width = _row_width(schema)
        table_bytes = int(len(rows) * width)
        try:
            governor.reserve_memory(table_bytes, "HashAgg table")
        except MemoryBudgetExceeded:
            parts = _spill_partitions(
                table_bytes, governor.budget.memory_limit_bytes
            )
            ctx.counters.degraded_operators += 1
            if ctx.runtime is not None:
                ctx.runtime.node_for(op).degraded = True
            ctx.counters.sort_spill_pages += int(
                2 * pages_for_rows(len(rows), width, ctx.params)
            )
            key_of = _key_getter(schema, op.keys)
            partitions: List[List[Row]] = [[] for _ in range(parts)]
            for row in rows:
                partitions[_partition_of(key_of(row), parts)].append(row)
            out: List[Row] = []
            for partition in partitions:
                governor.check()
                if partition:
                    out.extend(_aggregate_groups(op, partition, schema, ctx))
            return out
    return _aggregate_groups(op, rows, schema, ctx)


def _run_stream_agg(op: StreamAggP, catalog: Catalog, ctx: ExecContext) -> List[Row]:
    # The input is sorted on the keys, so groups are contiguous; the hash
    # path produces identical results and the ordering keeps them grouped.
    rows = _run(op.child, catalog, ctx)
    return _aggregate_groups(op, rows, op.child.output_schema(), ctx)


def _run_distinct(op: DistinctP, catalog: Catalog, ctx: ExecContext) -> List[Row]:
    rows = _run(op.child, catalog, ctx)
    governor = ctx.governor
    seen = set()
    out = []
    for row in rows:
        if governor is not None:
            governor.tick()
        ctx.counters.rows_compared += 1
        if row not in seen:
            seen.add(row)
            out.append(row)
    ctx.counters.rows_produced += len(out)
    return out


def _run_union_all(op: UnionAllP, catalog: Catalog, ctx: ExecContext) -> List[Row]:
    rows = _run(op.left, catalog, ctx) + _run(op.right, catalog, ctx)
    ctx.counters.rows_produced += len(rows)
    return rows


def _run_apply(op: ApplyP, catalog: Catalog, ctx: ExecContext) -> List[Row]:
    left_rows = _run(op.left, catalog, ctx)
    left_schema = op.left.output_schema()
    out: List[Row] = []
    inner_stats = InterpreterStats()
    from repro.engine.interpreter import _eval_op  # reference evaluator

    for lrow in left_rows:
        if ctx.governor is not None:
            ctx.governor.check()
        ctx.counters.inner_evaluations += 1
        _schema, inner_rows = _eval_op(
            op.inner, catalog, left_schema, lrow, inner_stats
        )
        if op.kind == "semi":
            if inner_rows:
                out.append(lrow)
        elif op.kind == "anti":
            if not inner_rows:
                out.append(lrow)
        else:
            if len(inner_rows) > 1:
                raise ExecutionError("scalar subquery returned more than one row")
            value = inner_rows[0][0] if inner_rows else None
            out.append(lrow + (value,))
    ctx.counters.rows_compared += inner_stats.rows_produced
    ctx.counters.rows_produced += len(out)
    return out


def _run_exchange(op: ExchangeP, catalog: Catalog, ctx: ExecContext) -> List[Row]:
    rows = _run(op.child, catalog, ctx)
    width = _row_width(op.child.output_schema())
    pages = pages_for_rows(len(rows), width, ctx.params)
    ctx.counters.exchange_pages += int(pages)
    return rows


_HANDLERS = {
    CheckP: _run_check,
    CheckpointSourceP: _run_checkpoint_source,
    SeqScanP: _run_seq_scan,
    IndexScanP: _run_index_scan,
    FilterP: _run_filter,
    UdfFilterP: _run_udf_filter,
    ProjectP: _run_project,
    SortP: _run_sort,
    MaterializeP: _run_materialize,
    NLJoinP: _run_nl_join,
    INLJoinP: _run_inl_join,
    MergeJoinP: _run_merge_join,
    HashJoinP: _run_hash_join,
    StreamAggP: _run_stream_agg,
    HashAggP: _run_hash_agg,
    DistinctP: _run_distinct,
    UnionAllP: _run_union_all,
    ApplyP: _run_apply,
    ExchangeP: _run_exchange,
}
