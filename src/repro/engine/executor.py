"""The physical-plan executor.

Executes physical operator trees against catalog data and records the
work done (page reads through the simulated buffer pool, comparisons,
UDF calls) in the :class:`~repro.engine.context.ExecContext`.
Benchmarks use these counters as the *measured* cost to validate
optimizer estimates.

Two execution strategies share this module:

* the **batch-iterator engine** (default, ``ctx.batch_mode=True``):
  operators are generators that yield row batches of
  ``params.batch_size`` rows, pulled demand-driven from the root.
  Streaming operators (scans, filters, projections, the probe side of a
  hash join, LIMIT) hold at most one batch; only declared pipeline
  breakers (see :attr:`PhysicalOp.is_pipeline_breaker`) materialize
  their input.  Each operator's high-water materialization is recorded
  as ``peak_resident_rows`` in the runtime stats.  Scalar expressions
  are compiled once per operator into closures
  (:mod:`repro.expr.compiler`) unless ``ctx.compiled_expressions`` is
  off.
* the **legacy materializing engine** (``ctx.batch_mode=False``):
  every operator materializes its full output.  It is kept verbatim as
  the differential-testing oracle for the batch engine.

Both produce bit-identical rows and counters for full result drains.

Robustness hooks run throughout: the context's
:class:`~repro.engine.governor.ResourceGovernor` is consulted at
operator boundaries, inside row loops, and on every page read, so
budget violations and cancellations surface as typed errors instead of
runaway executions; storage faults injected on page reads and index
lookups are retried with bounded backoff; and blocking hash operators
whose working set would bust the memory budget degrade to partitioned
(spilling) execution rather than failing.
"""

from __future__ import annotations

import time
import zlib
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.catalog.catalog import Catalog
from repro.cost.model import pages_for_rows
from repro.engine.adaptive import ReoptimizeSignal, splice_checkpoints
from repro.engine.context import ExecContext
from repro.engine.interpreter import InterpreterStats, interpret, sort_rows
from repro.engine.runtime_stats import RuntimeStats
from repro.errors import ExecutionError, MemoryBudgetExceeded
from repro.expr.compiler import compile_predicate, compile_scalar
from repro.expr.evaluator import bind_parameters, evaluate, predicate_holds
from repro.expr.expressions import ColumnRef, Expr
from repro.expr.schema import StreamSchema
from repro.logical.operators import JoinKind
from repro.stats.feedback import harvest_feedback
from repro.physical.plans import (
    ApplyP,
    CheckP,
    CheckpointSourceP,
    DistinctP,
    ExchangeP,
    FilterP,
    GatherP,
    HashAggP,
    HashJoinP,
    INLJoinP,
    IndexScanP,
    LimitP,
    MaterializeP,
    MergeJoinP,
    NLJoinP,
    PhysicalOp,
    ProjectP,
    SeqScanP,
    SortP,
    StreamAggP,
    UdfFilterP,
    UnionAllP,
    plan_signature,
    walk_physical,
)

Row = Tuple[Any, ...]

# Cap on how finely degraded hash operators partition their input when
# squeezing under a memory budget.
_MAX_SPILL_PARTITIONS = 64


def execute(
    plan: PhysicalOp,
    catalog: Catalog,
    context: Optional[ExecContext] = None,
    parameters: Optional[Sequence[Any]] = None,
) -> Tuple[StreamSchema, List[Row]]:
    """Run a physical plan; returns ``(schema, rows)``.

    Every run attaches a *fresh* :class:`RuntimeStats` tree to
    ``context.runtime`` before touching any operator, so per-operator
    actuals (rows, invocations, wall time, pages) describe exactly one
    execution -- re-running a cached prepared-statement plan never
    accumulates counters from earlier runs.

    Args:
        plan: the physical plan to run.
        catalog: table and index data.
        context: execution context (a fresh one is created if omitted).
        parameters: positional values for ``?`` markers in the plan
            (overrides any values already on the context).

    Raises:
        ExecutionError: on malformed plans or runtime failures.
        ResourceError: when the context's budget is violated or its
            cancellation token fires (see QueryTimeout, QueryCancelled).
        TransientStorageError: when an injected fault outlives its retries.
    """
    if context is None:
        context = ExecContext()
    if parameters is not None:
        context.parameters = tuple(parameters)
    context.runtime = RuntimeStats()
    context.begin_execution()
    start = time.perf_counter()
    current = plan
    try:
        with bind_parameters(context.parameters):
            if context.adaptive is not None:
                rows, current = _run_adaptive(plan, catalog, context)
            else:
                rows = _collect(plan, catalog, context)
    finally:
        if context.adaptive is not None:
            # Materialized intermediates live only within one execution;
            # dropping them here guarantees no temps leak, success or not.
            context.adaptive.materialized.clear()
        context.runtime.total_seconds = time.perf_counter() - start
    if context.feedback is not None and not _plan_has_limit(current):
        # Close the loop: per-operator actuals recorded at operator
        # boundaries become observed selectivities for the optimizer.
        # Plans containing a LIMIT are excluded: early termination leaves
        # operators above and beside the quota with *partial* actuals,
        # which would poison the feedback cache with underestimates.
        context.feedback_summary = harvest_feedback(
            current, context.runtime, catalog, context.feedback
        )
    return current.output_schema(), rows


def _run_adaptive(
    plan: PhysicalOp, catalog: Catalog, context: ExecContext
) -> Tuple[List[Row], PhysicalOp]:
    """Progressive-optimization driver: run, and on a CHECK whose observed
    cardinality escapes its validity range, harvest what was learned,
    re-optimize the remainder, splice in already-materialized
    intermediates, and resume.  Returns ``(rows, final_plan)``.

    One RuntimeStats tree spans all attempts (stats are keyed by operator
    identity, and abandoned plans are kept alive on the state's plan
    history, so ids never collide); EXPLAIN ANALYZE over the final plan
    therefore shows checkpoint sources with the rows they replayed.
    """
    state = context.adaptive
    state.plan_history.append(plan)
    state.final_plan = plan
    current = plan
    while True:
        try:
            rows = _collect(current, catalog, context)
            return rows, current
        except ReoptimizeSignal:
            state.reoptimizations += 1
            if context.governor is not None:
                # A replan consumes budget like any other work: charge it
                # and fail typed if the deadline has already passed.
                context.governor.on_reoptimization()
            if context.feedback is not None and not _plan_has_limit(current):
                # Feed the observed cardinalities (including the row count
                # that fired the CHECK) to the estimator, so re-planning
                # sees corrected selectivities, not the ones that misled.
                harvest_feedback(
                    current, context.runtime, catalog, context.feedback
                )
            if state.replanner is None:  # pragma: no cover - note_check
                raise ExecutionError("CHECK fired without a replanner")
            remainder = splice_checkpoints(state.replanner(), state)
            state.plan_history.append(remainder)
            state.final_plan = remainder
            current = remainder


def _collect(op: PhysicalOp, catalog: Catalog, ctx: ExecContext) -> List[Row]:
    """Fully evaluate a plan with whichever engine the context selects."""
    if ctx.batch_mode:
        if ctx.columnar_mode:
            # Imported lazily: the columnar engine reuses this module's
            # row-batch driver for bridged operators.
            from repro.engine.columnar import drain_columns

            return drain_columns(op, catalog, ctx)
        return _drain(op, catalog, ctx)
    return _run(op, catalog, ctx)


def _plan_has_limit(plan: PhysicalOp) -> bool:
    return any(isinstance(node, LimitP) for node in walk_physical(plan))


# ======================================================================
# Legacy materializing engine (the differential-testing oracle)
# ======================================================================
def _run(op: PhysicalOp, catalog: Catalog, ctx: ExecContext) -> List[Row]:
    handler = _HANDLERS.get(type(op))
    if handler is None:
        for op_type, candidate in _HANDLERS.items():
            if isinstance(op, op_type):
                handler = candidate
                break
    if handler is None:
        raise ExecutionError(f"no executor for {type(op).__name__}")
    governor = ctx.governor
    if governor is not None:
        # Operator batch boundary: the cheapest place to observe budget
        # violations and cancellations with full-check fidelity.
        governor.check()
    if ctx.runtime is None:
        rows = handler(op, catalog, ctx)
        if governor is not None:
            governor.on_rows(len(rows))
        return rows
    node = ctx.runtime.node_for(op)
    pages_before = ctx.counters.total_page_reads
    retries_before = ctx.counters.retries
    start = time.perf_counter()
    rows = handler(op, catalog, ctx)
    node.wall_seconds += time.perf_counter() - start
    node.pages_read += ctx.counters.total_page_reads - pages_before
    # Cumulative over the subtree, like pages_read; the renderer
    # subtracts children to show each operator's own absorbed retries.
    node.retries += ctx.counters.retries - retries_before
    node.invocations += 1
    node.actual_rows += len(rows)
    # The materializing engine holds every operator's entire output.
    node.peak_resident_rows = max(node.peak_resident_rows, len(rows))
    if governor is not None:
        governor.on_rows(len(rows))
    return rows


def _row_width(schema: StreamSchema) -> float:
    """Modelled bytes per row of a stream, from slot types where known."""
    return schema.row_width_bytes()


# ----------------------------------------------------------------------
# Scans
# ----------------------------------------------------------------------
def _run_seq_scan(op: SeqScanP, catalog: Catalog, ctx: ExecContext) -> List[Row]:
    table = catalog.table(op.table)
    schema = op.output_schema()
    governor = ctx.governor
    out: List[Row] = []
    for page_no in range(table.page_count):
        ctx.read_page(op.table, page_no, sequential=True)
    for _row_id, row in table.visible_rows(ctx.snapshot):
        if governor is not None:
            governor.tick()
        if op.predicate is not None:
            ctx.counters.rows_compared += 1
            if not predicate_holds(op.predicate, row, schema):
                continue
        out.append(tuple(row))
    ctx.counters.rows_produced += len(out)
    return out


def _run_index_scan(op: IndexScanP, catalog: Catalog, ctx: ExecContext) -> List[Row]:
    table = catalog.table(op.table)
    index = catalog.index(op.index_name)
    schema = op.output_schema()
    # Traverse the index: height pages randomly, through the buffer pool.
    for level in range(index.height):
        ctx.read_page(f"idx:{op.index_name}", -(level + 1), sequential=False)
    site = f"idx:{op.index_name}"
    if op.eq_value is not None:
        row_ids = ctx.index_lookup(lambda: index.seek_prefix(op.eq_value), site)
    elif op.low is not None or op.high is not None:
        row_ids = ctx.index_lookup(
            lambda: index.range(
                op.low,
                op.high,
                include_low=not op.low_strict,
                include_high=not op.high_strict,
            ),
            site,
        )
    else:
        row_ids = ctx.index_lookup(index.ordered_row_ids, site)
    # Leaf pages covered by the scan.
    if index.page_count:
        covered = max(1, round(index.page_count * len(row_ids) / max(index.entry_count, 1)))
        for leaf in range(covered):
            ctx.read_page(f"idx:{op.index_name}", leaf, sequential=True)
    clustered = index.definition.clustered
    governor = ctx.governor
    out: List[Row] = []
    for row_id in row_ids:
        if governor is not None:
            governor.tick()
        # Index entries are not versioned: filter dead versions here.
        if not table.row_visible(row_id, ctx.snapshot):
            continue
        ctx.read_page(op.table, table.page_of(row_id), sequential=clustered)
        row = table.fetch(row_id)
        if op.predicate is not None:
            ctx.counters.rows_compared += 1
            if not predicate_holds(op.predicate, row, schema):
                continue
        out.append(tuple(row))
    ctx.counters.rows_produced += len(out)
    return out


# ----------------------------------------------------------------------
# Stream operators
# ----------------------------------------------------------------------
def _run_filter(op: FilterP, catalog: Catalog, ctx: ExecContext) -> List[Row]:
    rows = _run(op.child, catalog, ctx)
    schema = op.child.output_schema()
    governor = ctx.governor
    out = []
    for row in rows:
        if governor is not None:
            governor.tick()
        ctx.counters.rows_compared += 1
        if predicate_holds(op.predicate, row, schema):
            out.append(row)
    ctx.counters.rows_produced += len(out)
    return out


def _run_udf_filter(op: UdfFilterP, catalog: Catalog, ctx: ExecContext) -> List[Row]:
    rows = _run(op.child, catalog, ctx)
    schema = op.child.output_schema()
    governor = ctx.governor
    out = []
    for row in rows:
        if governor is not None:
            governor.tick()
        ctx.counters.udf_invocations += 1
        ctx.counters.rows_compared += max(1, int(op.udf.per_tuple_cost))
        if evaluate(op.udf, row, schema) is True:
            out.append(row)
    ctx.counters.rows_produced += len(out)
    return out


def _run_project(op: ProjectP, catalog: Catalog, ctx: ExecContext) -> List[Row]:
    rows = _run(op.child, catalog, ctx)
    schema = op.child.output_schema()
    out = [
        tuple(evaluate(item.expr, row, schema) for item in op.items) for row in rows
    ]
    ctx.counters.rows_produced += len(out)
    return out


def _run_sort(op: SortP, catalog: Catalog, ctx: ExecContext) -> List[Row]:
    rows = _run(op.child, catalog, ctx)
    schema = op.child.output_schema()
    width = _row_width(schema)
    pages = pages_for_rows(len(rows), width, ctx.params)
    if pages > ctx.params.sort_memory_pages:
        ctx.counters.sort_spill_pages += int(2 * pages)
    if ctx.governor is not None:
        # Sorts always have the external-merge path, so a sort working
        # set over budget is recorded (high-water mark) but never fatal.
        ctx.governor.memory_high_water_bytes = max(
            ctx.governor.memory_high_water_bytes, int(len(rows) * width)
        )
    out = sort_rows(rows, schema, op.sort_order)
    ctx.counters.rows_compared += int(len(rows) * max(1, len(rows)).bit_length())
    ctx.counters.rows_produced += len(out)
    return out


def _run_check(op: CheckP, catalog: Catalog, ctx: ExecContext) -> List[Row]:
    rows = _run(op.child, catalog, ctx)
    state = ctx.adaptive
    if state is None:
        return rows
    # Checkpoint on pass *and* fire: any completed intermediate is
    # reusable by a later remainder plan, not just the one that fired.
    state.store_checkpoint(
        plan_signature(op.child),
        op.child.output_schema(),
        rows,
        op.context_label or "check",
    )
    if state.note_check(op, len(rows)):
        if ctx.runtime is not None:
            # The raise skips the _run wrapper's accounting; record the
            # observation here so EXPLAIN ANALYZE shows the fired CHECK.
            node = ctx.runtime.node_for(op)
            node.invocations += 1
            node.actual_rows += len(rows)
            node.check_fired = True
        raise ReoptimizeSignal(op, len(rows))
    return rows


def _run_checkpoint_source(
    op: CheckpointSourceP, catalog: Catalog, ctx: ExecContext
) -> List[Row]:
    if ctx.runtime is not None:
        ctx.runtime.node_for(op).from_checkpoint = True
    rows = list(op.rows)
    ctx.counters.rows_produced += len(rows)
    return rows


def _run_materialize(op: MaterializeP, catalog: Catalog, ctx: ExecContext) -> List[Row]:
    rows = _run(op.child, catalog, ctx)
    pages = pages_for_rows(len(rows), _row_width(op.child.output_schema()), ctx.params)
    if pages > ctx.params.sort_memory_pages:
        ctx.counters.sort_spill_pages += int(2 * pages)
    return rows


# ----------------------------------------------------------------------
# Joins
# ----------------------------------------------------------------------
def _run_nl_join(op: NLJoinP, catalog: Catalog, ctx: ExecContext) -> List[Row]:
    left_rows = _run(op.left, catalog, ctx)
    right_rows = _run(op.right, catalog, ctx)
    left_schema = op.left.output_schema()
    right_schema = op.right.output_schema()
    combined = left_schema.concat(right_schema)
    governor = ctx.governor
    out: List[Row] = []

    def matches(lrow: Row, rrow: Row) -> bool:
        if governor is not None:
            governor.tick()
        ctx.counters.rows_compared += 1
        if op.predicate is None:
            return True
        return predicate_holds(op.predicate, lrow + rrow, combined)

    if op.kind in (JoinKind.INNER, JoinKind.CROSS):
        for lrow in left_rows:
            for rrow in right_rows:
                if matches(lrow, rrow):
                    out.append(lrow + rrow)
    elif op.kind is JoinKind.LEFT_OUTER:
        pad = (None,) * right_schema.arity
        for lrow in left_rows:
            matched = False
            for rrow in right_rows:
                if matches(lrow, rrow):
                    matched = True
                    out.append(lrow + rrow)
            if not matched:
                out.append(lrow + pad)
    elif op.kind is JoinKind.SEMI:
        for lrow in left_rows:
            if any(matches(lrow, rrow) for rrow in right_rows):
                out.append(lrow)
    elif op.kind is JoinKind.ANTI:
        for lrow in left_rows:
            if not any(matches(lrow, rrow) for rrow in right_rows):
                out.append(lrow)
    else:
        raise ExecutionError(f"nested loop join cannot run kind {op.kind}")
    ctx.counters.rows_produced += len(out)
    return out


def _run_inl_join(op: INLJoinP, catalog: Catalog, ctx: ExecContext) -> List[Row]:
    outer_rows = _run(op.outer, catalog, ctx)
    outer_schema = op.outer.output_schema()
    table = catalog.table(op.table)
    ordered = {index.definition.name: index for index in catalog.indexes_on(op.table)}
    hashed = {
        index.definition.name: index for index in catalog.hash_indexes_on(op.table)
    }
    index = ordered.get(op.index_name) or hashed.get(op.index_name)
    if index is None:
        raise ExecutionError(f"unknown index {op.index_name!r} on {op.table!r}")
    inner_schema = StreamSchema.for_table(
        op.alias, op.columns, types=op.column_types
    )
    combined = outer_schema.concat(inner_schema)
    height = getattr(index, "height", 1)
    site = f"idx:{op.index_name}"
    governor = ctx.governor
    out: List[Row] = []
    for orow in outer_rows:
        if governor is not None:
            governor.tick()
        key = tuple(evaluate(expr, orow, outer_schema) for expr in op.outer_keys)
        if any(part is None for part in key):
            matched_ids: List[int] = []
        else:
            for level in range(height):
                ctx.read_page(site, -(level + 1), sequential=False)
            if hasattr(index, "seek_prefix"):
                matched_ids = ctx.index_lookup(
                    lambda: index.seek_prefix(key), site
                )
            else:
                matched_ids = ctx.index_lookup(lambda: index.seek(key), site)
        matched_rows: List[Row] = []
        for row_id in matched_ids:
            if not table.row_visible(row_id, ctx.snapshot):
                continue
            ctx.read_page(op.table, table.page_of(row_id), sequential=False)
            irow = table.fetch(row_id)
            if op.residual is not None:
                ctx.counters.rows_compared += 1
                if not predicate_holds(op.residual, orow + irow, combined):
                    continue
            matched_rows.append(tuple(irow))
        if op.kind in (JoinKind.INNER, JoinKind.CROSS):
            out.extend(orow + irow for irow in matched_rows)
        elif op.kind is JoinKind.LEFT_OUTER:
            if matched_rows:
                out.extend(orow + irow for irow in matched_rows)
            else:
                out.append(orow + (None,) * inner_schema.arity)
        elif op.kind is JoinKind.SEMI:
            if matched_rows:
                out.append(orow)
        elif op.kind is JoinKind.ANTI:
            if not matched_rows:
                out.append(orow)
        else:
            raise ExecutionError(f"index NL join cannot run kind {op.kind}")
    ctx.counters.rows_produced += len(out)
    return out


# Canonical NaN sentinel.  IEEE 754 NaN is not equal to itself, which
# makes a raw NaN useless as a dict/set key: two NaN-keyed rows hash to
# different buckets (``hash(float("nan"))`` incorporates ``id`` on
# CPython >= 3.10) and never compare equal.  SQL systems -- and SQLite,
# our differential oracle -- treat NaN as a single grouping/distinct/join
# key value.  Mapping every NaN to this one shared object restores that:
# tuple equality short-circuits on identity before calling ``==``, so
# two keys holding _NAN_KEY in the same slot compare (and hash) equal.
_NAN_KEY = float("nan")


def _canon_key_part(value: Any) -> Any:
    """Map any float NaN to the shared sentinel; pass everything else."""
    if isinstance(value, float) and value != value:
        return _NAN_KEY
    return value


def _canon_key(values: Tuple[Any, ...]) -> Tuple[Any, ...]:
    """Canonicalize a key tuple so NaN equals NaN (see ``_NAN_KEY``)."""
    return tuple(_canon_key_part(value) for value in values)


def _key_getter(
    schema: StreamSchema, keys: Sequence[ColumnRef]
) -> Callable[[Row], Tuple[Any, ...]]:
    positions = [schema.position(ref) for ref in keys]
    return lambda row: tuple(_canon_key_part(row[p]) for p in positions)


def _run_merge_join(op: MergeJoinP, catalog: Catalog, ctx: ExecContext) -> List[Row]:
    left_rows = _run(op.left, catalog, ctx)
    right_rows = _run(op.right, catalog, ctx)
    left_schema = op.left.output_schema()
    right_schema = op.right.output_schema()
    combined = left_schema.concat(right_schema)
    left_key = _key_getter(left_schema, op.left_keys)
    right_key = _key_getter(right_schema, op.right_keys)
    governor = ctx.governor
    out: List[Row] = []
    pad = (None,) * right_schema.arity
    i = j = 0
    n, m = len(left_rows), len(right_rows)
    while i < n:
        if governor is not None:
            governor.tick()
        lkey = left_key(left_rows[i])
        if any(part is None for part in lkey):
            # NULL join keys never match.
            if op.kind is JoinKind.LEFT_OUTER:
                out.append(left_rows[i] + pad)
            elif op.kind is JoinKind.ANTI:
                out.append(left_rows[i])
            i += 1
            continue
        while j < m:
            rkey = right_key(right_rows[j])
            ctx.counters.rows_compared += 1
            if any(part is None for part in rkey) or rkey < lkey:
                j += 1
            else:
                break
        # Collect the right group equal to lkey.
        group_start = j
        k = j
        while k < m and right_key(right_rows[k]) == lkey:
            k += 1
        group = right_rows[group_start:k]
        # Emit for every left row sharing lkey.
        while i < n and left_key(left_rows[i]) == lkey:
            lrow = left_rows[i]
            matched = []
            for rrow in group:
                if op.residual is not None:
                    ctx.counters.rows_compared += 1
                    if not predicate_holds(op.residual, lrow + rrow, combined):
                        continue
                matched.append(rrow)
            if op.kind in (JoinKind.INNER, JoinKind.CROSS):
                out.extend(lrow + rrow for rrow in matched)
            elif op.kind is JoinKind.LEFT_OUTER:
                if matched:
                    out.extend(lrow + rrow for rrow in matched)
                else:
                    out.append(lrow + pad)
            elif op.kind is JoinKind.SEMI:
                if matched:
                    out.append(lrow)
            elif op.kind is JoinKind.ANTI:
                if not matched:
                    out.append(lrow)
            else:
                raise ExecutionError(f"merge join cannot run kind {op.kind}")
            i += 1
    ctx.counters.rows_produced += len(out)
    return out


def _partition_of(key: Tuple[Any, ...], parts: int) -> int:
    """Stable partition assignment for degraded hash operators.

    ``hash(str)`` is salted per process, so the builtin would make the
    partition layout -- and therefore per-partition work counters --
    differ between runs.  CRC32 of the key's repr is deterministic.
    """
    return zlib.crc32(repr(key).encode("utf-8")) % parts


def _spill_partitions(build_bytes: int, limit: Optional[int]) -> int:
    """Partition count for a degraded hash operator: enough that each
    partition's build side fits the budget, bounded for sanity."""
    if not limit or limit <= 0:
        return 2
    needed = -(-build_bytes // limit)  # ceil division
    return int(min(_MAX_SPILL_PARTITIONS, max(2, needed)))


def _run_hash_join(op: HashJoinP, catalog: Catalog, ctx: ExecContext) -> List[Row]:
    left_rows = _run(op.left, catalog, ctx)
    right_rows = _run(op.right, catalog, ctx)
    left_schema = op.left.output_schema()
    right_schema = op.right.output_schema()
    combined = left_schema.concat(right_schema)
    left_key = _key_getter(left_schema, op.left_keys)
    right_key = _key_getter(right_schema, op.right_keys)
    governor = ctx.governor
    pad = (None,) * right_schema.arity

    def probe_into(build_rows: List[Row], probe_rows: List[Row]) -> List[Row]:
        build: Dict[Tuple[Any, ...], List[Row]] = {}
        for rrow in build_rows:
            key = right_key(rrow)
            ctx.counters.rows_compared += 1
            if any(part is None for part in key):
                continue
            build.setdefault(key, []).append(rrow)
        out: List[Row] = []
        for lrow in probe_rows:
            if governor is not None:
                governor.tick()
            key = left_key(lrow)
            ctx.counters.rows_compared += 1
            candidates = (
                build.get(key, []) if not any(part is None for part in key) else []
            )
            matched = []
            for rrow in candidates:
                if op.residual is not None:
                    ctx.counters.rows_compared += 1
                    if not predicate_holds(op.residual, lrow + rrow, combined):
                        continue
                matched.append(rrow)
            if op.kind in (JoinKind.INNER, JoinKind.CROSS):
                out.extend(lrow + rrow for rrow in matched)
            elif op.kind is JoinKind.LEFT_OUTER:
                if matched:
                    out.extend(lrow + rrow for rrow in matched)
                else:
                    out.append(lrow + pad)
            elif op.kind is JoinKind.SEMI:
                if matched:
                    out.append(lrow)
            elif op.kind is JoinKind.ANTI:
                if not matched:
                    out.append(lrow)
            else:
                raise ExecutionError(f"hash join cannot run kind {op.kind}")
        return out

    build_width = _row_width(right_schema)
    build_bytes = int(len(right_rows) * build_width)
    build_pages = pages_for_rows(len(right_rows), build_width, ctx.params)
    probe_pages = pages_for_rows(
        len(left_rows), _row_width(left_schema), ctx.params
    )
    if build_pages > ctx.params.hash_memory_pages:
        ctx.counters.sort_spill_pages += int(2 * (build_pages + probe_pages))

    degraded = False
    if governor is not None:
        try:
            governor.reserve_memory(build_bytes, "HashJoin build")
        except MemoryBudgetExceeded:
            degraded = True

    if not degraded:
        out = probe_into(right_rows, left_rows)
    else:
        # Graceful degradation: Grace-style partitioning.  Both inputs are
        # hashed on their join keys into the same partition space, so rows
        # that could match always land in the same partition and every
        # join kind (including LEFT_OUTER/ANTI, whose unmatched probe rows
        # stay with their partition) is preserved.  Partitions are joined
        # in order, keeping output deterministic.
        parts = _spill_partitions(
            build_bytes, governor.budget.memory_limit_bytes
        )
        ctx.counters.degraded_operators += 1
        if ctx.runtime is not None:
            ctx.runtime.node_for(op).degraded = True
        ctx.counters.sort_spill_pages += int(2 * (build_pages + probe_pages))
        build_parts: List[List[Row]] = [[] for _ in range(parts)]
        for rrow in right_rows:
            build_parts[_partition_of(right_key(rrow), parts)].append(rrow)
        probe_parts: List[List[Row]] = [[] for _ in range(parts)]
        for lrow in left_rows:
            probe_parts[_partition_of(left_key(lrow), parts)].append(lrow)
        out = []
        for build_part, probe_part in zip(build_parts, probe_parts):
            governor.check()
            out.extend(probe_into(build_part, probe_part))

    ctx.counters.rows_produced += len(out)
    return out


# ----------------------------------------------------------------------
# Aggregation, distinct, union, apply, exchange
# ----------------------------------------------------------------------
def _aggregate_groups(
    op: HashAggP, rows: List[Row], schema: StreamSchema, ctx: ExecContext
) -> List[Row]:
    key_of = _key_getter(schema, op.keys) if op.keys else (lambda _row: ())
    governor = ctx.governor
    groups: Dict[Tuple[Any, ...], list] = {}
    order: List[Tuple[Any, ...]] = []
    for row in rows:
        if governor is not None:
            governor.tick()
        key = key_of(row)
        ctx.counters.rows_compared += 1
        if key not in groups:
            groups[key] = [call.new_accumulator() for call in op.aggregates]
            order.append(key)
        for call, accumulator in zip(op.aggregates, groups[key]):
            if call.is_star:
                accumulator.add(1)
            else:
                accumulator.add_value(evaluate(call.arg, row, schema))
    if not groups and not op.keys:
        groups[()] = [call.new_accumulator() for call in op.aggregates]
        order.append(())
    out = [key + tuple(acc.result() for acc in groups[key]) for key in order]
    ctx.counters.rows_produced += len(out)
    return out


def _run_hash_agg(op: HashAggP, catalog: Catalog, ctx: ExecContext) -> List[Row]:
    rows = _run(op.child, catalog, ctx)
    schema = op.child.output_schema()
    governor = ctx.governor
    if governor is not None and op.keys:
        # The aggregation table holds roughly one input row per group in
        # the worst case; reserve the input working set and degrade to
        # partition-wise aggregation if it busts the memory budget.
        # (Global aggregation -- no keys -- keeps O(1) state and never
        # needs to degrade; partitioning it would also fabricate one
        # spurious row per empty partition.)
        width = _row_width(schema)
        table_bytes = int(len(rows) * width)
        try:
            governor.reserve_memory(table_bytes, "HashAgg table")
        except MemoryBudgetExceeded:
            parts = _spill_partitions(
                table_bytes, governor.budget.memory_limit_bytes
            )
            ctx.counters.degraded_operators += 1
            if ctx.runtime is not None:
                ctx.runtime.node_for(op).degraded = True
            ctx.counters.sort_spill_pages += int(
                2 * pages_for_rows(len(rows), width, ctx.params)
            )
            key_of = _key_getter(schema, op.keys)
            partitions: List[List[Row]] = [[] for _ in range(parts)]
            for row in rows:
                partitions[_partition_of(key_of(row), parts)].append(row)
            out: List[Row] = []
            for partition in partitions:
                governor.check()
                if partition:
                    out.extend(_aggregate_groups(op, partition, schema, ctx))
            return out
    return _aggregate_groups(op, rows, schema, ctx)


def _run_stream_agg(op: StreamAggP, catalog: Catalog, ctx: ExecContext) -> List[Row]:
    # The input is sorted on the keys, so groups are contiguous; the hash
    # path produces identical results and the ordering keeps them grouped.
    rows = _run(op.child, catalog, ctx)
    return _aggregate_groups(op, rows, op.child.output_schema(), ctx)


def _run_distinct(op: DistinctP, catalog: Catalog, ctx: ExecContext) -> List[Row]:
    rows = _run(op.child, catalog, ctx)
    governor = ctx.governor
    seen = set()
    out = []
    for row in rows:
        if governor is not None:
            governor.tick()
        ctx.counters.rows_compared += 1
        key = _canon_key(row)
        if key not in seen:
            seen.add(key)
            out.append(row)
    ctx.counters.rows_produced += len(out)
    return out


def _run_union_all(op: UnionAllP, catalog: Catalog, ctx: ExecContext) -> List[Row]:
    rows = _run(op.left, catalog, ctx) + _run(op.right, catalog, ctx)
    ctx.counters.rows_produced += len(rows)
    return rows


def _run_apply(op: ApplyP, catalog: Catalog, ctx: ExecContext) -> List[Row]:
    left_rows = _run(op.left, catalog, ctx)
    left_schema = op.left.output_schema()
    out: List[Row] = []
    inner_stats = InterpreterStats()
    from repro.engine.interpreter import _eval_op  # reference evaluator

    for lrow in left_rows:
        if ctx.governor is not None:
            ctx.governor.check()
        ctx.counters.inner_evaluations += 1
        _schema, inner_rows = _eval_op(
            op.inner, catalog, left_schema, lrow, inner_stats
        )
        if op.kind == "semi":
            if inner_rows:
                out.append(lrow)
        elif op.kind == "anti":
            if not inner_rows:
                out.append(lrow)
        else:
            if len(inner_rows) > 1:
                raise ExecutionError("scalar subquery returned more than one row")
            value = inner_rows[0][0] if inner_rows else None
            out.append(lrow + (value,))
    ctx.counters.rows_compared += inner_stats.rows_produced
    ctx.counters.rows_produced += len(out)
    return out


def _run_exchange(op: ExchangeP, catalog: Catalog, ctx: ExecContext) -> List[Row]:
    from repro.engine.parallel import exchange_page_count

    rows = _run(op.child, catalog, ctx)
    width = _row_width(op.child.output_schema())
    ctx.counters.exchange_pages += exchange_page_count(
        len(rows), width, op.target.scheme, op.target.degree, ctx.params
    )
    return rows


def _run_limit(op: LimitP, catalog: Catalog, ctx: ExecContext) -> List[Row]:
    # The materializing engine cannot terminate its child early; it just
    # trims.  The batch engine's _stream_limit stops pulling instead.
    rows = _run(op.child, catalog, ctx)
    end = None if op.limit is None else op.offset + op.limit
    out = rows[op.offset:end]
    ctx.counters.rows_produced += len(out)
    return out


_HANDLERS = {
    CheckP: _run_check,
    CheckpointSourceP: _run_checkpoint_source,
    SeqScanP: _run_seq_scan,
    IndexScanP: _run_index_scan,
    FilterP: _run_filter,
    UdfFilterP: _run_udf_filter,
    ProjectP: _run_project,
    SortP: _run_sort,
    MaterializeP: _run_materialize,
    NLJoinP: _run_nl_join,
    INLJoinP: _run_inl_join,
    MergeJoinP: _run_merge_join,
    HashJoinP: _run_hash_join,
    StreamAggP: _run_stream_agg,
    HashAggP: _run_hash_agg,
    DistinctP: _run_distinct,
    UnionAllP: _run_union_all,
    LimitP: _run_limit,
    ApplyP: _run_apply,
    ExchangeP: _run_exchange,
    GatherP: _run_exchange,
}


# ======================================================================
# Batch-iterator engine (the default)
# ======================================================================
#
# Every handler below is a generator yielding lists of rows (batches of
# at most ``params.batch_size``).  Streaming operators transform their
# child's batches one at a time; pipeline breakers drain their input via
# ``_drain`` and record the materialized size with ``_note_resident``.
# The per-operator accounting (wall time, pages, actual rows, peaks)
# lives in one place: the ``stream_batches`` driver that wraps every
# handler.
Batch = List[Row]


def _drain(op: PhysicalOp, catalog: Catalog, ctx: ExecContext) -> List[Row]:
    """Pull a subplan to exhaustion, materializing all its rows."""
    out: List[Row] = []
    gen = stream_batches(op, catalog, ctx)
    try:
        for batch in gen:
            out.extend(batch)
    finally:
        gen.close()
    return out


def _batches_of(rows: Sequence[Row], size: int) -> Iterator[Batch]:
    for start in range(0, len(rows), size):
        yield list(rows[start:start + size])


def _note_resident(ctx: ExecContext, op: PhysicalOp, count: int) -> None:
    """Record a pipeline breaker's materialized working-set size."""
    if ctx.runtime is not None:
        node = ctx.runtime.node_for(op)
        node.peak_resident_rows = max(node.peak_resident_rows, count)


def _predicate_fn(
    expr: Optional[Expr], schema: StreamSchema, ctx: ExecContext
) -> Callable[[Row], bool]:
    """A per-row predicate closure: compiled when the context allows it,
    else the tree-walking evaluator (the compilation oracle)."""
    if ctx.compiled_expressions:
        return compile_predicate(expr, schema)
    if expr is None:
        return lambda _row: True
    return lambda row: predicate_holds(expr, row, schema)


def _scalar_fn(
    expr: Expr, schema: StreamSchema, ctx: ExecContext
) -> Callable[[Row], Any]:
    if ctx.compiled_expressions:
        return compile_scalar(expr, schema)
    return lambda row: evaluate(expr, row, schema)


def stream_batches(
    op: PhysicalOp, catalog: Catalog, ctx: ExecContext
) -> Iterator[Batch]:
    """The batch engine's driver: streams an operator's output batches.

    Wraps the operator's handler generator with the accounting the
    legacy ``_run`` wrapper performs per call, adapted to batches:
    wall time, page reads, and retries are measured around each pull
    (inclusive of the child pulls that happen inside it, like legacy
    subtree-cumulative accounting); ``actual_rows`` accumulates per
    batch; the governor sees a full check at stream start, the row
    budget against cumulative output, and a tick per batch.  Handlers
    for quadratic or blocking operators keep their own per-row ticks so
    timeouts still fire promptly inside a single long pull.
    """
    handler = _STREAM_HANDLERS.get(type(op))
    if handler is None:
        for op_type, candidate in _STREAM_HANDLERS.items():
            if isinstance(op, op_type):
                handler = candidate
                break
    if handler is None:
        raise ExecutionError(f"no streaming executor for {type(op).__name__}")
    governor = ctx.governor
    if governor is not None:
        # Operator boundary (first pull): full-fidelity budget check.
        governor.check()
    node = ctx.runtime.node_for(op) if ctx.runtime is not None else None
    if node is not None:
        node.invocations += 1
    inner = handler(op, catalog, ctx)
    produced = 0
    try:
        while True:
            if node is None:
                try:
                    batch = next(inner)
                except StopIteration:
                    return
            else:
                pages_before = ctx.counters.total_page_reads
                retries_before = ctx.counters.retries
                start = time.perf_counter()
                try:
                    batch = next(inner)
                except StopIteration:
                    node.wall_seconds += time.perf_counter() - start
                    node.pages_read += (
                        ctx.counters.total_page_reads - pages_before
                    )
                    node.retries += ctx.counters.retries - retries_before
                    return
                node.wall_seconds += time.perf_counter() - start
                node.pages_read += ctx.counters.total_page_reads - pages_before
                # Cumulative over the subtree, like pages_read; the renderer
                # subtracts children to show each operator's own retries.
                node.retries += ctx.counters.retries - retries_before
                node.actual_rows += len(batch)
                # A streaming operator's footprint is the batch in flight;
                # breakers raise this further via _note_resident.
                node.peak_resident_rows = max(
                    node.peak_resident_rows, len(batch)
                )
            produced += len(batch)
            if governor is not None:
                governor.on_rows(produced)
                governor.tick(len(batch))
            yield batch
    finally:
        inner.close()


# ----------------------------------------------------------------------
# Streaming scans
# ----------------------------------------------------------------------
def _stream_seq_scan(
    op: SeqScanP, catalog: Catalog, ctx: ExecContext
) -> Iterator[Batch]:
    table = catalog.table(op.table)
    schema = op.output_schema()
    keep = _predicate_fn(op.predicate, schema, ctx)
    batch_size = ctx.params.batch_size
    # Page reads stay up-front so the fault-injection schedule is
    # identical to the legacy engine's.
    for page_no in range(table.page_count):
        ctx.read_page(op.table, page_no, sequential=True)
    batch: Batch = []
    for _row_id, row in table.visible_rows(ctx.snapshot):
        if op.predicate is not None:
            ctx.counters.rows_compared += 1
            if not keep(row):
                continue
        batch.append(tuple(row))
        if len(batch) >= batch_size:
            ctx.counters.rows_produced += len(batch)
            yield batch
            batch = []
    if batch:
        ctx.counters.rows_produced += len(batch)
        yield batch


def _stream_index_scan(
    op: IndexScanP, catalog: Catalog, ctx: ExecContext
) -> Iterator[Batch]:
    table = catalog.table(op.table)
    index = catalog.index(op.index_name)
    schema = op.output_schema()
    keep = _predicate_fn(op.predicate, schema, ctx)
    batch_size = ctx.params.batch_size
    site = f"idx:{op.index_name}"
    for level in range(index.height):
        ctx.read_page(site, -(level + 1), sequential=False)
    if op.eq_value is not None:
        row_ids = ctx.index_lookup(lambda: index.seek_prefix(op.eq_value), site)
    elif op.low is not None or op.high is not None:
        row_ids = ctx.index_lookup(
            lambda: index.range(
                op.low,
                op.high,
                include_low=not op.low_strict,
                include_high=not op.high_strict,
            ),
            site,
        )
    else:
        row_ids = ctx.index_lookup(index.ordered_row_ids, site)
    if index.page_count:
        covered = max(
            1, round(index.page_count * len(row_ids) / max(index.entry_count, 1))
        )
        for leaf in range(covered):
            ctx.read_page(site, leaf, sequential=True)
    clustered = index.definition.clustered
    batch: Batch = []
    # Data pages are fetched per matched row as the stream is pulled, so
    # a LIMIT above this scan stops the I/O, not just the row copies.
    for row_id in row_ids:
        if not table.row_visible(row_id, ctx.snapshot):
            continue
        ctx.read_page(op.table, table.page_of(row_id), sequential=clustered)
        row = table.fetch(row_id)
        if op.predicate is not None:
            ctx.counters.rows_compared += 1
            if not keep(row):
                continue
        batch.append(tuple(row))
        if len(batch) >= batch_size:
            ctx.counters.rows_produced += len(batch)
            yield batch
            batch = []
    if batch:
        ctx.counters.rows_produced += len(batch)
        yield batch


# ----------------------------------------------------------------------
# Streaming row operators
# ----------------------------------------------------------------------
def _stream_filter(
    op: FilterP, catalog: Catalog, ctx: ExecContext
) -> Iterator[Batch]:
    schema = op.child.output_schema()
    keep = _predicate_fn(op.predicate, schema, ctx)
    child = stream_batches(op.child, catalog, ctx)
    try:
        for batch in child:
            out: Batch = []
            for row in batch:
                ctx.counters.rows_compared += 1
                if keep(row):
                    out.append(row)
            if out:
                ctx.counters.rows_produced += len(out)
                yield out
    finally:
        child.close()


def _stream_udf_filter(
    op: UdfFilterP, catalog: Catalog, ctx: ExecContext
) -> Iterator[Batch]:
    schema = op.child.output_schema()
    fn = _scalar_fn(op.udf, schema, ctx)
    per_tuple = max(1, int(op.udf.per_tuple_cost))
    child = stream_batches(op.child, catalog, ctx)
    try:
        for batch in child:
            out: Batch = []
            for row in batch:
                ctx.counters.udf_invocations += 1
                ctx.counters.rows_compared += per_tuple
                if fn(row) is True:
                    out.append(row)
            if out:
                ctx.counters.rows_produced += len(out)
                yield out
    finally:
        child.close()


def _stream_project(
    op: ProjectP, catalog: Catalog, ctx: ExecContext
) -> Iterator[Batch]:
    schema = op.child.output_schema()
    fns = [_scalar_fn(item.expr, schema, ctx) for item in op.items]
    child = stream_batches(op.child, catalog, ctx)
    try:
        for batch in child:
            out = [tuple(fn(row) for fn in fns) for row in batch]
            ctx.counters.rows_produced += len(out)
            yield out
    finally:
        child.close()


def _stream_limit(
    op: LimitP, catalog: Catalog, ctx: ExecContext
) -> Iterator[Batch]:
    to_skip = op.offset
    remaining = op.limit  # None means no quota, offset-only
    child = stream_batches(op.child, catalog, ctx)
    try:
        if remaining == 0:
            return
        for batch in child:
            if to_skip:
                if to_skip >= len(batch):
                    to_skip -= len(batch)
                    continue
                batch = batch[to_skip:]
                to_skip = 0
            if remaining is not None and len(batch) > remaining:
                batch = batch[:remaining]
            if remaining is not None:
                remaining -= len(batch)
            ctx.counters.rows_produced += len(batch)
            yield batch
            if remaining is not None and remaining <= 0:
                # Quota met: stop pulling.  Closing the child (in the
                # finally) unwinds the whole pipeline beneath it.
                return
    finally:
        child.close()


# ----------------------------------------------------------------------
# Streaming pipeline breakers
# ----------------------------------------------------------------------
def _stream_sort(
    op: SortP, catalog: Catalog, ctx: ExecContext
) -> Iterator[Batch]:
    rows = _drain(op.child, catalog, ctx)
    schema = op.child.output_schema()
    width = _row_width(schema)
    pages = pages_for_rows(len(rows), width, ctx.params)
    if pages > ctx.params.sort_memory_pages:
        ctx.counters.sort_spill_pages += int(2 * pages)
    if ctx.governor is not None:
        # Sorts always have the external-merge path, so a sort working
        # set over budget is recorded (high-water mark) but never fatal.
        ctx.governor.memory_high_water_bytes = max(
            ctx.governor.memory_high_water_bytes, int(len(rows) * width)
        )
    _note_resident(ctx, op, len(rows))
    out = sort_rows(rows, schema, op.sort_order)
    ctx.counters.rows_compared += int(len(rows) * max(1, len(rows)).bit_length())
    ctx.counters.rows_produced += len(out)
    for batch in _batches_of(out, ctx.params.batch_size):
        yield batch


def _stream_check(
    op: CheckP, catalog: Catalog, ctx: ExecContext
) -> Iterator[Batch]:
    rows = _drain(op.child, catalog, ctx)
    state = ctx.adaptive
    if state is not None:
        # Checkpoint on pass *and* fire: any completed intermediate is
        # reusable by a later remainder plan, not just the one that fired.
        state.store_checkpoint(
            plan_signature(op.child),
            op.child.output_schema(),
            rows,
            op.context_label or "check",
        )
        if state.note_check(op, len(rows)):
            if ctx.runtime is not None:
                # The raise unwinds past the driver's per-batch accounting
                # (the invocation itself was already counted at first
                # pull); record the observation here so EXPLAIN ANALYZE
                # shows the fired CHECK.
                node = ctx.runtime.node_for(op)
                node.actual_rows += len(rows)
                node.check_fired = True
            raise ReoptimizeSignal(op, len(rows))
    _note_resident(ctx, op, len(rows))
    for batch in _batches_of(rows, ctx.params.batch_size):
        yield batch


def _stream_checkpoint_source(
    op: CheckpointSourceP, catalog: Catalog, ctx: ExecContext
) -> Iterator[Batch]:
    if ctx.runtime is not None:
        ctx.runtime.node_for(op).from_checkpoint = True
    size = ctx.params.batch_size
    # Batches slice the stored checkpoint directly -- no whole-result
    # copy, and the replayed row objects keep their identity.
    for start in range(0, len(op.rows), size):
        batch = list(op.rows[start:start + size])
        ctx.counters.rows_produced += len(batch)
        yield batch


def _stream_materialize(
    op: MaterializeP, catalog: Catalog, ctx: ExecContext
) -> Iterator[Batch]:
    rows = _drain(op.child, catalog, ctx)
    pages = pages_for_rows(
        len(rows), _row_width(op.child.output_schema()), ctx.params
    )
    if pages > ctx.params.sort_memory_pages:
        ctx.counters.sort_spill_pages += int(2 * pages)
    _note_resident(ctx, op, len(rows))
    for batch in _batches_of(rows, ctx.params.batch_size):
        yield batch


# ----------------------------------------------------------------------
# Streaming joins
# ----------------------------------------------------------------------
_SUPPORTED_JOIN_KINDS = (
    JoinKind.INNER,
    JoinKind.CROSS,
    JoinKind.LEFT_OUTER,
    JoinKind.SEMI,
    JoinKind.ANTI,
)


def _stream_nl_join(
    op: NLJoinP, catalog: Catalog, ctx: ExecContext
) -> Iterator[Batch]:
    if op.kind not in _SUPPORTED_JOIN_KINDS:
        raise ExecutionError(f"nested loop join cannot run kind {op.kind}")
    # The inner (right) side is materialized for rescanning; the outer
    # streams through it batch by batch.
    right_rows = _drain(op.right, catalog, ctx)
    left_schema = op.left.output_schema()
    right_schema = op.right.output_schema()
    combined = left_schema.concat(right_schema)
    keep = _predicate_fn(op.predicate, combined, ctx)
    governor = ctx.governor
    pad = (None,) * right_schema.arity
    batch_size = ctx.params.batch_size
    _note_resident(ctx, op, len(right_rows))

    def matches(lrow: Row, rrow: Row) -> bool:
        # Per-pair tick: a quadratic loop must observe timeouts promptly
        # even when a single outer batch implies millions of pairs.
        if governor is not None:
            governor.tick()
        ctx.counters.rows_compared += 1
        if op.predicate is None:
            return True
        return keep(lrow + rrow)

    out: Batch = []
    child = stream_batches(op.left, catalog, ctx)
    try:
        for lbatch in child:
            for lrow in lbatch:
                if op.kind in (JoinKind.INNER, JoinKind.CROSS):
                    for rrow in right_rows:
                        if matches(lrow, rrow):
                            out.append(lrow + rrow)
                elif op.kind is JoinKind.LEFT_OUTER:
                    matched = False
                    for rrow in right_rows:
                        if matches(lrow, rrow):
                            matched = True
                            out.append(lrow + rrow)
                    if not matched:
                        out.append(lrow + pad)
                elif op.kind is JoinKind.SEMI:
                    if any(matches(lrow, rrow) for rrow in right_rows):
                        out.append(lrow)
                elif op.kind is JoinKind.ANTI:
                    if not any(matches(lrow, rrow) for rrow in right_rows):
                        out.append(lrow)
                if len(out) >= batch_size:
                    ctx.counters.rows_produced += len(out)
                    yield out
                    out = []
        if out:
            ctx.counters.rows_produced += len(out)
            yield out
    finally:
        child.close()


def _stream_inl_join(
    op: INLJoinP, catalog: Catalog, ctx: ExecContext
) -> Iterator[Batch]:
    if op.kind not in _SUPPORTED_JOIN_KINDS:
        raise ExecutionError(f"index NL join cannot run kind {op.kind}")
    outer_schema = op.outer.output_schema()
    table = catalog.table(op.table)
    ordered = {index.definition.name: index for index in catalog.indexes_on(op.table)}
    hashed = {
        index.definition.name: index for index in catalog.hash_indexes_on(op.table)
    }
    index = ordered.get(op.index_name) or hashed.get(op.index_name)
    if index is None:
        raise ExecutionError(f"unknown index {op.index_name!r} on {op.table!r}")
    inner_schema = StreamSchema.for_table(op.alias, op.columns, types=op.column_types)
    combined = outer_schema.concat(inner_schema)
    height = getattr(index, "height", 1)
    site = f"idx:{op.index_name}"
    governor = ctx.governor
    key_fns = [_scalar_fn(expr, outer_schema, ctx) for expr in op.outer_keys]
    residual = (
        _predicate_fn(op.residual, combined, ctx)
        if op.residual is not None
        else None
    )
    batch_size = ctx.params.batch_size
    out: Batch = []
    child = stream_batches(op.outer, catalog, ctx)
    try:
        for obatch in child:
            for orow in obatch:
                if governor is not None:
                    governor.tick()
                key = tuple(fn(orow) for fn in key_fns)
                if any(part is None for part in key):
                    matched_ids: List[int] = []
                else:
                    for level in range(height):
                        ctx.read_page(site, -(level + 1), sequential=False)
                    if hasattr(index, "seek_prefix"):
                        matched_ids = ctx.index_lookup(
                            lambda: index.seek_prefix(key), site
                        )
                    else:
                        matched_ids = ctx.index_lookup(lambda: index.seek(key), site)
                matched_rows: List[Row] = []
                for row_id in matched_ids:
                    if not table.row_visible(row_id, ctx.snapshot):
                        continue
                    ctx.read_page(op.table, table.page_of(row_id), sequential=False)
                    irow = table.fetch(row_id)
                    if residual is not None:
                        ctx.counters.rows_compared += 1
                        if not residual(orow + irow):
                            continue
                    matched_rows.append(tuple(irow))
                if op.kind in (JoinKind.INNER, JoinKind.CROSS):
                    out.extend(orow + irow for irow in matched_rows)
                elif op.kind is JoinKind.LEFT_OUTER:
                    if matched_rows:
                        out.extend(orow + irow for irow in matched_rows)
                    else:
                        out.append(orow + (None,) * inner_schema.arity)
                elif op.kind is JoinKind.SEMI:
                    if matched_rows:
                        out.append(orow)
                elif op.kind is JoinKind.ANTI:
                    if not matched_rows:
                        out.append(orow)
                if len(out) >= batch_size:
                    ctx.counters.rows_produced += len(out)
                    yield out
                    out = []
        if out:
            ctx.counters.rows_produced += len(out)
            yield out
    finally:
        child.close()


def _stream_merge_join(
    op: MergeJoinP, catalog: Catalog, ctx: ExecContext
) -> Iterator[Batch]:
    left_rows = _drain(op.left, catalog, ctx)
    right_rows = _drain(op.right, catalog, ctx)
    left_schema = op.left.output_schema()
    right_schema = op.right.output_schema()
    combined = left_schema.concat(right_schema)
    left_key = _key_getter(left_schema, op.left_keys)
    right_key = _key_getter(right_schema, op.right_keys)
    residual = (
        _predicate_fn(op.residual, combined, ctx)
        if op.residual is not None
        else None
    )
    governor = ctx.governor
    _note_resident(ctx, op, len(left_rows) + len(right_rows))
    out: Batch = []
    pad = (None,) * right_schema.arity
    i = j = 0
    n, m = len(left_rows), len(right_rows)
    while i < n:
        if governor is not None:
            governor.tick()
        lkey = left_key(left_rows[i])
        if any(part is None for part in lkey):
            # NULL join keys never match.
            if op.kind is JoinKind.LEFT_OUTER:
                out.append(left_rows[i] + pad)
            elif op.kind is JoinKind.ANTI:
                out.append(left_rows[i])
            i += 1
            continue
        while j < m:
            rkey = right_key(right_rows[j])
            ctx.counters.rows_compared += 1
            if any(part is None for part in rkey) or rkey < lkey:
                j += 1
            else:
                break
        group_start = j
        k = j
        while k < m and right_key(right_rows[k]) == lkey:
            k += 1
        group = right_rows[group_start:k]
        while i < n and left_key(left_rows[i]) == lkey:
            lrow = left_rows[i]
            matched = []
            for rrow in group:
                if residual is not None:
                    ctx.counters.rows_compared += 1
                    if not residual(lrow + rrow):
                        continue
                matched.append(rrow)
            if op.kind in (JoinKind.INNER, JoinKind.CROSS):
                out.extend(lrow + rrow for rrow in matched)
            elif op.kind is JoinKind.LEFT_OUTER:
                if matched:
                    out.extend(lrow + rrow for rrow in matched)
                else:
                    out.append(lrow + pad)
            elif op.kind is JoinKind.SEMI:
                if matched:
                    out.append(lrow)
            elif op.kind is JoinKind.ANTI:
                if not matched:
                    out.append(lrow)
            else:
                raise ExecutionError(f"merge join cannot run kind {op.kind}")
            i += 1
    ctx.counters.rows_produced += len(out)
    for batch in _batches_of(out, ctx.params.batch_size):
        yield batch


def _stream_hash_join(
    op: HashJoinP, catalog: Catalog, ctx: ExecContext
) -> Iterator[Batch]:
    if op.kind not in _SUPPORTED_JOIN_KINDS:
        raise ExecutionError(f"hash join cannot run kind {op.kind}")
    # The build (right) side is a pipeline breaker; the probe streams.
    right_rows = _drain(op.right, catalog, ctx)
    left_schema = op.left.output_schema()
    right_schema = op.right.output_schema()
    combined = left_schema.concat(right_schema)
    left_key = _key_getter(left_schema, op.left_keys)
    right_key = _key_getter(right_schema, op.right_keys)
    residual = (
        _predicate_fn(op.residual, combined, ctx)
        if op.residual is not None
        else None
    )
    governor = ctx.governor
    pad = (None,) * right_schema.arity
    batch_size = ctx.params.batch_size
    build_width = _row_width(right_schema)
    build_bytes = int(len(right_rows) * build_width)
    build_pages = pages_for_rows(len(right_rows), build_width, ctx.params)
    _note_resident(ctx, op, len(right_rows))

    def probe_one(
        build: Dict[Tuple[Any, ...], List[Row]], lrow: Row, out: Batch
    ) -> None:
        key = left_key(lrow)
        ctx.counters.rows_compared += 1
        candidates = (
            build.get(key, []) if not any(part is None for part in key) else []
        )
        matched = []
        for rrow in candidates:
            if residual is not None:
                ctx.counters.rows_compared += 1
                if not residual(lrow + rrow):
                    continue
            matched.append(rrow)
        if op.kind in (JoinKind.INNER, JoinKind.CROSS):
            out.extend(lrow + rrow for rrow in matched)
        elif op.kind is JoinKind.LEFT_OUTER:
            if matched:
                out.extend(lrow + rrow for rrow in matched)
            else:
                out.append(lrow + pad)
        elif op.kind is JoinKind.SEMI:
            if matched:
                out.append(lrow)
        elif op.kind is JoinKind.ANTI:
            if not matched:
                out.append(lrow)

    def make_table(build_rows: List[Row]) -> Dict[Tuple[Any, ...], List[Row]]:
        build: Dict[Tuple[Any, ...], List[Row]] = {}
        for rrow in build_rows:
            key = right_key(rrow)
            ctx.counters.rows_compared += 1
            if any(part is None for part in key):
                continue
            build.setdefault(key, []).append(rrow)
        return build

    degraded = False
    if governor is not None:
        try:
            governor.reserve_memory(build_bytes, "HashJoin build")
        except MemoryBudgetExceeded:
            degraded = True

    if not degraded:
        build = make_table(right_rows)
        probe_seen = 0
        out: Batch = []
        child = stream_batches(op.left, catalog, ctx)
        try:
            for lbatch in child:
                probe_seen += len(lbatch)
                for lrow in lbatch:
                    if governor is not None:
                        governor.tick()
                    probe_one(build, lrow, out)
                    if len(out) >= batch_size:
                        ctx.counters.rows_produced += len(out)
                        yield out
                        out = []
        finally:
            child.close()
        # Spill accounting needs the probe cardinality, so it lands when
        # the probe is exhausted; an abandoned (early-closed) probe never
        # ran the spill, so charging nothing then is the honest account.
        if build_pages > ctx.params.hash_memory_pages:
            probe_pages = pages_for_rows(
                probe_seen, _row_width(left_schema), ctx.params
            )
            ctx.counters.sort_spill_pages += int(2 * (build_pages + probe_pages))
        if out:
            ctx.counters.rows_produced += len(out)
            yield out
        return

    # Graceful degradation: Grace-style partitioning.  Both inputs are
    # hashed on their join keys into the same partition space, so rows
    # that could match always land in the same partition and every join
    # kind (including LEFT_OUTER/ANTI, whose unmatched probe rows stay
    # with their partition) is preserved.  The probe side must be fully
    # drained to partition it, making the whole operator a breaker here.
    left_rows = _drain(op.left, catalog, ctx)
    _note_resident(ctx, op, len(right_rows) + len(left_rows))
    probe_pages = pages_for_rows(len(left_rows), _row_width(left_schema), ctx.params)
    if build_pages > ctx.params.hash_memory_pages:
        ctx.counters.sort_spill_pages += int(2 * (build_pages + probe_pages))
    parts = _spill_partitions(build_bytes, governor.budget.memory_limit_bytes)
    ctx.counters.degraded_operators += 1
    if ctx.runtime is not None:
        ctx.runtime.node_for(op).degraded = True
    ctx.counters.sort_spill_pages += int(2 * (build_pages + probe_pages))
    build_parts: List[List[Row]] = [[] for _ in range(parts)]
    for rrow in right_rows:
        build_parts[_partition_of(right_key(rrow), parts)].append(rrow)
    probe_parts: List[List[Row]] = [[] for _ in range(parts)]
    for lrow in left_rows:
        probe_parts[_partition_of(left_key(lrow), parts)].append(lrow)
    out = []
    for build_part, probe_part in zip(build_parts, probe_parts):
        governor.check()
        build = make_table(build_part)
        for lrow in probe_part:
            if governor is not None:
                governor.tick()
            probe_one(build, lrow, out)
    ctx.counters.rows_produced += len(out)
    for batch in _batches_of(out, batch_size):
        yield batch


# ----------------------------------------------------------------------
# Streaming aggregation, distinct, union, apply, exchange
# ----------------------------------------------------------------------
def _aggregate_rows(
    op: HashAggP, rows: List[Row], schema: StreamSchema, ctx: ExecContext
) -> List[Row]:
    """Batch-engine twin of ``_aggregate_groups`` with compiled arguments."""
    key_of = _key_getter(schema, op.keys) if op.keys else (lambda _row: ())
    arg_fns = [
        None if call.is_star else _scalar_fn(call.arg, schema, ctx)
        for call in op.aggregates
    ]
    governor = ctx.governor
    groups: Dict[Tuple[Any, ...], list] = {}
    order: List[Tuple[Any, ...]] = []
    for row in rows:
        if governor is not None:
            governor.tick()
        key = key_of(row)
        ctx.counters.rows_compared += 1
        if key not in groups:
            groups[key] = [call.new_accumulator() for call in op.aggregates]
            order.append(key)
        for fn, accumulator in zip(arg_fns, groups[key]):
            if fn is None:
                accumulator.add(1)
            else:
                accumulator.add_value(fn(row))
    if not groups and not op.keys:
        groups[()] = [call.new_accumulator() for call in op.aggregates]
        order.append(())
    out = [key + tuple(acc.result() for acc in groups[key]) for key in order]
    ctx.counters.rows_produced += len(out)
    return out


def _stream_hash_agg(
    op: HashAggP, catalog: Catalog, ctx: ExecContext
) -> Iterator[Batch]:
    rows = _drain(op.child, catalog, ctx)
    schema = op.child.output_schema()
    governor = ctx.governor
    _note_resident(ctx, op, len(rows))
    if governor is not None and op.keys:
        # Same degradation contract as the legacy engine: reserve the
        # worst-case table, partition-wise aggregate if it does not fit.
        width = _row_width(schema)
        table_bytes = int(len(rows) * width)
        try:
            governor.reserve_memory(table_bytes, "HashAgg table")
        except MemoryBudgetExceeded:
            parts = _spill_partitions(table_bytes, governor.budget.memory_limit_bytes)
            ctx.counters.degraded_operators += 1
            if ctx.runtime is not None:
                ctx.runtime.node_for(op).degraded = True
            ctx.counters.sort_spill_pages += int(
                2 * pages_for_rows(len(rows), width, ctx.params)
            )
            key_of = _key_getter(schema, op.keys)
            partitions: List[List[Row]] = [[] for _ in range(parts)]
            for row in rows:
                partitions[_partition_of(key_of(row), parts)].append(row)
            out: List[Row] = []
            for partition in partitions:
                governor.check()
                if partition:
                    out.extend(_aggregate_rows(op, partition, schema, ctx))
            for batch in _batches_of(out, ctx.params.batch_size):
                yield batch
            return
    out = _aggregate_rows(op, rows, schema, ctx)
    for batch in _batches_of(out, ctx.params.batch_size):
        yield batch


def _stream_stream_agg(
    op: StreamAggP, catalog: Catalog, ctx: ExecContext
) -> Iterator[Batch]:
    # The input is sorted on the keys, so groups are contiguous; the hash
    # path produces identical results and the ordering keeps them grouped.
    rows = _drain(op.child, catalog, ctx)
    _note_resident(ctx, op, len(rows))
    out = _aggregate_rows(op, rows, op.child.output_schema(), ctx)
    for batch in _batches_of(out, ctx.params.batch_size):
        yield batch


def _stream_distinct(
    op: DistinctP, catalog: Catalog, ctx: ExecContext
) -> Iterator[Batch]:
    governor = ctx.governor
    seen = set()
    out: List[Row] = []
    child = stream_batches(op.child, catalog, ctx)
    try:
        for batch in child:
            for row in batch:
                if governor is not None:
                    governor.tick()
                ctx.counters.rows_compared += 1
                key = _canon_key(row)
                if key not in seen:
                    out.append(row)
                    seen.add(key)
    finally:
        child.close()
    _note_resident(ctx, op, len(out))
    ctx.counters.rows_produced += len(out)
    for batch in _batches_of(out, ctx.params.batch_size):
        yield batch


def _stream_union_all(
    op: UnionAllP, catalog: Catalog, ctx: ExecContext
) -> Iterator[Batch]:
    # Child batches pass straight through -- no concatenation copy (the
    # legacy engine's ``left + right`` builds a third list).
    for side in (op.left, op.right):
        child = stream_batches(side, catalog, ctx)
        try:
            for batch in child:
                ctx.counters.rows_produced += len(batch)
                yield batch
        finally:
            child.close()


def _stream_apply(
    op: ApplyP, catalog: Catalog, ctx: ExecContext
) -> Iterator[Batch]:
    left_schema = op.left.output_schema()
    inner_stats = InterpreterStats()
    from repro.engine.interpreter import _eval_op  # reference evaluator

    batch_size = ctx.params.batch_size
    out: Batch = []
    noted = 0
    child = stream_batches(op.left, catalog, ctx)
    try:
        for lbatch in child:
            for lrow in lbatch:
                if ctx.governor is not None:
                    ctx.governor.check()
                ctx.counters.inner_evaluations += 1
                _schema, inner_rows = _eval_op(
                    op.inner, catalog, left_schema, lrow, inner_stats
                )
                if op.kind == "semi":
                    if inner_rows:
                        out.append(lrow)
                elif op.kind == "anti":
                    if not inner_rows:
                        out.append(lrow)
                else:
                    if len(inner_rows) > 1:
                        raise ExecutionError(
                            "scalar subquery returned more than one row"
                        )
                    value = inner_rows[0][0] if inner_rows else None
                    out.append(lrow + (value,))
                if len(out) >= batch_size:
                    ctx.counters.rows_compared += inner_stats.rows_produced - noted
                    noted = inner_stats.rows_produced
                    ctx.counters.rows_produced += len(out)
                    yield out
                    out = []
        ctx.counters.rows_compared += inner_stats.rows_produced - noted
        if out:
            ctx.counters.rows_produced += len(out)
            yield out
    finally:
        child.close()


def _stream_exchange(
    op: ExchangeP, catalog: Catalog, ctx: ExecContext
) -> Iterator[Batch]:
    from repro.engine.parallel import exchange_page_count, gather_iterator

    if isinstance(op, GatherP) and ctx.parallel_mode and op.dop > 1:
        # The real thing: fan the region below this gather out across a
        # worker pool and merge deterministically.  Falls through to the
        # serial pass-through when the region shape is unsupported or
        # admission degraded it to one worker.
        region = gather_iterator(
            op, catalog, ctx, lambda ex: (_drain(ex.child, catalog, ctx), None)
        )
        if region is not None:
            yield from region
            return
    width = _row_width(op.child.output_schema())
    total = 0
    child = stream_batches(op.child, catalog, ctx)
    try:
        for batch in child:
            total += len(batch)
            yield batch
    finally:
        child.close()
        # Charged in the finally so an early-closed consumer (LIMIT) still
        # pays communication for every batch that actually crossed.  The
        # scheme-aware page count is shared with the parallel runtime, so
        # this simulated account and the real exchange's measured pages
        # agree on the same plan.
        ctx.counters.exchange_pages += exchange_page_count(
            total, width, op.target.scheme, op.target.degree, ctx.params
        )


_STREAM_HANDLERS = {
    CheckP: _stream_check,
    CheckpointSourceP: _stream_checkpoint_source,
    SeqScanP: _stream_seq_scan,
    IndexScanP: _stream_index_scan,
    FilterP: _stream_filter,
    UdfFilterP: _stream_udf_filter,
    ProjectP: _stream_project,
    SortP: _stream_sort,
    MaterializeP: _stream_materialize,
    NLJoinP: _stream_nl_join,
    INLJoinP: _stream_inl_join,
    MergeJoinP: _stream_merge_join,
    HashJoinP: _stream_hash_join,
    StreamAggP: _stream_stream_agg,
    HashAggP: _stream_hash_agg,
    DistinctP: _stream_distinct,
    UnionAllP: _stream_union_all,
    LimitP: _stream_limit,
    ApplyP: _stream_apply,
    ExchangeP: _stream_exchange,
    GatherP: _stream_exchange,
}


# The DML module registers InsertP/UpdateP/DeleteP handlers into both
# dispatch tables above when it finishes importing; importing it here
# (after the tables exist) keeps direct ``execute()`` callers working
# without a separate registration step.
from repro.engine import dml as _dml  # noqa: E402,F401
