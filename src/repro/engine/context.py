"""Execution context: simulated buffer pool and work counters.

The paper's cost discussion (Section 5.2, [40]) stresses that buffer
utilization -- hit ratios that depend on access locality -- is key to
accurate costing.  The executor therefore routes every page access
through a small LRU buffer-pool simulation, so measured I/O shows the
same locality effects the cost model predicts (e.g. a warm inner table
making index nested-loop joins cheap).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple, TYPE_CHECKING

from repro.cost.parameters import DEFAULT_PARAMETERS, CostParameters

if TYPE_CHECKING:
    from repro.engine.runtime_stats import RuntimeStats

PageId = Tuple[str, int]


class BufferPool:
    """A fixed-capacity LRU cache of (table, page) identifiers."""

    def __init__(self, capacity_pages: int) -> None:
        self.capacity = max(1, capacity_pages)
        self._pages: "OrderedDict[PageId, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, page: PageId) -> bool:
        """Touch a page; returns True on a buffer hit (no I/O)."""
        if page in self._pages:
            self._pages.move_to_end(page)
            self.hits += 1
            return True
        self.misses += 1
        self._pages[page] = None
        if len(self._pages) > self.capacity:
            self._pages.popitem(last=False)
        return False

    @property
    def hit_ratio(self) -> float:
        """Fraction of accesses served from the pool."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Empty the pool and reset counters."""
        self._pages.clear()
        self.hits = 0
        self.misses = 0


@dataclass
class ExecCounters:
    """Observed work during one execution."""

    seq_page_reads: int = 0
    random_page_reads: int = 0
    rows_produced: int = 0
    rows_compared: int = 0
    sort_spill_pages: int = 0
    udf_invocations: int = 0
    exchange_pages: int = 0
    inner_evaluations: int = 0

    @property
    def total_page_reads(self) -> int:
        """All physical page reads (buffer misses)."""
        return self.seq_page_reads + self.random_page_reads

    def observed_cost(self, params: CostParameters) -> float:
        """Collapse the counters into the cost model's metric.

        Lets benchmarks compare *measured* cost against the optimizer's
        estimates in the same units.
        """
        return (
            self.seq_page_reads * params.seq_page_cost
            + self.random_page_reads * params.random_page_cost
            + self.rows_produced * params.cpu_tuple_cost
            + self.rows_compared * params.cpu_operator_cost
            + self.sort_spill_pages * params.seq_page_cost
            + self.exchange_pages * params.comm_cost_per_page
        )


class ExecContext:
    """Everything an execution needs: parameters, buffer pool, counters.

    Attributes:
        runtime: per-operator runtime statistics for the execution in
            progress (replaced with a fresh tree by every ``execute``
            call, so repeated runs of a cached plan never accumulate).
        parameters: positional prepared-statement parameter values, or
            None when the plan contains no ``?`` markers.
    """

    def __init__(self, params: Optional[CostParameters] = None) -> None:
        self.params = params or DEFAULT_PARAMETERS
        self.buffer_pool = BufferPool(self.params.buffer_pool_pages)
        self.counters = ExecCounters()
        self.runtime: Optional["RuntimeStats"] = None
        self.parameters: Optional[Tuple[Any, ...]] = None

    def read_page(self, table: str, page_no: int, sequential: bool) -> None:
        """Record one page access through the buffer pool."""
        hit = self.buffer_pool.access((table, page_no))
        if hit:
            return
        if sequential:
            self.counters.seq_page_reads += 1
        else:
            self.counters.random_page_reads += 1

    def reset(self) -> None:
        """Clear the buffer pool and counters for a fresh measurement."""
        self.buffer_pool.clear()
        self.counters = ExecCounters()
        self.runtime = None


@dataclass
class QueryMetrics:
    """Per-session counters: the observability registry (one per Database).

    Splitting optimizer time from execution time measures the lever the
    plan cache pulls: for repeated parameterized queries the optimizer
    share is pure overhead after the first call.
    """

    queries_run: int = 0
    statements_prepared: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    plan_cache_invalidations: int = 0
    pages_read: int = 0
    rows_returned: int = 0
    optimize_seconds: float = 0.0
    execute_seconds: float = 0.0

    def record_execution(self, context: "ExecContext", rows: int) -> None:
        """Fold one execution's observed work into the session totals."""
        self.queries_run += 1
        self.rows_returned += rows
        self.pages_read += context.counters.total_page_reads

    def format(self) -> str:
        """Readable multi-line rendering (the shell's ``\\metrics``)."""
        total = self.plan_cache_hits + self.plan_cache_misses
        hit_ratio = self.plan_cache_hits / total if total else 0.0
        return "\n".join(
            [
                f"queries run:              {self.queries_run}",
                f"statements prepared:      {self.statements_prepared}",
                f"plan cache hits:          {self.plan_cache_hits}",
                f"plan cache misses:        {self.plan_cache_misses}",
                f"plan cache invalidations: {self.plan_cache_invalidations}",
                f"plan cache hit ratio:     {hit_ratio:.0%}",
                f"pages read:               {self.pages_read}",
                f"rows returned:            {self.rows_returned}",
                f"optimizer time:           {self.optimize_seconds * 1000.0:.3f}ms",
                f"execution time:           {self.execute_seconds * 1000.0:.3f}ms",
            ]
        )
