"""Execution context: simulated buffer pool and work counters.

The paper's cost discussion (Section 5.2, [40]) stresses that buffer
utilization -- hit ratios that depend on access locality -- is key to
accurate costing.  The executor therefore routes every page access
through a small LRU buffer-pool simulation, so measured I/O shows the
same locality effects the cost model predicts (e.g. a warm inner table
making index nested-loop joins cheap).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple, TYPE_CHECKING, TypeVar

from repro.cost.parameters import DEFAULT_PARAMETERS, CostParameters
from repro.errors import CircuitBreakerOpen
from repro.engine.governor import (
    CancellationToken,
    QueryBudget,
    ResourceGovernor,
    RetryPolicy,
    call_with_retries,
)

if TYPE_CHECKING:
    from repro.engine.adaptive import AdaptiveState
    from repro.engine.admission import AdmissionController
    from repro.engine.runtime_stats import RuntimeStats
    from repro.stats.feedback import CardinalityFeedback, FeedbackSummary
    from repro.storage.faults import FaultInjector

_T = TypeVar("_T")

PageId = Tuple[str, int]


class BufferPool:
    """A fixed-capacity LRU cache of (table, page) identifiers."""

    def __init__(self, capacity_pages: int) -> None:
        self.capacity = max(1, capacity_pages)
        self._pages: "OrderedDict[PageId, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, page: PageId) -> bool:
        """Touch a page; returns True on a buffer hit (no I/O)."""
        if page in self._pages:
            self._pages.move_to_end(page)
            self.hits += 1
            return True
        self.misses += 1
        self._pages[page] = None
        if len(self._pages) > self.capacity:
            self._pages.popitem(last=False)
        return False

    @property
    def hit_ratio(self) -> float:
        """Fraction of accesses served from the pool."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Empty the pool and reset counters."""
        self._pages.clear()
        self.hits = 0
        self.misses = 0


@dataclass
class ExecCounters:
    """Observed work during one execution."""

    seq_page_reads: int = 0
    random_page_reads: int = 0
    rows_produced: int = 0
    rows_compared: int = 0
    sort_spill_pages: int = 0
    udf_invocations: int = 0
    exchange_pages: int = 0
    inner_evaluations: int = 0
    # Fault-tolerance accounting: transient-fault retries performed, the
    # (deterministic) backoff the retry schedule accrued, and how many
    # operators degraded to a spill fallback under the memory budget.
    retries: int = 0
    retry_backoff_seconds: float = 0.0
    degraded_operators: int = 0
    # Storage accesses suppressed fail-fast by an open circuit breaker.
    breaker_fast_fails: int = 0
    # DML accounting: rows written (inserted + deleted + updated), heap
    # pages dirtied, and WAL records buffered by the statement.
    rows_written: int = 0
    pages_written: int = 0
    wal_appends: int = 0

    @property
    def total_page_reads(self) -> int:
        """All physical page reads (buffer misses)."""
        return self.seq_page_reads + self.random_page_reads

    def merge_from(self, other: "ExecCounters") -> None:
        """Fold another counter shard into this one (field-wise add).

        The parallel runtime gives every worker its own shard and merges
        them here in partition-index order at gather time, so totals are
        identical run to run regardless of worker interleaving.
        """
        self.seq_page_reads += other.seq_page_reads
        self.random_page_reads += other.random_page_reads
        self.rows_produced += other.rows_produced
        self.rows_compared += other.rows_compared
        self.sort_spill_pages += other.sort_spill_pages
        self.udf_invocations += other.udf_invocations
        self.exchange_pages += other.exchange_pages
        self.inner_evaluations += other.inner_evaluations
        self.retries += other.retries
        self.retry_backoff_seconds += other.retry_backoff_seconds
        self.degraded_operators += other.degraded_operators
        self.breaker_fast_fails += other.breaker_fast_fails
        self.rows_written += other.rows_written
        self.pages_written += other.pages_written
        self.wal_appends += other.wal_appends

    def observed_cost(self, params: CostParameters) -> float:
        """Collapse the counters into the cost model's metric.

        Lets benchmarks compare *measured* cost against the optimizer's
        estimates in the same units.
        """
        return (
            self.seq_page_reads * params.seq_page_cost
            + self.random_page_reads * params.random_page_cost
            + self.rows_produced * params.cpu_tuple_cost
            + self.rows_compared * params.cpu_operator_cost
            + self.sort_spill_pages * params.seq_page_cost
            + self.exchange_pages * params.comm_cost_per_page
        )


class ExecContext:
    """Everything an execution needs: parameters, buffer pool, counters.

    Attributes:
        runtime: per-operator runtime statistics for the execution in
            progress (replaced with a fresh tree by every ``execute``
            call, so repeated runs of a cached plan never accumulate).
        parameters: positional prepared-statement parameter values, or
            None when the plan contains no ``?`` markers.
        budget: per-query resource limits enforced by the governor, or
            None for unlimited execution.
        cancel_token: cooperative cancellation latch, or None.
        fault_injector: seeded chaos source consulted on every page read
            and index lookup, or None for fault-free execution.
        retry_policy: bounded-backoff policy for retryable faults.
        governor: the enforcement object ``execute`` builds from
            ``budget`` and ``cancel_token`` for each run.
        feedback: session cardinality-feedback store; when present,
            ``execute`` harvests observed selectivities from the
            finished run's per-operator actuals into it.
        feedback_summary: what the harvest of the most recent execution
            recorded (operators seen, observations, worst misestimate).
        batch_mode: run the pull-based batch-iterator executor (the
            default); False selects the legacy materialize-everything
            path, kept as a differential oracle.
        compiled_expressions: evaluate predicates/scalars through
            closures compiled once per operator; False falls back to
            the tree-walking evaluator (the semantic oracle).
        columnar_mode: on top of batch_mode, move numpy column arrays
            (with explicit NULL validity masks) between operators and
            evaluate expressions as whole-batch vector kernels; False
            (the default) keeps the row-batch path, which doubles as
            the columnar engine's differential oracle.
    """

    def __init__(self, params: Optional[CostParameters] = None) -> None:
        self.params = params or DEFAULT_PARAMETERS
        self.buffer_pool = BufferPool(self.params.buffer_pool_pages)
        self.counters = ExecCounters()
        self.runtime: Optional["RuntimeStats"] = None
        self.parameters: Optional[Tuple[Any, ...]] = None
        self.budget: Optional[QueryBudget] = None
        self.cancel_token: Optional[CancellationToken] = None
        self.fault_injector: Optional["FaultInjector"] = None
        self.retry_policy = RetryPolicy()
        self.governor: Optional[ResourceGovernor] = None
        self.feedback: Optional["CardinalityFeedback"] = None
        self.feedback_summary: Optional["FeedbackSummary"] = None
        # Progressive-optimization state (validity-range CHECKs, replans,
        # checkpointed intermediates); None runs the plan statically.
        self.adaptive: Optional["AdaptiveState"] = None
        self.batch_mode: bool = True
        self.compiled_expressions: bool = True
        self.columnar_mode: bool = False
        # Intra-query parallelism: when True, Gather operators placed by
        # the optimizer fan their region out across a worker-thread pool
        # (repro.engine.parallel); False executes the same plan serially
        # with exchanges as accounting pass-throughs -- the differential
        # oracle, same pattern as batch_mode/columnar_mode.  max_dop
        # caps the degree any single region may use.
        self.parallel_mode: bool = False
        self.max_dop: int = 4
        # Server-wide admission control: when present, storage accesses
        # run behind its circuit breaker and retries draw from its
        # global token bucket; queue_wait_seconds records how long this
        # query sat in the admission queue before executing.
        self.admission: Optional["AdmissionController"] = None
        self.queue_wait_seconds: float = 0.0
        # MVCC: the snapshot every scan reads through (None = read
        # latest committed, the legacy direct-execute behaviour) and the
        # transaction DML statements write under.
        self.snapshot: Optional[Any] = None
        self.txn: Optional[Any] = None

    def begin_execution(self) -> None:
        """Arm the governor for one run (called by ``execute``)."""
        if self.budget is not None or self.cancel_token is not None:
            self.governor = ResourceGovernor(self.budget, self.cancel_token)
            self.governor.start()
        else:
            self.governor = None

    def _on_retry(self, _retry_number: int, delay: float, _error) -> None:
        self.counters.retries += 1
        self.counters.retry_backoff_seconds += delay

    def _with_retries(self, fn: Callable[[], _T], site: str = "") -> _T:
        """Run one storage access through the circuit breaker (when an
        admission controller is attached), bounded retries gated by the
        global retry token bucket, and backoff clamped to the query's
        remaining deadline."""
        injector = self.fault_injector
        admission = self.admission
        governor = self.governor
        run: Callable[[], _T] = fn
        retry_gate = None
        if admission is not None:
            guarded = admission.guard_storage(fn, site=site)

            def run_guarded() -> _T:
                try:
                    return guarded()
                except CircuitBreakerOpen:
                    self.counters.breaker_fast_fails += 1
                    raise

            run = run_guarded
            retry_gate = admission.try_retry_token
        return call_with_retries(
            run,
            self.retry_policy,
            jitter_source=injector.jitter if injector is not None else None,
            on_retry=self._on_retry,
            retry_gate=retry_gate,
            remaining_seconds=(
                governor.remaining_seconds if governor is not None else None
            ),
        )

    def read_page(self, table: str, page_no: int, sequential: bool) -> None:
        """Record one page access through the buffer pool.

        Budget checks run first (a page read is the executor's natural
        batch boundary), then the fault injector gets a chance to raise;
        transient faults are retried with bounded backoff before the
        access is accounted.

        Raises:
            ResourceError: on budget violation or cancellation.
            CircuitBreakerOpen: fail-fast while the breaker is open.
            TransientStorageError: when a fault outlives its retries.
        """
        if self.governor is not None:
            self.governor.on_page_read()
        if self.fault_injector is not None:
            self._with_retries(
                lambda: self.fault_injector.on_page_read(table, page_no),
                site=table,
            )
        hit = self.buffer_pool.access((table, page_no))
        if hit:
            return
        if sequential:
            self.counters.seq_page_reads += 1
        else:
            self.counters.random_page_reads += 1

    def write_page(self, table: str, page_no: int) -> None:
        """Account one heap-page write, with fault injection first.

        The hook fires *before* the caller mutates the page, so an
        injected fault (after retries are exhausted) aborts the
        statement with the heap untouched -- statement-level atomicity
        falls out of the write ordering rather than fix-up code.
        """
        if self.governor is not None:
            self.governor.on_page_write()
        if self.fault_injector is not None:
            self._with_retries(
                lambda: self.fault_injector.on_page_write(table, page_no),
                site=table,
            )
        self.counters.pages_written += 1
        self.buffer_pool.access((table, page_no))

    def wal_append(self, site: str) -> None:
        """Account buffering one WAL record, with fault injection first
        (write-ahead ordering: the record is logged before the heap
        mutation it describes)."""
        if self.fault_injector is not None:
            self._with_retries(
                lambda: self.fault_injector.on_wal_append(site),
                site=site,
            )
        self.counters.wal_appends += 1

    def index_lookup(self, fn: Callable[[], _T], site: str) -> _T:
        """Run one index lookup through fault injection and retries."""
        if self.fault_injector is None:
            return fn()

        def attempt() -> _T:
            self.fault_injector.on_index_lookup(site)
            return fn()

        return self._with_retries(attempt, site=site)

    def reset(self) -> None:
        """Clear the buffer pool and counters for a fresh measurement."""
        self.buffer_pool.clear()
        self.counters = ExecCounters()
        self.runtime = None
        self.governor = None
        self.feedback_summary = None
        self.queue_wait_seconds = 0.0


@dataclass
class QueryMetrics:
    """Per-session counters: the observability registry (one per Database).

    Splitting optimizer time from execution time measures the lever the
    plan cache pulls: for repeated parameterized queries the optimizer
    share is pure overhead after the first call.
    """

    queries_run: int = 0
    statements_prepared: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    plan_cache_invalidations: int = 0
    pages_read: int = 0
    rows_returned: int = 0
    optimize_seconds: float = 0.0
    execute_seconds: float = 0.0
    # Robustness counters: typed execution failures, plans evicted from
    # the cache because they failed, conservative re-optimizations, and
    # transient-fault retries absorbed by the executor.
    execution_failures: int = 0
    plan_cache_error_evictions: int = 0
    conservative_reoptimizations: int = 0
    fault_retries: int = 0
    # Cardinality-feedback counters: observed selectivities harvested
    # from executions, and cached plans invalidated because feedback
    # showed their cardinality estimates were badly off.
    feedback_observations: int = 0
    feedback_reoptimizations: int = 0
    # Adaptive-execution counters: validity-range CHECKs that fired,
    # mid-query re-optimizations performed, and checkpointed
    # intermediates replayed by spliced remainder plans.
    adaptive_checks_fired: int = 0
    adaptive_reoptimizations: int = 0
    adaptive_checkpoints_reused: int = 0
    # Admission-control counters: queries admitted (some after waiting
    # in the queue), queries shed with a typed retryable rejection
    # (queue full, tenant rate limit, or queue timeout -- timeouts also
    # counted separately), cumulative queue wait, and storage accesses
    # the circuit breaker suppressed fail-fast.
    queries_admitted: int = 0
    queries_queued: int = 0
    queries_shed: int = 0
    queue_timeouts: int = 0
    queue_wait_seconds: float = 0.0
    breaker_fast_fails: int = 0
    # Transactional-DML counters: DML statements executed, rows written,
    # commits/aborts, and first-writer-wins conflicts raised.
    dml_statements: int = 0
    rows_written: int = 0
    transactions_committed: int = 0
    transactions_aborted: int = 0
    serialization_conflicts: int = 0

    def record_execution(self, context: "ExecContext", rows: int) -> None:
        """Fold one execution's observed work into the session totals."""
        self.queries_run += 1
        self.rows_returned += rows
        self.pages_read += context.counters.total_page_reads
        self.fault_retries += context.counters.retries
        self.breaker_fast_fails += context.counters.breaker_fast_fails
        self.rows_written += context.counters.rows_written

    def format(self) -> str:
        """Readable multi-line rendering (the shell's ``\\metrics``)."""
        total = self.plan_cache_hits + self.plan_cache_misses
        hit_ratio = self.plan_cache_hits / total if total else 0.0
        return "\n".join(
            [
                f"queries run:              {self.queries_run}",
                f"statements prepared:      {self.statements_prepared}",
                f"plan cache hits:          {self.plan_cache_hits}",
                f"plan cache misses:        {self.plan_cache_misses}",
                f"plan cache invalidations: {self.plan_cache_invalidations}",
                f"plan cache hit ratio:     {hit_ratio:.0%}",
                f"pages read:               {self.pages_read}",
                f"rows returned:            {self.rows_returned}",
                f"optimizer time:           {self.optimize_seconds * 1000.0:.3f}ms",
                f"execution time:           {self.execute_seconds * 1000.0:.3f}ms",
                f"execution failures:       {self.execution_failures}",
                f"plans evicted on error:   {self.plan_cache_error_evictions}",
                f"conservative re-opts:     {self.conservative_reoptimizations}",
                f"fault retries:            {self.fault_retries}",
                f"feedback observations:    {self.feedback_observations}",
                f"feedback re-opts:         {self.feedback_reoptimizations}",
                f"adaptive checks fired:    {self.adaptive_checks_fired}",
                f"adaptive re-opts:         {self.adaptive_reoptimizations}",
                f"checkpoints reused:       {self.adaptive_checkpoints_reused}",
                f"queries admitted:         {self.queries_admitted}",
                f"queries queued:           {self.queries_queued}",
                f"queries shed:             {self.queries_shed}",
                f"queue timeouts:           {self.queue_timeouts}",
                f"queue wait total:         {self.queue_wait_seconds * 1000.0:.3f}ms",
                f"breaker fast-fails:       {self.breaker_fast_fails}",
                f"dml statements:           {self.dml_statements}",
                f"rows written:             {self.rows_written}",
                f"transactions committed:   {self.transactions_committed}",
                f"transactions aborted:     {self.transactions_aborted}",
                f"serialization conflicts:  {self.serialization_conflicts}",
            ]
        )
