"""A naive reference interpreter for logical operator trees.

This evaluator executes a logical tree directly, with no optimization and
no physical algorithm choices: joins are nested loops, grouping is a hash
table, and every :class:`~repro.logical.operators.Apply` re-evaluates its
inner block per outer row -- the literal *tuple iteration semantics* of
Section 4.2.2.

It serves two purposes:

* the **correctness oracle**: every optimized physical plan is checked
  against the interpreter's result in tests;
* the **unoptimized baseline** in benchmarks that measure the benefit of
  rewrites (E6 unnesting, E7 magic sets).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.catalog.catalog import Catalog
from repro.errors import ExecutionError
from repro.expr.aggregates import AggregateCall
from repro.expr.evaluator import evaluate, predicate_holds
from repro.expr.expressions import ColumnRef, Expr
from repro.expr.schema import StreamSchema
from repro.logical.operators import (
    Apply,
    Distinct,
    Filter,
    Get,
    GroupBy,
    Join,
    JoinKind,
    Limit,
    LogicalOp,
    Project,
    Sort,
    Union,
)

Row = Tuple[Any, ...]


class InterpreterStats:
    """Counters describing the work the interpreter performed.

    ``rows_produced`` counts every row emitted by every operator --
    the interpreter's proxy for total work, used by baseline benchmarks.
    ``inner_evaluations`` counts how many times an Apply re-ran its inner
    block (the cost that unnesting eliminates).
    """

    def __init__(self) -> None:
        self.rows_produced = 0
        self.inner_evaluations = 0
        self.rows_scanned = 0

    def __repr__(self) -> str:
        return (
            f"InterpreterStats(rows_produced={self.rows_produced}, "
            f"inner_evaluations={self.inner_evaluations}, "
            f"rows_scanned={self.rows_scanned})"
        )


def interpret(
    plan: LogicalOp,
    catalog: Catalog,
    stats: Optional[InterpreterStats] = None,
) -> Tuple[StreamSchema, List[Row]]:
    """Evaluate a logical tree; returns ``(schema, rows)``.

    Raises:
        ExecutionError: on runtime errors (bad scalar subqueries, etc.).
    """
    if stats is None:
        stats = InterpreterStats()
    return _eval_op(plan, catalog, None, None, stats)


def _extend(
    schema: StreamSchema,
    outer_schema: Optional[StreamSchema],
) -> StreamSchema:
    """Schema visible inside a correlated context: inner slots shadow outer."""
    if outer_schema is None:
        return schema
    inner_slots = set(schema.slots)
    extra = tuple(slot for slot in outer_schema.slots if slot not in inner_slots)
    if not extra:
        return schema
    return StreamSchema(schema.slots + extra)


def _extend_row(
    schema: StreamSchema,
    row: Row,
    outer_schema: Optional[StreamSchema],
    outer_row: Optional[Row],
) -> Row:
    if outer_schema is None:
        return row
    inner_slots = set(schema.slots)
    extra = tuple(
        value
        for slot, value in zip(outer_schema.slots, outer_row)
        if slot not in inner_slots
    )
    return tuple(row) + extra


def _eval_op(
    op: LogicalOp,
    catalog: Catalog,
    outer_schema: Optional[StreamSchema],
    outer_row: Optional[Row],
    stats: InterpreterStats,
) -> Tuple[StreamSchema, List[Row]]:
    if isinstance(op, Get):
        schema = op.output_schema()
        rows = [tuple(row) for row in catalog.table(op.table).rows()]
        stats.rows_scanned += len(rows)
        stats.rows_produced += len(rows)
        return schema, rows
    if isinstance(op, Filter):
        child_schema, child_rows = _eval_op(
            op.child, catalog, outer_schema, outer_row, stats
        )
        env_schema = _extend(child_schema, outer_schema)
        kept = [
            row
            for row in child_rows
            if predicate_holds(
                op.predicate,
                _extend_row(child_schema, row, outer_schema, outer_row),
                env_schema,
            )
        ]
        stats.rows_produced += len(kept)
        return child_schema, kept
    if isinstance(op, Project):
        child_schema, child_rows = _eval_op(
            op.child, catalog, outer_schema, outer_row, stats
        )
        env_schema = _extend(child_schema, outer_schema)
        out_schema = op.output_schema()
        out_rows = []
        for row in child_rows:
            env_row = _extend_row(child_schema, row, outer_schema, outer_row)
            out_rows.append(
                tuple(evaluate(item.expr, env_row, env_schema) for item in op.items)
            )
        stats.rows_produced += len(out_rows)
        return out_schema, out_rows
    if isinstance(op, Join):
        return _eval_join(op, catalog, outer_schema, outer_row, stats)
    if isinstance(op, GroupBy):
        return _eval_groupby(op, catalog, outer_schema, outer_row, stats)
    if isinstance(op, Distinct):
        child_schema, child_rows = _eval_op(
            op.child, catalog, outer_schema, outer_row, stats
        )
        seen = set()
        out_rows = []
        for row in child_rows:
            if row not in seen:
                seen.add(row)
                out_rows.append(row)
        stats.rows_produced += len(out_rows)
        return child_schema, out_rows
    if isinstance(op, Union):
        left_schema, left_rows = _eval_op(
            op.left, catalog, outer_schema, outer_row, stats
        )
        _right_schema, right_rows = _eval_op(
            op.right, catalog, outer_schema, outer_row, stats
        )
        rows = left_rows + right_rows
        if not op.all_rows:
            seen = set()
            deduped = []
            for row in rows:
                if row not in seen:
                    seen.add(row)
                    deduped.append(row)
            rows = deduped
        stats.rows_produced += len(rows)
        return left_schema, rows
    if isinstance(op, Sort):
        child_schema, child_rows = _eval_op(
            op.child, catalog, outer_schema, outer_row, stats
        )
        rows = sort_rows(child_rows, child_schema, op.keys)
        stats.rows_produced += len(rows)
        return child_schema, rows
    if isinstance(op, Limit):
        child_schema, child_rows = _eval_op(
            op.child, catalog, outer_schema, outer_row, stats
        )
        end = None if op.limit is None else op.offset + op.limit
        rows = child_rows[op.offset:end]
        stats.rows_produced += len(rows)
        return child_schema, rows
    if isinstance(op, Apply):
        return _eval_apply(op, catalog, outer_schema, outer_row, stats)
    raise ExecutionError(f"interpreter cannot evaluate {type(op).__name__}")


def sort_rows(
    rows: List[Row],
    schema: StreamSchema,
    keys: Sequence[Tuple[ColumnRef, bool]],
) -> List[Row]:
    """Stable multi-key sort with SQL NULLS FIRST on ascending keys."""
    result = list(rows)
    for ref, ascending in reversed(keys):
        position = schema.position(ref)
        result.sort(
            key=lambda row, p=position: (row[p] is not None, row[p]),
            reverse=not ascending,
        )
    return result


def _eval_join(
    op: Join,
    catalog: Catalog,
    outer_schema: Optional[StreamSchema],
    outer_row: Optional[Row],
    stats: InterpreterStats,
) -> Tuple[StreamSchema, List[Row]]:
    left_schema, left_rows = _eval_op(op.left, catalog, outer_schema, outer_row, stats)
    right_schema, right_rows = _eval_op(
        op.right, catalog, outer_schema, outer_row, stats
    )
    out_schema = op.output_schema()
    combined = left_schema.concat(right_schema)
    env_schema = _extend(combined, outer_schema)
    out_rows: List[Row] = []

    def matches(left_row: Row, right_row: Row) -> bool:
        if op.predicate is None:
            return True
        env_row = _extend_row(
            combined, tuple(left_row) + tuple(right_row), outer_schema, outer_row
        )
        return predicate_holds(op.predicate, env_row, env_schema)

    if op.kind in (JoinKind.INNER, JoinKind.CROSS):
        for left_row in left_rows:
            for right_row in right_rows:
                if matches(left_row, right_row):
                    out_rows.append(tuple(left_row) + tuple(right_row))
    elif op.kind is JoinKind.LEFT_OUTER:
        null_pad = (None,) * right_schema.arity
        for left_row in left_rows:
            matched = False
            for right_row in right_rows:
                if matches(left_row, right_row):
                    matched = True
                    out_rows.append(tuple(left_row) + tuple(right_row))
            if not matched:
                out_rows.append(tuple(left_row) + null_pad)
    elif op.kind is JoinKind.SEMI:
        for left_row in left_rows:
            if any(matches(left_row, right_row) for right_row in right_rows):
                out_rows.append(tuple(left_row))
    elif op.kind is JoinKind.ANTI:
        for left_row in left_rows:
            if not any(matches(left_row, right_row) for right_row in right_rows):
                out_rows.append(tuple(left_row))
    else:
        raise ExecutionError(f"interpreter does not support join kind {op.kind}")
    stats.rows_produced += len(out_rows)
    return out_schema, out_rows


def _group_key(
    keys: Sequence[ColumnRef], schema: StreamSchema, row: Row
) -> Tuple[Any, ...]:
    return tuple(row[schema.position(ref)] for ref in keys)


def _eval_groupby(
    op: GroupBy,
    catalog: Catalog,
    outer_schema: Optional[StreamSchema],
    outer_row: Optional[Row],
    stats: InterpreterStats,
) -> Tuple[StreamSchema, List[Row]]:
    child_schema, child_rows = _eval_op(
        op.child, catalog, outer_schema, outer_row, stats
    )
    env_schema = _extend(child_schema, outer_schema)
    groups: Dict[Tuple[Any, ...], List[Any]] = {}
    order: List[Tuple[Any, ...]] = []
    for row in child_rows:
        key = _group_key(op.keys, child_schema, row)
        if key not in groups:
            groups[key] = [call.new_accumulator() for call in op.aggregates]
            order.append(key)
        env_row = _extend_row(child_schema, row, outer_schema, outer_row)
        for call, accumulator in zip(op.aggregates, groups[key]):
            if call.is_star:
                accumulator.add(1)
            else:
                accumulator.add_value(evaluate(call.arg, env_row, env_schema))
    if not groups and not op.keys:
        # Aggregate over empty input with no grouping: one all-empty group.
        groups[()] = [call.new_accumulator() for call in op.aggregates]
        order.append(())
    out_rows = [
        key + tuple(acc.result() for acc in groups[key]) for key in order
    ]
    stats.rows_produced += len(out_rows)
    return op.output_schema(), out_rows


def _eval_apply(
    op: Apply,
    catalog: Catalog,
    outer_schema: Optional[StreamSchema],
    outer_row: Optional[Row],
    stats: InterpreterStats,
) -> Tuple[StreamSchema, List[Row]]:
    left_schema, left_rows = _eval_op(op.left, catalog, outer_schema, outer_row, stats)
    env_schema = _extend(left_schema, outer_schema)
    out_schema = op.output_schema()
    out_rows: List[Row] = []
    for left_row in left_rows:
        env_row = _extend_row(left_schema, left_row, outer_schema, outer_row)
        stats.inner_evaluations += 1
        _inner_schema, inner_rows = _eval_op(
            op.right, catalog, env_schema, env_row, stats
        )
        if op.kind == "semi":
            if inner_rows:
                out_rows.append(tuple(left_row))
        elif op.kind == "anti":
            if not inner_rows:
                out_rows.append(tuple(left_row))
        else:  # scalar
            if len(inner_rows) > 1:
                raise ExecutionError("scalar subquery returned more than one row")
            value = inner_rows[0][0] if inner_rows else None
            out_rows.append(tuple(left_row) + (value,))
    stats.rows_produced += len(out_rows)
    return out_schema, out_rows
