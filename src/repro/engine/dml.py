"""Physical DML execution: the fault-hardened write path.

One module serves all three engines -- the legacy row-at-a-time
executor, the batch-iterator engine, and the columnar engine all
delegate to the same per-row write sequence, because writes are
row-oriented no matter how the reads were vectorized.

The write sequence for every mutated row is strictly ordered so that a
failure at any point leaves the statement cleanly abortable:

1. governor charge (``on_rows_written``) -- budget violations abort
   before anything is touched;
2. injected fault hooks (``wal_append``, ``write_page``) -- a
   persistent fault aborts before anything is touched;
3. WAL record buffered on the transaction (statement-atomic: the
   buffer is flushed to the log only at successful statement end);
4. heap mutation (``mvcc_insert`` / ``mvcc_delete``), which also
   records the undo entry via the transaction;
5. incremental secondary-index maintenance for inserts (where unique
   constraints are checked against live versions).

Steps 4-5 run under the table's reentrant mutation lock: with
concurrent writer threads, the appended row, its assigned row id, its
version stamps, and its index entries must all describe the same row,
and the unique-index check must not race another writer inserting the
same key.  The fault gate stays *outside* the lock -- injected faults
may sleep through retries and must not serialize unrelated writers.

UPDATE and DELETE materialize the matching row ids from the statement's
snapshot *before* mutating anything (the classical Halloween-problem
avoidance), then write against latest state -- first-writer-wins
conflicts surface as :class:`~repro.errors.SerializationError` from the
heap layer and propagate to the transaction machinery.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.catalog.catalog import Catalog
from repro.engine.context import ExecContext
from repro.engine.executor import _collect, _predicate_fn, _scalar_fn
from repro.errors import ExecutionError
from repro.expr.schema import StreamSchema
from repro.physical.plans import DML_SCHEMA, DeleteP, InsertP, UpdateP
from repro.storage.table import HeapTable

Row = Tuple[Any, ...]

# Expressions in VALUES rows reference no columns (the binder enforces
# it), so they evaluate against an empty stream.
_EMPTY_SCHEMA = StreamSchema(())


def _require_txn(ctx: ExecContext):
    """The transaction every DML statement runs in (set by Database)."""
    txn = ctx.txn
    if txn is None or txn.manager is None:
        raise ExecutionError(
            "DML requires a transaction context; run the statement "
            "through Database.sql()"
        )
    return txn


def _target_table(catalog: Catalog, name: str) -> HeapTable:
    return catalog.table(name)


def _index_insert(catalog: Catalog, name: str, row: Row, row_id: int) -> None:
    """Incrementally maintain every secondary index on ``name``."""
    for index in catalog.indexes_on(name):
        index.insert_entry(row, row_id)
    for index in catalog.hash_indexes_on(name):
        index.insert_entry(row, row_id)


def _write_gate(ctx: ExecContext, name: str, table: HeapTable, page_no: int) -> None:
    """Budget + fault gate run before each row mutation.

    Ordering matters: if the governor rejects or an injected fault
    outlives its retries, *nothing* has been written yet, so statement
    rollback restores the pre-statement image exactly.
    """
    ctx.governor.on_rows_written(1)
    ctx.wal_append(name)
    ctx.write_page(name, page_no)


def _matching_rows(
    op_table: str,
    table: HeapTable,
    predicate,
    ctx: ExecContext,
) -> List[Tuple[int, Row]]:
    """Materialize (row_id, row) pairs visible to the statement snapshot
    that satisfy the predicate.  Materializing first means mutations
    made by this very statement can never re-enter the scan."""
    schema = StreamSchema.for_table(op_table, table.schema.column_names)
    keep = _predicate_fn(predicate, schema, ctx)
    for page_no in range(table.page_count):
        ctx.read_page(op_table, page_no, sequential=True)
    matches: List[Tuple[int, Row]] = []
    for row_id, row in table.visible_rows(ctx.snapshot):
        ctx.governor.tick()
        if keep(row):
            matches.append((row_id, row))
    return matches


# ----------------------------------------------------------------------
# INSERT
# ----------------------------------------------------------------------
def _run_insert(op: InsertP, catalog: Catalog, ctx: ExecContext) -> List[Row]:
    txn = _require_txn(ctx)
    table = _target_table(catalog, op.table)
    txn.manager.register_write(txn, op.table, table)
    if op.source is not None:
        source_rows = _collect(op.source, catalog, ctx)
        positions = op.select_positions or []
        rows: List[Row] = [
            tuple(
                source_row[position] if position is not None else None
                for position in positions
            )
            for source_row in source_rows
        ]
    else:
        rows = []
        for value_exprs in op.rows:
            rows.append(
                tuple(
                    _scalar_fn(expr, _EMPTY_SCHEMA, ctx)(()) for expr in value_exprs
                )
            )
    count = 0
    for values in rows:
        # Validate before the gate: a type/NOT NULL violation is a
        # statement error, not a storage fault, and must not charge
        # budgets or trip injected faults.
        table.schema.validate_row(values)
        _write_gate(ctx, op.table, table, table.page_of(max(0, len(table.rows()))))
        with table.lock:
            row_id = table.mvcc_insert(values, txn.txid)
            stored = table.fetch(row_id)
            txn.note_insert(op.table, table, row_id, stored)
            _index_insert(catalog, op.table, stored, row_id)
        ctx.counters.rows_written += 1
        count += 1
    return [(count,)]


# ----------------------------------------------------------------------
# DELETE
# ----------------------------------------------------------------------
def _run_delete(op: DeleteP, catalog: Catalog, ctx: ExecContext) -> List[Row]:
    txn = _require_txn(ctx)
    table = _target_table(catalog, op.table)
    txn.manager.register_write(txn, op.table, table)
    matches = _matching_rows(op.table, table, op.predicate, ctx)
    for row_id, row in matches:
        _write_gate(ctx, op.table, table, table.page_of(row_id))
        with table.lock:
            table.mvcc_delete(row_id, txn.txid)
            txn.note_delete(op.table, table, row_id, row)
        ctx.counters.rows_written += 1
    return [(len(matches),)]


# ----------------------------------------------------------------------
# UPDATE
# ----------------------------------------------------------------------
def _run_update(op: UpdateP, catalog: Catalog, ctx: ExecContext) -> List[Row]:
    txn = _require_txn(ctx)
    table = _target_table(catalog, op.table)
    txn.manager.register_write(txn, op.table, table)
    schema = StreamSchema.for_table(op.table, table.schema.column_names)
    setters = [
        (position, _scalar_fn(expr, schema, ctx))
        for position, expr in op.assignments
    ]
    matches = _matching_rows(op.table, table, op.predicate, ctx)
    count = 0
    for row_id, row in matches:
        new_row = list(row)
        for position, setter in setters:
            # Every SET right-hand side sees the *old* row, per SQL.
            new_row[position] = setter(row)
        table.schema.validate_row(tuple(new_row))
        _write_gate(ctx, op.table, table, table.page_of(row_id))
        new_page = table.page_of(max(0, len(table.rows())))
        if new_page != table.page_of(row_id):
            ctx.write_page(op.table, new_page)
        with table.lock:
            table.mvcc_delete(row_id, txn.txid)
            new_row_id = table.mvcc_insert(tuple(new_row), txn.txid)
            stored = table.fetch(new_row_id)
            txn.note_update(op.table, table, row_id, new_row_id, row, stored)
            _index_insert(catalog, op.table, stored, new_row_id)
        ctx.counters.rows_written += 1
        count += 1
    return [(count,)]


# ----------------------------------------------------------------------
# Engine adapters + registration
# ----------------------------------------------------------------------
def _stream_insert(op, catalog, ctx):
    yield _run_insert(op, catalog, ctx)


def _stream_update(op, catalog, ctx):
    yield _run_update(op, catalog, ctx)


def _stream_delete(op, catalog, ctx):
    yield _run_delete(op, catalog, ctx)


def _columnar_adapter(run_handler):
    def handler(op, catalog, ctx):
        from repro.engine.columnar import _chunks

        rows = run_handler(op, catalog, ctx)
        yield from _chunks(rows, DML_SCHEMA, ctx.params.batch_size)

    return handler


def register_columnar(handlers: dict) -> None:
    """Install DML handlers into the columnar engine's dispatch table."""
    handlers[InsertP] = _columnar_adapter(_run_insert)
    handlers[UpdateP] = _columnar_adapter(_run_update)
    handlers[DeleteP] = _columnar_adapter(_run_delete)


# Row and batch engines register here (imported at the bottom of
# executor.py, after both dispatch tables exist).
from repro.engine import executor as _executor  # noqa: E402

_executor._HANDLERS[InsertP] = _run_insert
_executor._HANDLERS[UpdateP] = _run_update
_executor._HANDLERS[DeleteP] = _run_delete
_executor._STREAM_HANDLERS[InsertP] = _stream_insert
_executor._STREAM_HANDLERS[UpdateP] = _stream_update
_executor._STREAM_HANDLERS[DeleteP] = _stream_delete
