"""Partitioned-stream parallel execution: the runtime behind ExchangeP.

The optimizer half of parallelism (Section 7.1: XPRS-style two-phase
optimization, partitioning as a physical property, repartitioning cost)
has been in the repo since the two-phase work; this module supplies the
execution half.  A :class:`~repro.physical.plans.GatherP` placed by the
exchange-placement pass marks a *region*: the subtree between the gather
and the distributing :class:`~repro.physical.plans.ExchangeP` operators
below it.  The region runs in two stages:

Stage 1 (driver thread): the subtrees *below* each distributing
exchange are drained through the ordinary engine, so page reads, the
buffer pool, and fault-injection schedules stay single-threaded and
deterministic.  Every source row gets a global sequence tag, then rows
are partitioned per the exchange scheme -- hash (on the exchange's key
positions, via the canonical value hash shared with the columnar
kernels), round-robin, or broadcast (every worker sees every row).

Stage 2 (worker threads): ``dop`` workers each run tag-aware twins of
the region's operators -- filter/project chains, partitioned hash
join, partitioned hash aggregation/distinct with the Grace spill
degradation of the serial engine reproduced per partition -- pushing
output batches into a bounded queue (backpressure).  The driver merges
worker outputs by tag into one stream, so results are bit-identical to
the single-threaded oracle (``parallel_mode=False``).

Determinism rests on three facts: hash partitioning sends all build
rows of a key to one partition in their original relative order, every
probe/input tag lives in exactly one partition, and each worker emits
tag-ascending output; a k-way merge by tag therefore reproduces the
serial operator's output order exactly.

Error handling is structural: any worker error sets a region-wide abort
event, every queue put/get polls it, and the driver joins *all* workers
before re-raising the first typed error in partition order -- workers
cannot be orphaned, including under LIMIT-driven early close and
cancellation/timeout from the shared governor, which every worker polls
on the same ``CHECK_INTERVAL`` cadence as the serial engine.

Memory follows a degrade-don't-fail ladder: the admission controller's
pool is leased per worker (an over-subscribed pool halves the degree of
parallelism instead of rejecting), and the governor's per-query memory
budget is checked per partition (an oversized partition build falls
back to Grace sub-partitioning exactly like the serial operator).
"""

from __future__ import annotations

import heapq
import queue
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.catalog.catalog import Catalog
from repro.cost.model import pages_for_rows
from repro.engine.context import ExecContext, ExecCounters
from repro.engine.runtime_stats import PartitionStats
from repro.errors import ExecutionError, MemoryBudgetExceeded
from repro.expr.vector import hash_key
from repro.logical.operators import JoinKind
from repro.physical.plans import (
    DistinctP,
    ExchangeP,
    FilterP,
    GatherP,
    HashAggP,
    HashJoinP,
    PhysicalOp,
    ProjectP,
    UdfFilterP,
)
from repro.physical.properties import PartitionScheme

Row = Tuple[Any, ...]
Batch = List[Row]
Tagged = Tuple[List[int], List[Row]]

# Bounded output queue depth per worker, in batches: deep enough to keep
# the merge fed, shallow enough that a stalled consumer exerts real
# backpressure on every worker.
_QUEUE_BATCHES = 4
# Poll interval for abort-aware queue waits; bounds how long a worker or
# the driver can stay blocked after the region has been aborted.
_POLL_SECONDS = 0.02
# Worker-side governor cadence, matching ResourceGovernor.CHECK_INTERVAL.
_CHECK_INTERVAL = 128

_PARALLEL_JOIN_KINDS = (
    JoinKind.INNER,
    JoinKind.LEFT_OUTER,
    JoinKind.SEMI,
    JoinKind.ANTI,
)

_DONE = object()


def partition_index(values: Sequence[Any], parts: int) -> int:
    """Partition assignment for one key: canonical hash mod parts.

    Uses the value-canonical hash from :mod:`repro.expr.vector`, so a
    row hashed here and a column hashed vectorized (columnar stage 1)
    agree lane for lane, and numerically equal int/float/bool keys land
    in the same partition on both sides of a repartitioned join.
    """
    return hash_key(values) % parts


# ----------------------------------------------------------------------
# Exchange page accounting (shared by the simulated and real paths)
# ----------------------------------------------------------------------
def exchange_page_count(
    rows: int,
    width: float,
    scheme: PartitionScheme,
    degree: int,
    params,
) -> int:
    """Pages an exchange moves between processors, scheme-aware.

    This is the *measured* twin of the two-phase cost model
    (:class:`repro.core.parallel.machine.ParallelMachine`): a hash or
    round-robin repartition moves the fraction of pages that change
    processors, ``(p-1)/p``; a broadcast replicates to every other
    processor, ``p-1`` copies; a gather (singleton) ships everything to
    the coordinator once.  The legacy simulated exchange, the streaming
    pass-through, the columnar pass-through, and the real parallel
    runtime all charge through this one function, so
    ``counters.exchange_pages`` agrees across engines on the same plan.
    """
    raw = pages_for_rows(rows, width, params)
    if degree <= 1:
        moved = raw
    elif scheme is PartitionScheme.BROADCAST:
        moved = raw * (degree - 1)
    elif scheme in (PartitionScheme.HASH, PartitionScheme.ROUND_ROBIN):
        moved = raw * (degree - 1) / degree
    else:
        moved = raw
    return int(moved)


# ----------------------------------------------------------------------
# Region analysis
# ----------------------------------------------------------------------
@dataclass
class _Region:
    gather: GatherP
    root: PhysicalOp
    inputs: List[ExchangeP]
    ops: List[PhysicalOp]


def analyze_region(op: GatherP) -> Optional[_Region]:
    """Validate the subtree under a gather as an executable region.

    Returns None (caller falls back to serial pass-through execution)
    when the region contains an operator the worker runtime has no twin
    for -- Sort/Limit/Apply/Check/nested Gather -- or a malformed
    exchange.  The placement pass only emits supported shapes, but the
    runtime re-validates so a hand-built plan degrades to serial
    execution instead of failing.
    """
    inputs: List[ExchangeP] = []
    ops: List[PhysicalOp] = []
    stack: List[PhysicalOp] = [op.child]
    while stack:
        node = stack.pop()
        if isinstance(node, GatherP):
            return None
        if isinstance(node, ExchangeP):
            scheme = node.target.scheme
            if scheme not in (
                PartitionScheme.HASH,
                PartitionScheme.ROUND_ROBIN,
                PartitionScheme.BROADCAST,
            ):
                return None
            if scheme is PartitionScheme.HASH and not getattr(
                node, "key_positions", None
            ):
                return None
            inputs.append(node)
            continue
        if isinstance(node, HashJoinP):
            if node.kind not in _PARALLEL_JOIN_KINDS:
                return None
        elif isinstance(node, HashAggP):
            if not node.keys:
                return None
        elif not isinstance(node, (FilterP, UdfFilterP, ProjectP, DistinctP)):
            return None
        ops.append(node)
        stack.extend(node.children())
    if not inputs:
        return None
    return _Region(gather=op, root=op.child, inputs=inputs, ops=ops)


def plan_parallel_regions(plan: PhysicalOp) -> List[GatherP]:
    """All Gather operators in a plan (for tests and benchmarks)."""
    from repro.physical.plans import walk_physical

    return [node for node in walk_physical(plan) if isinstance(node, GatherP)]


# ----------------------------------------------------------------------
# Per-operator compiled closures (built once, shared read-only)
# ----------------------------------------------------------------------
@dataclass
class _JoinFns:
    left_key: Callable[[Row], Tuple[Any, ...]]
    right_key: Callable[[Row], Tuple[Any, ...]]
    residual: Optional[Callable[[Row], bool]]
    pad: Row
    kind: JoinKind
    build_width: float
    probe_width: float


@dataclass
class _AggFns:
    key_of: Callable[[Row], Tuple[Any, ...]]
    arg_fns: List[Optional[Callable[[Row], Any]]]
    width: float


def _build_fns(region: _Region, ctx: ExecContext) -> Dict[int, Any]:
    """Compile every region operator's closures once on the driver.

    The closures (predicates, scalar projections, key getters) are pure
    functions of the row; workers share them read-only.
    """
    from repro.engine.executor import (
        _key_getter,
        _predicate_fn,
        _row_width,
        _scalar_fn,
    )

    fns: Dict[int, Any] = {}
    for node in region.ops:
        if isinstance(node, FilterP):
            fns[id(node)] = _predicate_fn(
                node.predicate, node.child.output_schema(), ctx
            )
        elif isinstance(node, UdfFilterP):
            fns[id(node)] = (
                _scalar_fn(node.udf, node.child.output_schema(), ctx),
                max(1, int(node.udf.per_tuple_cost)),
            )
        elif isinstance(node, ProjectP):
            schema = node.child.output_schema()
            fns[id(node)] = [
                _scalar_fn(item.expr, schema, ctx) for item in node.items
            ]
        elif isinstance(node, HashJoinP):
            left_schema = node.left.output_schema()
            right_schema = node.right.output_schema()
            combined = left_schema.concat(right_schema)
            fns[id(node)] = _JoinFns(
                left_key=_key_getter(left_schema, node.left_keys),
                right_key=_key_getter(right_schema, node.right_keys),
                residual=(
                    _predicate_fn(node.residual, combined, ctx)
                    if node.residual is not None
                    else None
                ),
                pad=(None,) * right_schema.arity,
                kind=node.kind,
                build_width=_row_width(right_schema),
                probe_width=_row_width(left_schema),
            )
        elif isinstance(node, HashAggP):
            schema = node.child.output_schema()
            fns[id(node)] = _AggFns(
                key_of=_key_getter(schema, node.keys),
                arg_fns=[
                    None if call.is_star else _scalar_fn(call.arg, schema, ctx)
                    for call in node.aggregates
                ],
                width=_row_width(schema),
            )
        # DistinctP needs no compiled state.
    return fns


# ----------------------------------------------------------------------
# Worker-side execution
# ----------------------------------------------------------------------
class _Aborted(Exception):
    """Internal: the region was aborted by a peer; unwind quietly."""


class _RegionState:
    """Everything stage 2 shares: inputs, closures, abort, shards."""

    def __init__(
        self,
        region: _Region,
        ctx: ExecContext,
        dop: int,
        fns: Dict[int, Any],
        parts: Dict[int, List[List[Tuple[int, Row]]]],
    ) -> None:
        self.region = region
        self.ctx = ctx
        self.dop = dop
        self.fns = fns
        self.parts = parts
        self.params = ctx.params
        self.governor = ctx.governor
        self.abort = threading.Event()
        self.errors: List[Optional[BaseException]] = [None] * dop
        self.shards: List[ExecCounters] = [ExecCounters() for _ in range(dop)]
        # Per-worker, per-op observed output rows and resident highs,
        # merged into the RuntimeStats tree in partition order.
        self.op_rows: List[Dict[int, int]] = [dict() for _ in range(dop)]
        self.op_resident: List[Dict[int, int]] = [dict() for _ in range(dop)]
        self.degraded_ops: List[set] = [set() for _ in range(dop)]
        self.pstats = [PartitionStats(index=w) for w in range(dop)]
        self.queues: List["queue.Queue"] = [
            queue.Queue(maxsize=_QUEUE_BATCHES) for _ in range(dop)
        ]
        self.threads: List[threading.Thread] = []


class _Worker:
    """One partition's tag-aware evaluation of the region subtree."""

    def __init__(self, state: _RegionState, w: int) -> None:
        self.state = state
        self.w = w
        self.shard = state.shards[w]
        self._ticks = 0

    # -- governor / abort -----------------------------------------------
    def _check(self) -> None:
        self._ticks += 1
        if self._ticks >= _CHECK_INTERVAL:
            self._ticks = 0
            if self.state.abort.is_set():
                raise _Aborted()
            governor = self.state.governor
            if governor is not None:
                governor.check()

    def _note_rows(self, node: PhysicalOp, n: int) -> None:
        rows = self.state.op_rows[self.w]
        rows[id(node)] = rows.get(id(node), 0) + n

    def _note_resident(self, node: PhysicalOp, n: int) -> None:
        resident = self.state.op_resident[self.w]
        if n > resident.get(id(node), 0):
            resident[id(node)] = n

    # -- evaluation ------------------------------------------------------
    def stream(self, node: PhysicalOp) -> Iterator[Tagged]:
        if isinstance(node, GatherP):  # pragma: no cover - analyze rejects
            raise ExecutionError("nested gather inside a parallel region")
        if isinstance(node, ExchangeP):
            return self._stream_input(node)
        if isinstance(node, FilterP):
            return self._stream_filter(node)
        if isinstance(node, UdfFilterP):
            return self._stream_udf_filter(node)
        if isinstance(node, ProjectP):
            return self._stream_project(node)
        if isinstance(node, HashJoinP):
            return self._stream_hash_join(node)
        if isinstance(node, HashAggP):
            return self._stream_hash_agg(node)
        if isinstance(node, DistinctP):
            return self._stream_distinct(node)
        raise ExecutionError(
            f"parallel region has no worker twin for {type(node).__name__}"
        )

    def drain(self, node: PhysicalOp) -> Tuple[List[int], List[Row]]:
        tags: List[int] = []
        rows: List[Row] = []
        for chunk_tags, chunk_rows in self.stream(node):
            tags.extend(chunk_tags)
            rows.extend(chunk_rows)
        return tags, rows

    def _stream_input(self, node: ExchangeP) -> Iterator[Tagged]:
        pairs = self.state.parts[id(node)][self.w]
        size = self.state.params.batch_size
        for start in range(0, len(pairs), size):
            chunk = pairs[start : start + size]
            yield [tag for tag, _ in chunk], [row for _, row in chunk]

    def _stream_filter(self, node: FilterP) -> Iterator[Tagged]:
        keep = self.state.fns[id(node)]
        for tags, rows in self.stream(node.child):
            out_tags: List[int] = []
            out_rows: List[Row] = []
            for tag, row in zip(tags, rows):
                self._check()
                self.shard.rows_compared += 1
                if keep(row):
                    out_tags.append(tag)
                    out_rows.append(row)
            if out_rows:
                self.shard.rows_produced += len(out_rows)
                self._note_rows(node, len(out_rows))
                yield out_tags, out_rows

    def _stream_udf_filter(self, node: UdfFilterP) -> Iterator[Tagged]:
        fn, per_tuple = self.state.fns[id(node)]
        for tags, rows in self.stream(node.child):
            out_tags: List[int] = []
            out_rows: List[Row] = []
            for tag, row in zip(tags, rows):
                self._check()
                self.shard.udf_invocations += 1
                self.shard.rows_compared += per_tuple
                if fn(row) is True:
                    out_tags.append(tag)
                    out_rows.append(row)
            if out_rows:
                self.shard.rows_produced += len(out_rows)
                self._note_rows(node, len(out_rows))
                yield out_tags, out_rows

    def _stream_project(self, node: ProjectP) -> Iterator[Tagged]:
        fns = self.state.fns[id(node)]
        for tags, rows in self.stream(node.child):
            self._check()
            out_rows = [tuple(fn(row) for fn in fns) for row in rows]
            self.shard.rows_produced += len(out_rows)
            self._note_rows(node, len(out_rows))
            yield tags, out_rows

    # -- hash join -------------------------------------------------------
    def _probe_rows(
        self,
        fns: _JoinFns,
        build: Dict[Tuple[Any, ...], List[Row]],
        lrow: Row,
    ) -> List[Row]:
        """Serial ``probe_one`` twin: all output rows for one probe row."""
        key = fns.left_key(lrow)
        self.shard.rows_compared += 1
        candidates = (
            build.get(key, []) if not any(part is None for part in key) else []
        )
        matched = []
        for rrow in candidates:
            if fns.residual is not None:
                self.shard.rows_compared += 1
                if not fns.residual(lrow + rrow):
                    continue
            matched.append(rrow)
        if fns.kind in (JoinKind.INNER, JoinKind.CROSS):
            return [lrow + rrow for rrow in matched]
        if fns.kind is JoinKind.LEFT_OUTER:
            return (
                [lrow + rrow for rrow in matched] if matched else [lrow + fns.pad]
            )
        if fns.kind is JoinKind.SEMI:
            return [lrow] if matched else []
        return [] if matched else [lrow]  # ANTI

    def _make_table(
        self, fns: _JoinFns, build_rows: List[Row]
    ) -> Dict[Tuple[Any, ...], List[Row]]:
        build: Dict[Tuple[Any, ...], List[Row]] = {}
        for rrow in build_rows:
            self.shard.rows_compared += 1
            key = fns.right_key(rrow)
            if any(part is None for part in key):
                continue
            build.setdefault(key, []).append(rrow)
        return build

    def _stream_hash_join(self, node: HashJoinP) -> Iterator[Tagged]:
        from repro.engine.executor import _partition_of, _spill_partitions

        fns: _JoinFns = self.state.fns[id(node)]
        _, build_rows = self.drain(node.right)
        self._note_resident(node, len(build_rows))
        build_bytes = int(len(build_rows) * fns.build_width)
        build_pages = pages_for_rows(
            len(build_rows), fns.build_width, self.state.params
        )
        governor = self.state.governor
        degraded = False
        if governor is not None:
            try:
                governor.reserve_memory(build_bytes, "HashJoin build")
            except MemoryBudgetExceeded:
                degraded = True
        size = self.state.params.batch_size

        if not degraded:
            build = self._make_table(fns, build_rows)
            probe_seen = 0
            out_tags: List[int] = []
            out_rows: List[Row] = []
            for tags, rows in self.stream(node.left):
                probe_seen += len(rows)
                for tag, lrow in zip(tags, rows):
                    self._check()
                    produced = self._probe_rows(fns, build, lrow)
                    out_tags.extend([tag] * len(produced))
                    out_rows.extend(produced)
                    if len(out_rows) >= size:
                        self.shard.rows_produced += len(out_rows)
                        self._note_rows(node, len(out_rows))
                        yield out_tags, out_rows
                        out_tags, out_rows = [], []
            if build_pages > self.state.params.hash_memory_pages:
                probe_pages = pages_for_rows(
                    probe_seen, fns.probe_width, self.state.params
                )
                self.shard.sort_spill_pages += int(
                    2 * (build_pages + probe_pages)
                )
            if out_rows:
                self.shard.rows_produced += len(out_rows)
                self._note_rows(node, len(out_rows))
                yield out_tags, out_rows
            return

        # Grace degradation within this partition, mirroring the serial
        # operator's accounting; output is re-sorted by probe tag so the
        # gather-side merge still sees tag-ascending chunks and the
        # merged stream keeps the serial in-memory probe order.
        self.state.degraded_ops[self.w].add(id(node))
        self.state.pstats[self.w].degraded = True
        probe_tags, probe_rows = self.drain(node.left)
        self._note_resident(node, len(build_rows) + len(probe_rows))
        probe_pages = pages_for_rows(
            len(probe_rows), fns.probe_width, self.state.params
        )
        if build_pages > self.state.params.hash_memory_pages:
            self.shard.sort_spill_pages += int(2 * (build_pages + probe_pages))
        limit = (
            governor.budget.memory_limit_bytes if governor is not None else None
        )
        parts = _spill_partitions(build_bytes, limit)
        self.shard.sort_spill_pages += int(2 * (build_pages + probe_pages))
        build_parts: List[List[Row]] = [[] for _ in range(parts)]
        for rrow in build_rows:
            build_parts[_partition_of(fns.right_key(rrow), parts)].append(rrow)
        probe_parts: List[List[Tuple[int, Row]]] = [[] for _ in range(parts)]
        for tag, lrow in zip(probe_tags, probe_rows):
            probe_parts[_partition_of(fns.left_key(lrow), parts)].append(
                (tag, lrow)
            )
        collected: List[Tuple[int, int, Row]] = []
        for build_part, probe_part in zip(build_parts, probe_parts):
            if governor is not None:
                governor.check()
            build = self._make_table(fns, build_part)
            for tag, lrow in probe_part:
                self._check()
                for seq, out in enumerate(self._probe_rows(fns, build, lrow)):
                    collected.append((tag, seq, out))
        collected.sort(key=lambda item: (item[0], item[1]))
        self.shard.rows_produced += len(collected)
        self._note_rows(node, len(collected))
        for start in range(0, len(collected), size):
            chunk = collected[start : start + size]
            yield [tag for tag, _, _ in chunk], [row for _, _, row in chunk]

    # -- hash aggregate / distinct ---------------------------------------
    def _aggregate(
        self, node: HashAggP, tagged: Iterator[Tagged]
    ) -> Tuple[List[int], List[Row]]:
        fns: _AggFns = self.state.fns[id(node)]
        groups: Dict[Tuple[Any, ...], list] = {}
        order: List[Tuple[Any, ...]] = []
        first_tag: Dict[Tuple[Any, ...], int] = {}
        for tags, rows in tagged:
            for tag, row in zip(tags, rows):
                self._check()
                key = fns.key_of(row)
                self.shard.rows_compared += 1
                if key not in groups:
                    groups[key] = [
                        call.new_accumulator() for call in node.aggregates
                    ]
                    order.append(key)
                    first_tag[key] = tag
                for fn, accumulator in zip(fns.arg_fns, groups[key]):
                    if fn is None:
                        accumulator.add(1)
                    else:
                        accumulator.add_value(fn(row))
        out_rows = [
            key + tuple(acc.result() for acc in groups[key]) for key in order
        ]
        out_tags = [first_tag[key] for key in order]
        return out_tags, out_rows

    def _stream_hash_agg(self, node: HashAggP) -> Iterator[Tagged]:
        from repro.engine.executor import _partition_of, _spill_partitions

        fns: _AggFns = self.state.fns[id(node)]
        governor = self.state.governor
        size = self.state.params.batch_size
        in_tags, in_rows = self.drain(node.child)
        self._note_resident(node, len(in_rows))
        table_bytes = int(len(in_rows) * fns.width)
        degraded = False
        if governor is not None:
            try:
                governor.reserve_memory(table_bytes, "HashAgg table")
            except MemoryBudgetExceeded:
                degraded = True
        if degraded:
            self.state.degraded_ops[self.w].add(id(node))
            self.state.pstats[self.w].degraded = True
            limit = governor.budget.memory_limit_bytes
            parts = _spill_partitions(table_bytes, limit)
            self.shard.sort_spill_pages += int(
                2 * pages_for_rows(len(in_rows), fns.width, self.state.params)
            )
            partitions: List[List[Tuple[int, Row]]] = [[] for _ in range(parts)]
            for tag, row in zip(in_tags, in_rows):
                partitions[_partition_of(fns.key_of(row), parts)].append(
                    (tag, row)
                )
            merged: List[Tuple[int, Row]] = []
            for partition in partitions:
                if governor is not None:
                    governor.check()
                if partition:
                    tags, rows = self._aggregate(
                        node,
                        iter(
                            [
                                (
                                    [tag for tag, _ in partition],
                                    [row for _, row in partition],
                                )
                            ]
                        ),
                    )
                    merged.extend(zip(tags, rows))
            # Sub-partition outputs interleave tags; restore the global
            # first-seen order the in-memory path produces.
            merged.sort(key=lambda item: item[0])
            out_tags = [tag for tag, _ in merged]
            out_rows = [row for _, row in merged]
        else:
            out_tags, out_rows = self._aggregate(
                node, iter([(in_tags, in_rows)])
            )
        self.shard.rows_produced += len(out_rows)
        self._note_rows(node, len(out_rows))
        for start in range(0, len(out_rows), size):
            yield (
                out_tags[start : start + size],
                out_rows[start : start + size],
            )

    def _stream_distinct(self, node: DistinctP) -> Iterator[Tagged]:
        from repro.engine.executor import _canon_key

        seen = set()
        out_tags: List[int] = []
        out_rows: List[Row] = []
        for tags, rows in self.stream(node.child):
            for tag, row in zip(tags, rows):
                self._check()
                self.shard.rows_compared += 1
                key = _canon_key(row)
                if key not in seen:
                    seen.add(key)
                    out_tags.append(tag)
                    out_rows.append(row)
        self._note_resident(node, len(out_rows))
        self.shard.rows_produced += len(out_rows)
        self._note_rows(node, len(out_rows))
        size = self.state.params.batch_size
        for start in range(0, len(out_rows), size):
            yield (
                out_tags[start : start + size],
                out_rows[start : start + size],
            )


def _worker_main(state: _RegionState, w: int) -> None:
    out = state.queues[w]
    pstats = state.pstats[w]
    started = time.perf_counter()
    worker = _Worker(state, w)

    def put(item: Any) -> None:
        while True:
            try:
                out.put(item, timeout=_POLL_SECONDS)
                return
            except queue.Full:
                pstats.queue_wait_seconds += _POLL_SECONDS
                if state.abort.is_set():
                    raise _Aborted()

    try:
        for tags, rows in worker.stream(state.region.root):
            pstats.rows += len(rows)
            put((tags, rows))
        put(_DONE)
    except _Aborted:
        pass
    except BaseException as error:  # noqa: BLE001 - re-raised by driver
        state.errors[w] = error
        state.abort.set()
    finally:
        pstats.wall_seconds = time.perf_counter() - started
        # Best-effort sentinel so a blocked driver wakes immediately.
        try:
            out.put_nowait(_DONE)
        except queue.Full:
            pass


# ----------------------------------------------------------------------
# Driver: stage 1 partitioning, stage 2 launch, gather-side merge
# ----------------------------------------------------------------------
def _partition_source(
    ex: ExchangeP,
    rows: List[Row],
    dop: int,
    hashes: Optional[Sequence[int]] = None,
) -> List[List[Tuple[int, Row]]]:
    """Split one drained source into per-worker tagged row lists.

    ``hashes``, when supplied by a columnar driver, are precomputed
    per-row key hashes from :func:`repro.expr.vector.hash_columns`;
    the kernel's scalar/vector parity guarantees ``hashes[i] %% dop``
    equals :func:`partition_index` on the row's key values, so row and
    columnar sources of the same join land keys on the same worker.
    """
    parts: List[List[Tuple[int, Row]]] = [[] for _ in range(dop)]
    scheme = ex.target.scheme
    if scheme is PartitionScheme.BROADCAST:
        tagged = list(enumerate(rows))
        return [list(tagged) for _ in range(dop)]
    if scheme is PartitionScheme.HASH:
        if hashes is not None:
            for tag, row in enumerate(rows):
                parts[int(hashes[tag]) % dop].append((tag, row))
            return parts
        positions = ex.key_positions
        for tag, row in enumerate(rows):
            key = tuple(row[p] for p in positions)
            parts[partition_index(key, dop)].append((tag, row))
        return parts
    # ROUND_ROBIN
    for tag, row in enumerate(rows):
        parts[tag % dop].append((tag, row))
    return parts


def _negotiate_dop(
    ctx: ExecContext, requested: int, est_bytes: int
) -> Tuple[int, List[int]]:
    """Lease working memory per worker; halve DOP instead of failing.

    Returns the effective degree and the granted leases (released by
    the caller when the region finishes).  Without an admission
    controller the requested degree stands.
    """
    admission = ctx.admission
    if admission is None:
        return requested, []
    pool = admission.pool
    effective = max(1, requested)
    while True:
        per_worker = max(1, est_bytes // max(1, effective))
        grants = [pool.lease(per_worker) for _ in range(effective)]
        if effective <= 1 or sum(grants) * 2 >= per_worker * effective:
            return effective, grants
        for grant in grants:
            pool.release(grant)
        effective = max(1, effective // 2)


def gather_iterator(
    op: GatherP,
    catalog: Catalog,
    ctx: ExecContext,
    drain_source: Callable[
        [ExchangeP], Tuple[List[Row], Optional[Sequence[int]]]
    ],
) -> Optional[Iterator[Batch]]:
    """The parallel execution of one gather region, or None to fall
    back to serial pass-through execution (unsupported region shape or
    admission degraded the region all the way to one worker).

    ``drain_source`` drains one distributing exchange's child to rows
    and may return precomputed per-row partition hashes (the columnar
    driver hashes key columns vectorized; the row driver returns None
    and the runtime hashes per row)."""
    region = analyze_region(op)
    if region is None:
        return None
    width_of = _region_widths(region)
    est_bytes = int(
        sum(max(0.0, ex.child.est_rows) * width_of[id(ex)] for ex in region.inputs)
    )
    dop, leases = _negotiate_dop(ctx, op.dop, est_bytes)
    if dop <= 1:
        _release_leases(ctx, leases)
        return None
    return _run_region(
        region, catalog, ctx, drain_source, dop, leases, width_of
    )


def _region_widths(region: _Region) -> Dict[int, float]:
    from repro.engine.executor import _row_width

    return {
        id(ex): _row_width(ex.child.output_schema()) for ex in region.inputs
    }


def _release_leases(ctx: ExecContext, leases: List[int]) -> None:
    if leases and ctx.admission is not None:
        for grant in leases:
            ctx.admission.pool.release(grant)


def _run_region(
    region: _Region,
    catalog: Catalog,
    ctx: ExecContext,
    drain_source: Callable[
        [ExchangeP], Tuple[List[Row], Optional[Sequence[int]]]
    ],
    dop: int,
    leases: List[int],
    width_of: Dict[int, float],
) -> Iterator[Batch]:
    op = region.gather
    try:
        # ---- Stage 1: drain sources serially, partition, account ----
        parts: Dict[int, List[List[Tuple[int, Row]]]] = {}
        for ex in region.inputs:
            rows, hashes = drain_source(ex)
            if ctx.runtime is not None:
                node = ctx.runtime.node_for(ex)
                node.invocations += 1
                node.actual_rows += len(rows)
            ctx.counters.exchange_pages += exchange_page_count(
                len(rows),
                width_of[id(ex)],
                ex.target.scheme,
                dop,
                ctx.params,
            )
            parts[id(ex)] = _partition_source(ex, rows, dop, hashes)
        fns = _build_fns(region, ctx)
        state = _RegionState(region, ctx, dop, fns, parts)

        # ---- Stage 2: workers + deterministic tag merge -------------
        for w in range(dop):
            thread = threading.Thread(
                target=_worker_main,
                args=(state, w),
                name=f"repro-parallel-{w}",
                daemon=True,
            )
            state.threads.append(thread)
            thread.start()
        gathered = 0
        try:
            for batch in _merge(state):
                gathered += len(batch)
                yield batch
        finally:
            state.abort.set()
            _join_workers(state)
            # The gather itself ships every merged page to the
            # coordinator; charged in the finally so an early-closed
            # consumer (LIMIT) still pays for batches that crossed --
            # the same contract as the serial pass-through.
            from repro.engine.executor import _row_width

            ctx.counters.exchange_pages += exchange_page_count(
                gathered,
                _row_width(op.child.output_schema()),
                PartitionScheme.SINGLETON,
                1,
                ctx.params,
            )
        first_error = next(
            (error for error in state.errors if error is not None), None
        )
        if first_error is not None:
            raise first_error
        _merge_stats(state)
    finally:
        _release_leases(ctx, leases)


def _join_workers(state: _RegionState) -> None:
    """Join every worker, draining queues so blocked puts can finish."""
    for w, thread in enumerate(state.threads):
        while thread.is_alive():
            try:
                state.queues[w].get_nowait()
            except queue.Empty:
                pass
            thread.join(timeout=_POLL_SECONDS)


def _merge(state: _RegionState) -> Iterator[Batch]:
    """Incremental k-way merge of worker outputs by global row tag."""
    size = state.params.batch_size
    buffers: List[deque] = [deque() for _ in range(state.dop)]
    done = [False] * state.dop

    def refill(w: int) -> None:
        while not buffers[w] and not done[w]:
            waited = time.perf_counter()
            try:
                item = state.queues[w].get(timeout=_POLL_SECONDS)
            except queue.Empty:
                state.pstats[w].queue_wait_seconds += (
                    time.perf_counter() - waited
                )
                if state.abort.is_set() or not state.threads[w].is_alive():
                    done[w] = True
                    return
                continue
            if item is _DONE:
                done[w] = True
                return
            tags, rows = item
            buffers[w].extend(zip(tags, rows))

    heap: List[Tuple[int, int]] = []
    for w in range(state.dop):
        refill(w)
        if buffers[w]:
            heapq.heappush(heap, (buffers[w][0][0], w))
    out: Batch = []
    while heap:
        _tag, w = heapq.heappop(heap)
        _t, row = buffers[w].popleft()
        out.append(row)
        if not buffers[w]:
            refill(w)
        if buffers[w]:
            heapq.heappush(heap, (buffers[w][0][0], w))
        if len(out) >= size:
            yield out
            out = []
    if state.abort.is_set():
        # A worker failed: surface its typed error (raised by the
        # caller after joining), not a truncated result.
        return
    if out:
        yield out


def _merge_stats(state: _RegionState) -> None:
    """Fold worker shards into the session context, partition order.

    Runs only on successful completion; a failed or abandoned region
    leaves the main counters reflecting stage 1 alone.
    """
    ctx = state.ctx
    region = state.region
    op_index = {id(node): node for node in region.ops}
    for w in range(state.dop):
        ctx.counters.merge_from(state.shards[w])
        state.pstats[w].work_cost = state.shards[w].observed_cost(ctx.params)
    if ctx.runtime is not None:
        for node_id, node in op_index.items():
            stats = ctx.runtime.node_for(node)
            total = sum(
                state.op_rows[w].get(node_id, 0) for w in range(state.dop)
            )
            resident = sum(
                state.op_resident[w].get(node_id, 0) for w in range(state.dop)
            )
            stats.actual_rows += total
            stats.invocations = max(stats.invocations, 1)
            stats.peak_resident_rows = max(stats.peak_resident_rows, resident)
        gather_stats = ctx.runtime.node_for(region.gather)
        gather_stats.partitions = list(state.pstats)
    degraded_ids = set()
    for w in range(state.dop):
        degraded_ids.update(state.degraded_ops[w])
    for node_id in degraded_ids:
        ctx.counters.degraded_operators += 1
        if ctx.runtime is not None:
            ctx.runtime.node_for(op_index[node_id]).degraded = True
