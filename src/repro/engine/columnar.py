"""The columnar batch engine: numpy column payloads between operators.

Third execution strategy beside the row-batch engine and the legacy
materializing engine (see :mod:`repro.engine.executor`).  Activated by
``ExecContext.columnar_mode = True`` (only meaningful on top of
``batch_mode``); the row-batch path stays the differential oracle.

Batches are :class:`ColumnarBatch` objects -- one
:class:`~repro.expr.vector.VColumn` (numpy values + boolean validity
mask) per output slot -- instead of lists of row tuples.  Operators
with a profitable whole-batch form (scan, filter, project, limit,
hash join, hash/stream aggregate, union, exchange, sort, distinct) have
columnar handlers; everything else (index scans, the three row-centric
joins, Apply, CHECK, UDF filters) *bridges*: the operator and its
subtree run on the row-batch engine and its output batches are
converted to columns at the boundary.  Bridged operators keep their
row-engine accounting; columnar handlers mirror the row handlers'
counters at batch granularity (same totals, fewer increments).

Semantics contract: for any plan, draining this engine produces rows
bit-identical to the row-batch engine -- same values, same types, same
order, same first error.  The guards that make numpy safe for that
contract (int64 overflow, the 2**53 cast horizon, NaN-vs-NULL, ordered
float accumulation) live in :mod:`repro.expr.vector` and in the
aggregate kernels below.  NaN *join, group, and distinct keys* are
canonicalized to one shared NaN object on every backend (see
``executor._canon_key_part``), so NaN==NaN as a key everywhere and
columnar transport -- which cannot preserve float object identity --
agrees with both row engines.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.catalog.catalog import Catalog
from repro.catalog.schema import ColumnType
from repro.cost.model import pages_for_rows
from repro.engine.context import ExecContext
from repro.engine.interpreter import sort_rows
from repro.errors import ExecutionError, MemoryBudgetExceeded
from repro.expr.aggregates import AggFunc
from repro.expr.schema import StreamSchema
from repro.expr.vector import VColumn, compile_vector, compile_vector_predicate
from repro.logical.operators import JoinKind
from repro.physical.plans import (
    DistinctP,
    ExchangeP,
    FilterP,
    GatherP,
    HashAggP,
    HashJoinP,
    LimitP,
    PhysicalOp,
    ProjectP,
    SeqScanP,
    SortP,
    StreamAggP,
    UnionAllP,
)
from repro.physical.properties import PartitionScheme

Row = Tuple[Any, ...]


# ======================================================================
# Columnar batches
# ======================================================================
class ColumnarBatch:
    """A batch as columns: one VColumn per schema slot, shared length.

    Columns crossing operator boundaries never carry deferred errors --
    every handler raises them before yielding.
    """

    __slots__ = ("vcolumns", "length", "_row_cache")

    def __init__(self, vcolumns: List[VColumn], length: int) -> None:
        self.vcolumns = vcolumns
        self.length = length
        self._row_cache: Optional[List[Row]] = None

    # -- construction ---------------------------------------------------
    @staticmethod
    def from_rows(rows: Sequence[Row], schema: StreamSchema) -> "ColumnarBatch":
        n = len(rows)
        vcolumns = [
            _ingest_column(
                [row[j] for row in rows], schema.type_at(j), n
            )
            for j in range(schema.arity)
        ]
        return ColumnarBatch(vcolumns, n)

    # -- materialization ------------------------------------------------
    def to_rows(self) -> List[Row]:
        """Rows as native-Python tuples.

        ``tolist`` converts numpy scalars back to Python ints/floats
        (bit-identical values); object columns return the very objects
        that were ingested.  Invalid lanes become None regardless of the
        garbage the values array holds there.
        """
        if self.length == 0:
            return []
        columns = []
        for vc in self.vcolumns:
            values = vc.values.tolist()
            if not vc.valid.all():
                valid = vc.valid
                values = [
                    v if valid[i] else None for i, v in enumerate(values)
                ]
            columns.append(values)
        if not columns:
            return [() for _ in range(self.length)]
        return list(zip(*columns))

    def rows(self) -> List[Row]:
        """Cached row view (for row-at-a-time fallback kernels)."""
        if self._row_cache is None:
            self._row_cache = self.to_rows()
        return self._row_cache

    # -- restructuring --------------------------------------------------
    def take(self, indices: np.ndarray) -> "ColumnarBatch":
        vcolumns = [
            VColumn(vc.values[indices], vc.valid[indices])
            for vc in self.vcolumns
        ]
        return ColumnarBatch(vcolumns, len(indices))

    def compress(self, mask: np.ndarray) -> "ColumnarBatch":
        return self.take(np.nonzero(mask)[0])

    def slice(self, start: int, stop: int) -> "ColumnarBatch":
        vcolumns = [
            VColumn(vc.values[start:stop], vc.valid[start:stop])
            for vc in self.vcolumns
        ]
        return ColumnarBatch(vcolumns, max(0, stop - start))

    @staticmethod
    def concat(
        batches: List["ColumnarBatch"], schema: StreamSchema
    ) -> "ColumnarBatch":
        if not batches:
            return ColumnarBatch.from_rows([], schema)
        if len(batches) == 1:
            return batches[0]
        vcolumns = []
        for j in range(schema.arity):
            # Mixed dtypes across batches (an int64 batch beside an
            # object-fallback batch) promote to object, never lossily.
            values = np.concatenate([b.vcolumns[j].values for b in batches])
            valid = np.concatenate([b.vcolumns[j].valid for b in batches])
            vcolumns.append(VColumn(values, valid))
        return ColumnarBatch(vcolumns, sum(b.length for b in batches))


def _ingest_column(
    values: List[Any], col_type: Optional[object], n: int
) -> VColumn:
    """Build one VColumn from Python values, honouring dtype fallbacks.

    INT columns try int64 and fall back to object when any value
    overflows (Python ints are arbitrary precision; numpy would wrap).
    FLOAT columns store NaN in invalid lanes, but the validity mask is
    authoritative -- a NaN in a *valid* lane is a value, not a NULL.
    Everything else (strings, untyped derived columns) stays object,
    preserving value identity exactly.
    """
    valid = np.fromiter((v is not None for v in values), dtype=bool, count=n)
    if col_type is ColumnType.INT:
        try:
            data = np.fromiter(
                (0 if v is None else v for v in values),
                dtype=np.int64,
                count=n,
            )
            return VColumn(data, valid)
        except OverflowError:
            pass
    elif col_type is ColumnType.FLOAT:
        data = np.fromiter(
            (np.nan if v is None else v for v in values),
            dtype=np.float64,
            count=n,
        )
        return VColumn(data, valid)
    data = np.empty(n, dtype=object)
    for i, v in enumerate(values):
        data[i] = v
    return VColumn(data, valid)


def _raise_first_error(vcolumns: Sequence[VColumn]) -> None:
    """Raise the error a row-at-a-time loop would hit first: lowest lane
    wins; on the same lane, the earliest expression (list order) wins."""
    best_lane: Optional[int] = None
    best: Optional[ExecutionError] = None
    for vc in vcolumns:
        if not vc.errors:
            continue
        lane = min(vc.errors)
        if best_lane is None or lane < best_lane:
            best_lane = lane
            best = vc.errors[lane]
    if best is not None:
        raise best


def _key_tuples(key_columns: List[VColumn], n: int) -> List[Tuple[Any, ...]]:
    """Join/group keys as native tuples (None in invalid lanes).

    NaN lanes are canonicalized to the row engines' shared NaN sentinel
    so key tuples hash and compare identically across all backends
    (``tolist`` materializes fresh float objects, which would otherwise
    make every NaN key distinct).
    """
    from repro.engine.executor import _canon_key_part

    columns = []
    for vc in key_columns:
        values = [_canon_key_part(v) for v in vc.values.tolist()]
        if not vc.valid.all():
            valid = vc.valid
            values = [v if valid[i] else None for i, v in enumerate(values)]
        columns.append(values)
    if not columns:
        return [() for _ in range(n)]
    return list(zip(*columns))


# ======================================================================
# Table column cache
# ======================================================================
def _table_columns(
    table: Any, schema: StreamSchema, snapshot: Any = None
) -> Tuple[List[VColumn], int]:
    """Columnar image of a heap table; returns ``(columns, row_count)``.

    Flat tables (no in-flight MVCC versions) cache the image on the
    table, invalidated by its data version -- which only moves at commit
    boundaries, so cached images are always committed state.  Non-flat
    tables build a transient image of exactly the rows visible to the
    snapshot and never cache it: visibility is per-snapshot, and the
    version counter does not move for uncommitted writes.
    """
    if not table.is_flat:
        rows = [row for _row_id, row in table.visible_rows(snapshot)]
        n = len(rows)
        return (
            [
                _ingest_column([row[j] for row in rows], schema.type_at(j), n)
                for j in range(schema.arity)
            ],
            n,
        )
    version = table.data_version
    cached = table.runtime_cache.get("columnar")
    if cached is not None and cached[0] == version:
        return cached[1], table.row_count
    rows = table.rows()
    n = len(rows)
    vcolumns = [
        _ingest_column([row[j] for row in rows], schema.type_at(j), n)
        for j in range(schema.arity)
    ]
    table.runtime_cache["columnar"] = (version, vcolumns)
    return vcolumns, n


# ======================================================================
# Driver
# ======================================================================
def drain_columns(
    op: PhysicalOp, catalog: Catalog, ctx: ExecContext
) -> List[Row]:
    """Fully evaluate a plan with the columnar engine; rows out."""
    out: List[Row] = []
    gen = stream_columns(op, catalog, ctx)
    try:
        for cbatch in gen:
            out.extend(cbatch.to_rows())
    finally:
        gen.close()
    return out


def stream_columns(
    op: PhysicalOp, catalog: Catalog, ctx: ExecContext
) -> Iterator[ColumnarBatch]:
    """Columnar twin of ``stream_batches``: same per-pull accounting
    (wall time, pages, retries, actual rows, governor protocol), batch
    lengths read off ``ColumnarBatch.length``.

    Operators without a columnar handler bridge to the row-batch engine,
    whose driver already accounts for them -- the bridge adds nothing.
    """
    handler = _COLUMNAR_HANDLERS.get(type(op))
    if handler is None:
        for op_type, candidate in _COLUMNAR_HANDLERS.items():
            if isinstance(op, op_type):
                handler = candidate
                break
    if handler is None:
        yield from _bridge(op, catalog, ctx)
        return
    governor = ctx.governor
    if governor is not None:
        governor.check()
    node = ctx.runtime.node_for(op) if ctx.runtime is not None else None
    if node is not None:
        node.invocations += 1
    inner = handler(op, catalog, ctx)
    produced = 0
    try:
        while True:
            if node is None:
                try:
                    cbatch = next(inner)
                except StopIteration:
                    return
            else:
                pages_before = ctx.counters.total_page_reads
                retries_before = ctx.counters.retries
                start = time.perf_counter()
                try:
                    cbatch = next(inner)
                except StopIteration:
                    node.wall_seconds += time.perf_counter() - start
                    node.pages_read += (
                        ctx.counters.total_page_reads - pages_before
                    )
                    node.retries += ctx.counters.retries - retries_before
                    return
                node.wall_seconds += time.perf_counter() - start
                node.pages_read += ctx.counters.total_page_reads - pages_before
                node.retries += ctx.counters.retries - retries_before
                node.actual_rows += cbatch.length
                node.peak_resident_rows = max(
                    node.peak_resident_rows, cbatch.length
                )
            produced += cbatch.length
            if governor is not None:
                governor.on_rows(produced)
                governor.tick(cbatch.length)
            yield cbatch
    finally:
        inner.close()


def _bridge(
    op: PhysicalOp, catalog: Catalog, ctx: ExecContext
) -> Iterator[ColumnarBatch]:
    """Run an operator (and its whole subtree) on the row-batch engine,
    converting its output batches to columns at this boundary."""
    from repro.engine.executor import stream_batches

    schema = op.output_schema()
    child = stream_batches(op, catalog, ctx)
    try:
        for rows in child:
            yield ColumnarBatch.from_rows(rows, schema)
    finally:
        child.close()


def _cdrain(
    op: PhysicalOp, catalog: Catalog, ctx: ExecContext
) -> ColumnarBatch:
    """Pull a subplan to exhaustion as one concatenated columnar batch."""
    batches: List[ColumnarBatch] = []
    gen = stream_columns(op, catalog, ctx)
    try:
        for cbatch in gen:
            batches.append(cbatch)
    finally:
        gen.close()
    return ColumnarBatch.concat(batches, op.output_schema())


def _note_resident(ctx: ExecContext, op: PhysicalOp, count: int) -> None:
    if ctx.runtime is not None:
        node = ctx.runtime.node_for(op)
        node.peak_resident_rows = max(node.peak_resident_rows, count)


def _chunks(
    rows: List[Row], schema: StreamSchema, size: int
) -> Iterator[ColumnarBatch]:
    for start in range(0, len(rows), size):
        yield ColumnarBatch.from_rows(rows[start:start + size], schema)


# ======================================================================
# Streaming operators
# ======================================================================
def _cstream_seq_scan(
    op: SeqScanP, catalog: Catalog, ctx: ExecContext
) -> Iterator[ColumnarBatch]:
    table = catalog.table(op.table)
    schema = op.output_schema()
    batch_size = ctx.params.batch_size
    # Page reads stay up-front so the fault-injection schedule is
    # identical to both row engines'.
    for page_no in range(table.page_count):
        ctx.read_page(op.table, page_no, sequential=True)
    columns, n = _table_columns(table, schema, ctx.snapshot)
    keep = (
        compile_vector_predicate(op.predicate, schema)
        if op.predicate is not None
        else None
    )
    for start in range(0, n, batch_size):
        stop = min(start + batch_size, n)
        cbatch = ColumnarBatch(
            [
                VColumn(vc.values[start:stop], vc.valid[start:stop])
                for vc in columns
            ],
            stop - start,
        )
        if keep is not None:
            ctx.counters.rows_compared += cbatch.length
            cbatch = cbatch.compress(keep(cbatch))
        if cbatch.length:
            ctx.counters.rows_produced += cbatch.length
            yield cbatch


def _cstream_filter(
    op: FilterP, catalog: Catalog, ctx: ExecContext
) -> Iterator[ColumnarBatch]:
    schema = op.child.output_schema()
    keep = compile_vector_predicate(op.predicate, schema)
    child = stream_columns(op.child, catalog, ctx)
    try:
        for cbatch in child:
            ctx.counters.rows_compared += cbatch.length
            out = cbatch.compress(keep(cbatch))
            if out.length:
                ctx.counters.rows_produced += out.length
                yield out
    finally:
        child.close()


def _cstream_project(
    op: ProjectP, catalog: Catalog, ctx: ExecContext
) -> Iterator[ColumnarBatch]:
    schema = op.child.output_schema()
    kernels = [compile_vector(item.expr, schema) for item in op.items]
    child = stream_columns(op.child, catalog, ctx)
    try:
        for cbatch in child:
            outputs = [kernel(cbatch) for kernel in kernels]
            _raise_first_error(outputs)
            out = ColumnarBatch(
                [VColumn(vc.values, vc.valid) for vc in outputs],
                cbatch.length,
            )
            ctx.counters.rows_produced += out.length
            yield out
    finally:
        child.close()


def _cstream_limit(
    op: LimitP, catalog: Catalog, ctx: ExecContext
) -> Iterator[ColumnarBatch]:
    to_skip = op.offset
    remaining = op.limit
    child = stream_columns(op.child, catalog, ctx)
    try:
        if remaining == 0:
            return
        for cbatch in child:
            if to_skip:
                if to_skip >= cbatch.length:
                    to_skip -= cbatch.length
                    continue
                cbatch = cbatch.slice(to_skip, cbatch.length)
                to_skip = 0
            if remaining is not None and cbatch.length > remaining:
                cbatch = cbatch.slice(0, remaining)
            if remaining is not None:
                remaining -= cbatch.length
            ctx.counters.rows_produced += cbatch.length
            yield cbatch
            if remaining is not None and remaining <= 0:
                return
    finally:
        child.close()


def _cstream_union_all(
    op: UnionAllP, catalog: Catalog, ctx: ExecContext
) -> Iterator[ColumnarBatch]:
    for side in (op.left, op.right):
        child = stream_columns(side, catalog, ctx)
        try:
            for cbatch in child:
                ctx.counters.rows_produced += cbatch.length
                yield cbatch
        finally:
            child.close()


def _cdrain_exchange_input(
    ex: ExchangeP, catalog: Catalog, ctx: ExecContext
) -> Tuple[List[Row], Optional[np.ndarray]]:
    """Drain one distributing exchange's child columnar for stage 1.

    Hash exchanges get their partition hashes computed *vectorized*
    over the key columns (the shared kernel in
    :mod:`repro.expr.vector`); the runtime then assigns partitions by
    ``hash %% dop``, landing each key on the same worker the row
    engine's scalar hash would pick.
    """
    from repro.expr.vector import hash_columns

    cbatch = _cdrain(ex.child, catalog, ctx)
    hashes: Optional[np.ndarray] = None
    positions = getattr(ex, "key_positions", None)
    if ex.target.scheme is PartitionScheme.HASH and positions:
        hashes = hash_columns(
            [
                (cbatch.vcolumns[p].values, cbatch.vcolumns[p].valid)
                for p in positions
            ]
        )
    return cbatch.rows(), hashes


def _cstream_exchange(
    op: ExchangeP, catalog: Catalog, ctx: ExecContext
) -> Iterator[ColumnarBatch]:
    from repro.engine.parallel import exchange_page_count, gather_iterator

    if isinstance(op, GatherP) and ctx.parallel_mode and op.dop > 1:
        # Fan the region below this gather out across the shared worker
        # pool; sources are drained columnar (vectorized partition
        # hashing), workers run the row twins, and the merged output is
        # re-columnarized here.  Falls through to the serial
        # pass-through when the region shape is unsupported or
        # admission degraded it to one worker.
        region = gather_iterator(
            op,
            catalog,
            ctx,
            lambda ex: _cdrain_exchange_input(ex, catalog, ctx),
        )
        if region is not None:
            schema = op.output_schema()
            for rows in region:
                yield ColumnarBatch.from_rows(rows, schema)
            return
    width = op.child.output_schema().row_width_bytes()
    total = 0
    child = stream_columns(op.child, catalog, ctx)
    try:
        for cbatch in child:
            total += cbatch.length
            yield cbatch
    finally:
        child.close()
        ctx.counters.exchange_pages += exchange_page_count(
            total, width, op.target.scheme, op.target.degree, ctx.params
        )


def _cstream_sort(
    op: SortP, catalog: Catalog, ctx: ExecContext
) -> Iterator[ColumnarBatch]:
    # Sorting is row-centric (stable multi-key Python sort with SQL NULL
    # placement), but the subtree still runs columnar; only the final
    # ordering pass converts to rows.
    cbatch = _cdrain(op.child, catalog, ctx)
    _note_resident(ctx, op, cbatch.length)
    out = sort_rows(cbatch.to_rows(), op.child.output_schema(), op.sort_order)
    ctx.counters.rows_produced += len(out)
    yield from _chunks(out, op.output_schema(), ctx.params.batch_size)


def _cstream_distinct(
    op: DistinctP, catalog: Catalog, ctx: ExecContext
) -> Iterator[ColumnarBatch]:
    from repro.engine.executor import _canon_key

    governor = ctx.governor
    seen = set()
    out: List[Row] = []
    child = stream_columns(op.child, catalog, ctx)
    try:
        for cbatch in child:
            if governor is not None:
                governor.tick(cbatch.length)
            ctx.counters.rows_compared += cbatch.length
            for row in cbatch.to_rows():
                key = _canon_key(row)
                if key not in seen:
                    out.append(row)
                    seen.add(key)
    finally:
        child.close()
    _note_resident(ctx, op, len(out))
    ctx.counters.rows_produced += len(out)
    yield from _chunks(out, op.output_schema(), ctx.params.batch_size)


# ======================================================================
# Hash join
# ======================================================================
def _cstream_hash_join(
    op: HashJoinP, catalog: Catalog, ctx: ExecContext
) -> Iterator[ColumnarBatch]:
    from repro.engine.executor import (
        _SUPPORTED_JOIN_KINDS,
        _key_getter,
        _partition_of,
        _predicate_fn,
        _spill_partitions,
    )

    if op.kind not in _SUPPORTED_JOIN_KINDS:
        raise ExecutionError(f"hash join cannot run kind {op.kind}")
    build_cb = _cdrain(op.right, catalog, ctx)
    left_schema = op.left.output_schema()
    right_schema = op.right.output_schema()
    combined = left_schema.concat(right_schema)
    left_positions = [left_schema.position(k) for k in op.left_keys]
    right_positions = [right_schema.position(k) for k in op.right_keys]
    residual_kernel = (
        compile_vector_predicate(op.residual, combined)
        if op.residual is not None
        else None
    )
    governor = ctx.governor
    build_width = right_schema.row_width_bytes()
    build_bytes = int(build_cb.length * build_width)
    build_pages = pages_for_rows(build_cb.length, build_width, ctx.params)
    _note_resident(ctx, op, build_cb.length)

    degraded = False
    if governor is not None:
        try:
            governor.reserve_memory(build_bytes, "HashJoin build")
        except MemoryBudgetExceeded:
            degraded = True

    if degraded:
        # Grace-style partitioned fallback, row-based: the vectorized
        # probe gains nothing once both sides must be spilled anyway.
        # Mirrors the row engine's degraded path counter for counter.
        right_rows = build_cb.to_rows()
        left_rows = drain_columns(op.left, catalog, ctx)
        _note_resident(ctx, op, len(right_rows) + len(left_rows))
        left_key = _key_getter(left_schema, op.left_keys)
        right_key = _key_getter(right_schema, op.right_keys)
        residual = (
            _predicate_fn(op.residual, combined, ctx)
            if op.residual is not None
            else None
        )
        probe_pages = pages_for_rows(
            len(left_rows), left_schema.row_width_bytes(), ctx.params
        )
        if build_pages > ctx.params.hash_memory_pages:
            ctx.counters.sort_spill_pages += int(
                2 * (build_pages + probe_pages)
            )
        parts = _spill_partitions(
            build_bytes, governor.budget.memory_limit_bytes
        )
        ctx.counters.degraded_operators += 1
        if ctx.runtime is not None:
            ctx.runtime.node_for(op).degraded = True
        ctx.counters.sort_spill_pages += int(2 * (build_pages + probe_pages))
        build_parts: List[List[Row]] = [[] for _ in range(parts)]
        for rrow in right_rows:
            build_parts[_partition_of(right_key(rrow), parts)].append(rrow)
        probe_parts: List[List[Row]] = [[] for _ in range(parts)]
        for lrow in left_rows:
            probe_parts[_partition_of(left_key(lrow), parts)].append(lrow)
        pad = (None,) * right_schema.arity
        out: List[Row] = []
        for build_part, probe_part in zip(build_parts, probe_parts):
            governor.check()
            build: Dict[Tuple[Any, ...], List[Row]] = {}
            for rrow in build_part:
                key = right_key(rrow)
                ctx.counters.rows_compared += 1
                if any(part is None for part in key):
                    continue
                build.setdefault(key, []).append(rrow)
            for lrow in probe_part:
                governor.tick()
                key = left_key(lrow)
                ctx.counters.rows_compared += 1
                candidates = (
                    build.get(key, [])
                    if not any(part is None for part in key)
                    else []
                )
                matched = []
                for rrow in candidates:
                    if residual is not None:
                        ctx.counters.rows_compared += 1
                        if not residual(lrow + rrow):
                            continue
                    matched.append(rrow)
                if op.kind in (JoinKind.INNER, JoinKind.CROSS):
                    out.extend(lrow + rrow for rrow in matched)
                elif op.kind is JoinKind.LEFT_OUTER:
                    if matched:
                        out.extend(lrow + rrow for rrow in matched)
                    else:
                        out.append(lrow + pad)
                elif op.kind is JoinKind.SEMI:
                    if matched:
                        out.append(lrow)
                elif op.kind is JoinKind.ANTI:
                    if not matched:
                        out.append(lrow)
        ctx.counters.rows_produced += len(out)
        yield from _chunks(out, op.output_schema(), ctx.params.batch_size)
        return

    # In-memory columnar-native path.  Key columns are hashed
    # *vectorized* with the canonical value hash (the same kernel that
    # partitions columnar repartition streams, see
    # :func:`repro.expr.vector.hash_columns`), candidate pairs come
    # from a binary search over the hash-sorted build lanes, and only
    # hash-equal pairs are verified with canonical tuple equality --
    # so collisions and cross-type keys (2 vs 2.0, NaN-as-key) resolve
    # exactly like the row engine's dict probe.
    from repro.expr.vector import hash_columns

    build_keys = _key_tuples(
        [build_cb.vcolumns[p] for p in right_positions], build_cb.length
    )
    ctx.counters.rows_compared += build_cb.length
    build_valid = np.ones(build_cb.length, dtype=bool)
    for p in right_positions:
        build_valid &= build_cb.vcolumns[p].valid
    build_lanes = np.nonzero(build_valid)[0]
    build_hashes = hash_columns(
        [
            (build_cb.vcolumns[p].values, build_cb.vcolumns[p].valid)
            for p in right_positions
        ]
    )[build_lanes]
    # Stable sort keeps equal-hash lanes in build order, so each probe
    # row's matches surface in the row engine's insertion order.
    sort_order = np.argsort(build_hashes, kind="stable")
    sorted_hashes = build_hashes[sort_order]
    sorted_lanes = build_lanes[sort_order]

    probe_seen = 0
    child = stream_columns(op.left, catalog, ctx)
    try:
        for lcb in child:
            probe_seen += lcb.length
            ctx.counters.rows_compared += lcb.length
            probe_keys = _key_tuples(
                [lcb.vcolumns[p] for p in left_positions], lcb.length
            )
            probe_valid = np.ones(lcb.length, dtype=bool)
            for p in left_positions:
                probe_valid &= lcb.vcolumns[p].valid
            probe_lanes = np.nonzero(probe_valid)[0]
            probe_hashes = hash_columns(
                [
                    (lcb.vcolumns[p].values, lcb.vcolumns[p].valid)
                    for p in left_positions
                ]
            )[probe_lanes]
            lo = np.searchsorted(sorted_hashes, probe_hashes, side="left")
            hi = np.searchsorted(sorted_hashes, probe_hashes, side="right")
            counts = hi - lo
            sel = counts > 0
            sel_counts = counts[sel]
            total = int(sel_counts.sum())
            cand_l = np.repeat(probe_lanes[sel], sel_counts)
            starts = np.concatenate(
                ([0], np.cumsum(sel_counts)[:-1])
            ) if len(sel_counts) else np.empty(0, dtype=np.int64)
            within = np.arange(total) - np.repeat(starts, sel_counts)
            cand_r = sorted_lanes[np.repeat(lo[sel], sel_counts) + within]
            keep = [
                k
                for k in range(total)
                if probe_keys[cand_l[k]] == build_keys[cand_r[k]]
            ]
            pairs_l = cand_l[keep].astype(np.int64, copy=False)
            pairs_r = cand_r[keep].astype(np.int64, copy=False)
            if residual_kernel is not None and len(pairs_l):
                gathered = ColumnarBatch(
                    [
                        VColumn(vc.values[pairs_l], vc.valid[pairs_l])
                        for vc in lcb.vcolumns
                    ]
                    + [
                        VColumn(vc.values[pairs_r], vc.valid[pairs_r])
                        for vc in build_cb.vcolumns
                    ],
                    len(pairs_l),
                )
                ctx.counters.rows_compared += len(pairs_l)
                mask = residual_kernel(gathered)
                pairs_l = pairs_l[mask]
                pairs_r = pairs_r[mask]
            out = _join_output(op.kind, lcb, build_cb, pairs_l, pairs_r)
            if out is not None and out.length:
                ctx.counters.rows_produced += out.length
                yield out
    finally:
        child.close()
    if build_pages > ctx.params.hash_memory_pages:
        probe_pages = pages_for_rows(
            probe_seen, left_schema.row_width_bytes(), ctx.params
        )
        ctx.counters.sort_spill_pages += int(2 * (build_pages + probe_pages))


def _join_output(
    kind: JoinKind,
    lcb: ColumnarBatch,
    build_cb: ColumnarBatch,
    pairs_l: np.ndarray,
    pairs_r: np.ndarray,
) -> Optional[ColumnarBatch]:
    """Assemble one probe batch's join output by gather, in the row
    engine's order: probe rows ascending, matches in build order, outer
    pads exactly where the unmatched probe row sits."""
    counts = np.bincount(pairs_l, minlength=lcb.length)
    if kind in (JoinKind.INNER, JoinKind.CROSS):
        out_l, out_r = pairs_l, pairs_r
    elif kind is JoinKind.LEFT_OUTER:
        pad_l = np.nonzero(counts == 0)[0]
        out_l = np.concatenate([pairs_l, pad_l])
        out_r = np.concatenate(
            [pairs_r, np.full(len(pad_l), -1, dtype=np.int64)]
        )
        # Stable sort restores probe order; a probe row has either
        # matches or one pad, never both, so no intra-row ambiguity.
        order = np.argsort(out_l, kind="stable")
        out_l = out_l[order]
        out_r = out_r[order]
    elif kind is JoinKind.SEMI:
        return lcb.take(np.nonzero(counts > 0)[0])
    else:  # ANTI
        return lcb.take(np.nonzero(counts == 0)[0])
    if len(out_l) == 0:
        return None
    left_cols = [
        VColumn(vc.values[out_l], vc.valid[out_l]) for vc in lcb.vcolumns
    ]
    pad_mask = out_r < 0
    if pad_mask.any():
        safe_r = np.where(pad_mask, 0, out_r)
        right_cols = []
        for vc in build_cb.vcolumns:
            if build_cb.length == 0:
                values = np.zeros(len(out_r), dtype=vc.values.dtype)
                valid = np.zeros(len(out_r), dtype=bool)
            else:
                values = vc.values[safe_r]
                valid = vc.valid[safe_r] & ~pad_mask
            right_cols.append(VColumn(values, valid))
    else:
        right_cols = [
            VColumn(vc.values[out_r], vc.valid[out_r])
            for vc in build_cb.vcolumns
        ]
    return ColumnarBatch(left_cols + right_cols, len(out_l))


# ======================================================================
# Aggregation
# ======================================================================
def _cstream_hash_agg(
    op: HashAggP, catalog: Catalog, ctx: ExecContext
) -> Iterator[ColumnarBatch]:
    from repro.engine.executor import _partition_of, _spill_partitions

    cbatch = _cdrain(op.child, catalog, ctx)
    schema = op.child.output_schema()
    governor = ctx.governor
    _note_resident(ctx, op, cbatch.length)
    if governor is not None and op.keys:
        width = schema.row_width_bytes()
        table_bytes = int(cbatch.length * width)
        try:
            governor.reserve_memory(table_bytes, "HashAgg table")
        except MemoryBudgetExceeded:
            parts = _spill_partitions(
                table_bytes, governor.budget.memory_limit_bytes
            )
            ctx.counters.degraded_operators += 1
            if ctx.runtime is not None:
                ctx.runtime.node_for(op).degraded = True
            ctx.counters.sort_spill_pages += int(
                2 * pages_for_rows(cbatch.length, width, ctx.params)
            )
            key_positions = [schema.position(k) for k in op.keys]
            keys = _key_tuples(
                [cbatch.vcolumns[p] for p in key_positions], cbatch.length
            )
            part_ids = np.fromiter(
                (_partition_of(key, parts) for key in keys),
                dtype=np.int64,
                count=cbatch.length,
            )
            out: List[Row] = []
            for part in range(parts):
                governor.check()
                member = part_ids == part
                if member.any():
                    out.extend(
                        _aggregate_columns(
                            op, cbatch.compress(member), schema, ctx
                        )
                    )
            yield from _chunks(out, op.output_schema(), ctx.params.batch_size)
            return
    out = _aggregate_columns(op, cbatch, schema, ctx)
    yield from _chunks(out, op.output_schema(), ctx.params.batch_size)


def _cstream_stream_agg(
    op: StreamAggP, catalog: Catalog, ctx: ExecContext
) -> Iterator[ColumnarBatch]:
    cbatch = _cdrain(op.child, catalog, ctx)
    _note_resident(ctx, op, cbatch.length)
    out = _aggregate_columns(op, cbatch, op.child.output_schema(), ctx)
    yield from _chunks(out, op.output_schema(), ctx.params.batch_size)


def _aggregate_columns(
    op: HashAggP, cbatch: ColumnarBatch, schema: StreamSchema, ctx: ExecContext
) -> List[Row]:
    """Vectorized twin of ``_aggregate_rows``: group ids by factorize,
    then one whole-column accumulation per aggregate call."""
    n = cbatch.length
    if ctx.governor is not None:
        ctx.governor.tick(n)
    ctx.counters.rows_compared += n
    if op.keys:
        key_columns = [
            cbatch.vcolumns[schema.position(k)] for k in op.keys
        ]
        gids, group_keys = _factorize(key_columns, n)
    else:
        gids = np.zeros(n, dtype=np.int64)
        group_keys = [()]
    ngroups = len(group_keys)
    columns = []
    for call in op.aggregates:
        columns.append(
            _aggregate_one(call, cbatch, schema, gids, ngroups, n)
        )
    out = [
        group_keys[g] + tuple(column[g] for column in columns)
        for g in range(ngroups)
    ]
    ctx.counters.rows_produced += len(out)
    return out


def _factorize(
    key_columns: List[VColumn], n: int
) -> Tuple[np.ndarray, List[Tuple[Any, ...]]]:
    """Dense group ids in first-appearance order (the row engine's
    insertion order), plus each group's key tuple."""
    if len(key_columns) == 1:
        vc = key_columns[0]
        kind = vc.values.dtype.kind
        nan_free = kind == "i" or (
            kind == "f" and not np.isnan(vc.values[vc.valid]).any()
        )
        if nan_free:
            return _factorize_single_numeric(vc, n)
    # General path: dict over native key tuples, like the row engine.
    mapping: Dict[Tuple[Any, ...], int] = {}
    gids = np.empty(n, dtype=np.int64)
    group_keys: List[Tuple[Any, ...]] = []
    for i, key in enumerate(_key_tuples(key_columns, n)):
        gid = mapping.get(key)
        if gid is None:
            gid = len(group_keys)
            mapping[key] = gid
            group_keys.append(key)
        gids[i] = gid
    return gids, group_keys


def _factorize_single_numeric(
    vc: VColumn, n: int
) -> Tuple[np.ndarray, List[Tuple[Any, ...]]]:
    """np.unique-based factorize for one NaN-free numeric key.  Slot 0
    is reserved for the NULL group; absent slots are compacted away and
    the survivors renumbered by first appearance."""
    if n == 0:
        return np.empty(0, dtype=np.int64), []
    uniq, inverse = np.unique(vc.values, return_inverse=True)
    inverse = inverse.astype(np.int64) + 1
    if not vc.valid.all():
        inverse = np.where(vc.valid, inverse, 0)
    slots = len(uniq) + 1
    first_seen = np.full(slots, n, dtype=np.int64)
    np.minimum.at(first_seen, inverse, np.arange(n, dtype=np.int64))
    present = np.nonzero(first_seen < n)[0]
    order = present[np.argsort(first_seen[present], kind="stable")]
    rank = np.empty(slots, dtype=np.int64)
    rank[order] = np.arange(len(order), dtype=np.int64)
    gids = rank[inverse]
    uniq_native = uniq.tolist()
    group_keys = [
        (None,) if slot == 0 else (uniq_native[slot - 1],) for slot in order
    ]
    return gids, group_keys


def _aggregate_one(
    call: Any,
    cbatch: ColumnarBatch,
    schema: StreamSchema,
    gids: np.ndarray,
    ngroups: int,
    n: int,
) -> List[Any]:
    """One aggregate call over all groups; returns per-group results.

    Vectorized where numpy reproduces the row accumulator bit for bit
    (COUNT; int SUM/AVG inside proven bounds; NaN-free MIN/MAX);
    everything order- or precision-sensitive (float SUM/AVG, NaN-bearing
    MIN/MAX, DISTINCT, object columns, int sums that could exceed int64)
    folds through the row engine's own Accumulator in lane order.
    """
    if call.is_star:
        counts = np.bincount(gids, minlength=ngroups)
        return [int(c) for c in counts]
    vc = compile_vector(call.arg, schema)(cbatch)
    vc.raise_first()
    func = call.func
    kind = vc.values.dtype.kind
    if not call.distinct and kind in ("i", "f"):
        lanes = np.nonzero(vc.valid)[0]
        grp = gids[lanes]
        values = vc.values[lanes]
        counts = np.bincount(grp, minlength=ngroups)
        if func is AggFunc.COUNT:
            return [int(c) for c in counts]
        if func in (AggFunc.SUM, AggFunc.AVG) and kind == "i":
            bound = 0
            if len(values):
                bound = max(abs(int(values.min())), abs(int(values.max())))
            if len(values) * bound < 2**63:
                sums = np.zeros(ngroups, dtype=np.int64)
                if len(values):
                    order = np.argsort(grp, kind="stable")
                    sorted_grp = grp[order]
                    starts = np.nonzero(
                        np.r_[True, np.diff(sorted_grp) != 0]
                    )[0]
                    sums[sorted_grp[starts]] = np.add.reduceat(
                        values[order], starts
                    )
                if func is AggFunc.SUM:
                    return [
                        int(sums[g]) if counts[g] else None
                        for g in range(ngroups)
                    ]
                return [
                    int(sums[g]) / int(counts[g]) if counts[g] else None
                    for g in range(ngroups)
                ]
            # Bounds cannot rule out int64 overflow: exact Python ints.
        elif func in (AggFunc.MIN, AggFunc.MAX) and (
            kind == "i" or not np.isnan(values).any()
        ):
            reducer = np.minimum if func is AggFunc.MIN else np.maximum
            results: List[Any] = [None] * ngroups
            if len(values):
                order = np.argsort(grp, kind="stable")
                sorted_grp = grp[order]
                starts = np.nonzero(np.r_[True, np.diff(sorted_grp) != 0])[0]
                extremes = reducer.reduceat(values[order], starts)
                for slot, extreme in zip(sorted_grp[starts], extremes):
                    results[slot] = extreme.item()
            return results
    # Accumulator fallback: the row engine's own fold, in lane order.
    accumulators = [call.new_accumulator() for _ in range(ngroups)]
    values_list = vc.values.tolist()
    valid = vc.valid
    gid_list = gids.tolist()
    for i in range(n):
        if valid[i]:
            accumulators[gid_list[i]].add_value(values_list[i])
    return [acc.result() for acc in accumulators]


_COLUMNAR_HANDLERS = {
    SeqScanP: _cstream_seq_scan,
    FilterP: _cstream_filter,
    ProjectP: _cstream_project,
    LimitP: _cstream_limit,
    UnionAllP: _cstream_union_all,
    ExchangeP: _cstream_exchange,
    GatherP: _cstream_exchange,
    SortP: _cstream_sort,
    DistinctP: _cstream_distinct,
    HashJoinP: _cstream_hash_join,
    StreamAggP: _cstream_stream_agg,
    HashAggP: _cstream_hash_agg,
}

# DML runs row-oriented on every engine; the adapters emit the one-row
# rows_affected result as a columnar batch.
from repro.engine.dml import register_columnar as _register_dml  # noqa: E402

_register_dml(_COLUMNAR_HANDLERS)
