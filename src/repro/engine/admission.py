"""Server-wide admission control: one gate in front of every session.

The survey's optimizer picks the cheapest plan for *one* query; a
production server must also decide which queries get to run at all when
offered load exceeds capacity.  PR 2's :class:`ResourceGovernor`
enforces per-query budgets; this module promotes that idea to the
server: one :class:`AdmissionController` shared by every session of a
``Database`` owns

* a **global memory pool** (:class:`MemoryPool`) that leases each
  admitted query a working-memory budget.  When the pool is tight the
  lease shrinks instead of blocking, so spill-capable operators degrade
  to Grace-style partitioned execution -- pressure turns into slower
  queries, not failures;
* a **bounded admission queue** with priority classes and per-query
  deadlines.  A full queue sheds new arrivals immediately and a waiter
  past its deadline is shed with a typed, retryable
  :class:`~repro.errors.QueueTimeout` -- overload produces fast, honest
  rejections instead of an unbounded backlog of doomed work;
* **per-tenant budgets**: a queries-per-second token bucket
  (:class:`TokenBucket`) shed at submission, a memory-share cap on
  pool leases, and fair queue dispatch (among equal priorities the
  tenant with the fewest running queries goes first, so one noisy
  tenant cannot starve the rest);
* a **circuit breaker** (:class:`CircuitBreaker`) over the storage
  fault layer: repeated transient storage failures trip it open and
  subsequent accesses fail fast with
  :class:`~repro.errors.CircuitBreakerOpen` instead of hammering a
  browning-out device; after a cooldown it half-opens and a few probe
  accesses decide whether to close it again;
* a **global retry token bucket**: every in-query retry must take a
  token, so server-wide retry volume stays bounded during brownouts
  (no retry amplification: N queries x M retries cannot multiply).

Everything is cooperative and thread-safe; all waiting happens on one
condition variable, and clocks are injectable so the state machines are
unit-testable without sleeping.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import AdmissionRejected, CircuitBreakerOpen, QueueTimeout

# Priority classes, best first.  Unknown classes are treated as "normal".
PRIORITY_RANKS: Dict[str, int] = {"high": 0, "normal": 1, "low": 2}


def priority_rank(priority: str) -> int:
    """The dispatch rank of a priority class (lower dispatches first)."""
    return PRIORITY_RANKS.get(priority, PRIORITY_RANKS["normal"])


@dataclass(frozen=True)
class AdmissionConfig:
    """Knobs for one :class:`AdmissionController`.

    Attributes:
        max_concurrency: queries allowed to execute at once (slots).
        queue_depth: waiters allowed behind the slots; arrivals beyond
            this are shed immediately with ``reason="queue-full"``.
        queue_timeout_seconds: default deadline a waiter is held to; a
            query's own wall-clock budget tightens it further.
        memory_pool_bytes: total working memory the pool leases from.
        default_query_memory_bytes: lease requested for queries that
            declare no memory budget of their own.
        min_lease_bytes: smallest lease ever granted -- a floor so a
            tight pool degrades queries to spilling rather than
            starving them outright.
        tenant_queries_per_second: per-tenant admission rate (token
            bucket refill); ``inf`` disables rate limiting.
        tenant_burst: per-tenant token-bucket capacity.
        tenant_memory_fraction: largest share of the pool one tenant's
            concurrent leases may hold.
        breaker_failure_threshold: consecutive storage failures that
            trip the circuit breaker open.
        breaker_cooldown_seconds: how long the breaker stays open
            before half-opening to probe.
        breaker_half_open_probes: probe successes needed to close the
            breaker (also the probe-concurrency cap while half-open).
        retry_tokens_per_second: global refill rate of the retry token
            bucket; every in-query retry consumes one token.
        retry_token_burst: retry token bucket capacity.
    """

    max_concurrency: int = 8
    queue_depth: int = 16
    queue_timeout_seconds: float = 0.5
    memory_pool_bytes: int = 64 << 20
    default_query_memory_bytes: int = 8 << 20
    min_lease_bytes: int = 64 << 10
    tenant_queries_per_second: float = math.inf
    tenant_burst: float = 16.0
    tenant_memory_fraction: float = 0.5
    breaker_failure_threshold: int = 5
    breaker_cooldown_seconds: float = 0.05
    breaker_half_open_probes: int = 2
    retry_tokens_per_second: float = 200.0
    retry_token_burst: float = 400.0


class TokenBucket:
    """A thread-safe token bucket with an injectable clock.

    ``rate_per_second`` tokens accrue continuously up to ``burst``;
    :meth:`try_acquire` never blocks -- admission control sheds, it
    does not stall the caller on a rate limit.
    """

    def __init__(
        self,
        rate_per_second: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = rate_per_second
        self.capacity = burst
        self._clock = clock
        self._tokens = burst
        self._last = clock()
        self._lock = threading.Lock()

    @property
    def unlimited(self) -> bool:
        """Whether this bucket never denies (infinite refill rate)."""
        return math.isinf(self.rate)

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; False (no wait) otherwise."""
        if self.unlimited:
            return True
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.capacity, self._tokens + (now - self._last) * self.rate
            )
            self._last = now
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    @property
    def available(self) -> float:
        """Tokens available right now (refill applied)."""
        if self.unlimited:
            return math.inf
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.capacity, self._tokens + (now - self._last) * self.rate
            )
            self._last = now
            return self._tokens


class MemoryPool:
    """The global working-memory pool queries lease budgets from.

    A lease is granted immediately and sized to what is available:
    ``min(requested, pool headroom, tenant headroom)`` floored at
    ``min_lease_bytes``.  The floor deliberately allows transient
    oversubscription -- a tight pool hands out small leases that force
    Grace-style spilling, which is graceful degradation, while a
    blocking pool would stack admission on top of slot queueing.
    """

    def __init__(self, capacity_bytes: int, min_lease_bytes: int) -> None:
        self.capacity = capacity_bytes
        self.min_lease = min(min_lease_bytes, capacity_bytes)
        self.leased = 0
        self.peak_leased = 0
        self.leases_granted = 0
        self.leases_trimmed = 0
        self._lock = threading.Lock()

    def lease(self, requested: int, tenant_headroom: float = math.inf) -> int:
        """Grant a working-memory lease; returns the granted bytes."""
        with self._lock:
            headroom = self.capacity - self.leased
            grant = int(min(requested, headroom, tenant_headroom))
            grant = max(self.min_lease, grant)
            if grant < requested:
                self.leases_trimmed += 1
            self.leased += grant
            self.peak_leased = max(self.peak_leased, self.leased)
            self.leases_granted += 1
            return grant

    def release(self, granted: int) -> None:
        """Return a lease to the pool."""
        with self._lock:
            self.leased -= granted

    @property
    def available(self) -> int:
        """Unleased bytes (may be negative under floor oversubscription)."""
        with self._lock:
            return self.capacity - self.leased


class CircuitBreaker:
    """Closed -> open -> half-open -> closed over storage failures.

    Closed counts *consecutive* failures; reaching the threshold trips
    the breaker open and every access fails fast until the cooldown
    elapses.  The first access after cooldown half-opens the breaker:
    up to ``half_open_probes`` accesses are let through as probes, and
    that many successes close it again while a single probe failure
    re-opens it (and restarts the cooldown).  All transitions are
    clock-driven and lock-protected; the clock is injectable so tests
    advance time explicitly.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_seconds: float = 0.05,
        half_open_probes: int = 2,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.failure_threshold = max(1, failure_threshold)
        self.cooldown_seconds = cooldown_seconds
        self.half_open_probes = max(1, half_open_probes)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._probe_successes = 0
        self.trips = 0
        self.fast_failures = 0
        self.probes = 0

    @property
    def state(self) -> str:
        """Current state, cooldown expiry applied (open may half-open)."""
        with self._lock:
            self._maybe_half_open_locked()
            return self._state

    def _maybe_half_open_locked(self) -> None:
        if (
            self._state == self.OPEN
            and self._clock() - self._opened_at >= self.cooldown_seconds
        ):
            self._state = self.HALF_OPEN
            self._probes_in_flight = 0
            self._probe_successes = 0

    def allow(self) -> bool:
        """May this storage access proceed?  False means fail fast.

        Every True from a non-closed state is a probe: the caller must
        report back via :meth:`on_success` / :meth:`on_failure`.
        """
        with self._lock:
            if self._state == self.CLOSED:
                return True
            self._maybe_half_open_locked()
            if self._state == self.OPEN:
                self.fast_failures += 1
                return False
            if self._probes_in_flight >= self.half_open_probes:
                self.fast_failures += 1
                return False
            self._probes_in_flight += 1
            self.probes += 1
            return True

    def on_success(self) -> None:
        """Report one successful storage access."""
        with self._lock:
            if self._state == self.HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._probe_successes += 1
                if self._probe_successes >= self.half_open_probes:
                    self._state = self.CLOSED
                    self._consecutive_failures = 0
            elif self._state == self.CLOSED:
                self._consecutive_failures = 0

    def on_failure(self) -> None:
        """Report one transiently failed storage access."""
        with self._lock:
            if self._state == self.HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._state = self.OPEN
                self._opened_at = self._clock()
                self.trips += 1
            elif self._state == self.CLOSED:
                self._consecutive_failures += 1
                if self._consecutive_failures >= self.failure_threshold:
                    self._state = self.OPEN
                    self._opened_at = self._clock()
                    self.trips += 1

    def describe(self) -> str:
        """One-line state rendering (the shell's ``\\admission``)."""
        return (
            f"{self.state} (trips={self.trips}, "
            f"fast_failures={self.fast_failures}, probes={self.probes})"
        )


@dataclass
class _TenantState:
    """Book-keeping for one tenant."""

    name: str
    bucket: TokenBucket
    running: int = 0
    leased_bytes: int = 0
    admitted: int = 0
    shed: int = 0


@dataclass
class _Waiter:
    """One query waiting for (or holding) an admission grant."""

    seq: int
    tenant: str
    rank: int
    requested_memory: int
    granted: bool = False
    granted_memory: int = 0


@dataclass
class AdmissionTicket:
    """Proof of admission: holds one slot and one memory lease.

    Usable as a context manager; :meth:`release` is idempotent so
    explicit ``finally`` blocks and ``with`` both work.

    Attributes:
        tenant: tenant the query was admitted under.
        priority: priority class it was admitted under.
        queue_wait_seconds: time spent between submission and the grant
            (clock noise only for an immediate grant).
        granted_memory: the memory lease in bytes; the session clamps
            the query's effective memory budget to it.
        queued: whether the query actually waited for a slot (False
            when a free slot was granted immediately).
    """

    controller: "AdmissionController"
    tenant: str
    priority: str
    queue_wait_seconds: float
    granted_memory: int
    queued: bool = False
    _released: bool = field(default=False, repr=False)

    def release(self) -> None:
        """Free the slot and the memory lease (idempotent)."""
        if self._released:
            return
        self._released = True
        self.controller._release(self)

    def __enter__(self) -> "AdmissionTicket":
        return self

    def __exit__(self, *_exc) -> None:
        self.release()


class AdmissionController:
    """The server-wide gate: slots, queue, tenants, breaker, retries.

    One instance is shared by every session of a ``Database`` (and may
    be shared across databases); everything it owns is thread-safe.
    ``clock`` is injectable for deterministic tests.
    """

    def __init__(
        self,
        config: Optional[AdmissionConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config or AdmissionConfig()
        self._clock = clock
        cfg = self.config
        self.pool = MemoryPool(cfg.memory_pool_bytes, cfg.min_lease_bytes)
        self.breaker = CircuitBreaker(
            failure_threshold=cfg.breaker_failure_threshold,
            cooldown_seconds=cfg.breaker_cooldown_seconds,
            half_open_probes=cfg.breaker_half_open_probes,
            clock=clock,
        )
        self.retry_tokens = TokenBucket(
            cfg.retry_tokens_per_second, cfg.retry_token_burst, clock=clock
        )
        self._cond = threading.Condition()
        self._waiters: List[_Waiter] = []
        self._tenants: Dict[str, _TenantState] = {}
        self._running = 0
        self._seq = 0
        # Counters (mutated under the condition's lock unless noted).
        self.admitted = 0
        self.queued = 0
        self.shed_queue_full = 0
        self.shed_rate_limited = 0
        self.queue_timeouts = 0
        self.total_queue_wait_seconds = 0.0
        self.peak_queue_depth = 0
        self.peak_running = 0
        self.retries_denied = 0  # under the retry bucket's lock
        self._retry_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def admit(
        self,
        tenant: str = "default",
        priority: str = "normal",
        requested_memory: Optional[int] = None,
        query_deadline_seconds: Optional[float] = None,
        queue_timeout_seconds: Optional[float] = None,
    ) -> AdmissionTicket:
        """Admit one query, queueing if the server is at capacity.

        Returns an :class:`AdmissionTicket` whose release frees the
        slot.  Sheds (never blocks past the deadline) with typed,
        retryable errors: :class:`~repro.errors.AdmissionRejected` for
        a tenant over its rate budget or a full queue, and
        :class:`~repro.errors.QueueTimeout` for a waiter whose deadline
        expired before a slot freed.

        Args:
            tenant: tenant to account the query under.
            priority: ``"high"`` | ``"normal"`` | ``"low"``.
            requested_memory: working-memory bytes wanted (the query's
                memory budget), or None for the configured default.
            query_deadline_seconds: the query's own wall-clock budget;
                tightens the queue deadline so a query never burns its
                whole budget waiting in line.
            queue_timeout_seconds: override of the configured queue
                deadline.
        """
        cfg = self.config
        submitted = self._clock()
        state = self._tenant(tenant)
        if not state.bucket.try_acquire():
            with self._cond:
                self.shed_rate_limited += 1
                state.shed += 1
            raise AdmissionRejected(
                f"tenant {tenant!r} is over its "
                f"{cfg.tenant_queries_per_second:g}/s admission budget",
                reason="tenant-rate-limit",
                tenant=tenant,
                priority=priority,
            )
        timeout = (
            cfg.queue_timeout_seconds
            if queue_timeout_seconds is None
            else queue_timeout_seconds
        )
        if query_deadline_seconds is not None:
            timeout = min(timeout, query_deadline_seconds)
        requested = (
            cfg.default_query_memory_bytes
            if requested_memory is None
            else requested_memory
        )
        with self._cond:
            if (
                self._running >= cfg.max_concurrency
                and len(self._waiters) >= cfg.queue_depth
            ):
                self.shed_queue_full += 1
                state.shed += 1
                raise AdmissionRejected(
                    f"admission queue is full "
                    f"({cfg.queue_depth} waiting, {self._running} running)",
                    reason="queue-full",
                    tenant=tenant,
                    priority=priority,
                )
            self._seq += 1
            waiter = _Waiter(
                seq=self._seq,
                tenant=tenant,
                rank=priority_rank(priority),
                requested_memory=requested,
            )
            self._waiters.append(waiter)
            self.peak_queue_depth = max(
                self.peak_queue_depth, len(self._waiters)
            )
            self._dispatch_locked()
            waited = not waiter.granted
            if waited:
                self.queued += 1
                deadline = submitted + timeout
                while not waiter.granted:
                    left = deadline - self._clock()
                    if left <= 0.0:
                        self._waiters.remove(waiter)
                        self.queue_timeouts += 1
                        state.shed += 1
                        in_queue = self._clock() - submitted
                        self.total_queue_wait_seconds += in_queue
                        raise QueueTimeout(
                            f"query shed after {in_queue * 1000.0:.0f}ms in "
                            f"the admission queue "
                            f"(deadline {timeout * 1000.0:.0f}ms)",
                            waited_seconds=in_queue,
                            timeout_seconds=timeout,
                            tenant=tenant,
                            priority=priority,
                        )
                    self._cond.wait(left)
            wait = self._clock() - submitted
            self.total_queue_wait_seconds += wait
        return AdmissionTicket(
            controller=self,
            tenant=tenant,
            priority=priority,
            queue_wait_seconds=wait,
            granted_memory=waiter.granted_memory,
            queued=waited,
        )

    def _tenant(self, name: str) -> _TenantState:
        with self._cond:
            state = self._tenants.get(name)
            if state is None:
                state = _TenantState(
                    name=name,
                    bucket=TokenBucket(
                        self.config.tenant_queries_per_second,
                        self.config.tenant_burst,
                        clock=self._clock,
                    ),
                )
                self._tenants[name] = state
            return state

    def _dispatch_locked(self) -> None:
        """Grant free slots to the best waiters (caller holds the lock).

        Dispatch order: priority class first, then the tenant with the
        fewest queries currently running (fair queueing -- granting
        updates the count, so equal-priority dispatch round-robins
        across tenants), then FIFO.
        """
        cfg = self.config
        granted_any = False
        while self._running < cfg.max_concurrency and self._waiters:
            waiter = min(
                self._waiters,
                key=lambda w: (
                    w.rank,
                    self._tenants[w.tenant].running,
                    w.seq,
                ),
            )
            self._waiters.remove(waiter)
            state = self._tenants[waiter.tenant]
            tenant_cap = cfg.memory_pool_bytes * cfg.tenant_memory_fraction
            waiter.granted_memory = self.pool.lease(
                waiter.requested_memory,
                tenant_headroom=tenant_cap - state.leased_bytes,
            )
            state.leased_bytes += waiter.granted_memory
            state.running += 1
            state.admitted += 1
            self._running += 1
            self.admitted += 1
            self.peak_running = max(self.peak_running, self._running)
            waiter.granted = True
            granted_any = True
        if granted_any:
            self._cond.notify_all()

    def _release(self, ticket: AdmissionTicket) -> None:
        with self._cond:
            state = self._tenants[ticket.tenant]
            state.running -= 1
            state.leased_bytes -= ticket.granted_memory
            self._running -= 1
            self.pool.release(ticket.granted_memory)
            self._dispatch_locked()
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Storage circuit breaker + retry budget
    # ------------------------------------------------------------------
    def guard_storage(self, fn: Callable[[], object], site: str = ""):
        """Wrap one storage access in the circuit breaker.

        Returns a callable that fails fast with
        :class:`~repro.errors.CircuitBreakerOpen` while the breaker is
        open, and otherwise runs ``fn`` (returning its result) while
        reporting the outcome to the breaker.  Only transient storage
        errors count as breaker failures; logic errors say nothing
        about storage health.
        """
        from repro.errors import TransientStorageError

        def guarded():
            if not self.breaker.allow():
                raise CircuitBreakerOpen(
                    "storage circuit breaker is open "
                    f"(cooling down "
                    f"{self.config.breaker_cooldown_seconds * 1000.0:.0f}ms "
                    "before half-open probing)",
                    site=site,
                )
            try:
                result = fn()
            except TransientStorageError:
                self.breaker.on_failure()
                raise
            self.breaker.on_success()
            return result

        return guarded

    def try_retry_token(self) -> bool:
        """Take one global retry token; False denies the retry."""
        if self.retry_tokens.try_acquire():
            return True
        with self._retry_lock:
            self.retries_denied += 1
        return False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """A consistent counter snapshot (for benchmarks and JSON)."""
        with self._cond:
            tenants = {
                name: {
                    "running": st.running,
                    "admitted": st.admitted,
                    "shed": st.shed,
                    "leased_bytes": st.leased_bytes,
                }
                for name, st in sorted(self._tenants.items())
            }
            return {
                "running": self._running,
                "waiting": len(self._waiters),
                "admitted": self.admitted,
                "queued": self.queued,
                "shed_queue_full": self.shed_queue_full,
                "shed_rate_limited": self.shed_rate_limited,
                "queue_timeouts": self.queue_timeouts,
                "total_queue_wait_seconds": self.total_queue_wait_seconds,
                "peak_queue_depth": self.peak_queue_depth,
                "peak_running": self.peak_running,
                "retries_denied": self.retries_denied,
                "pool": {
                    "capacity_bytes": self.pool.capacity,
                    "leased_bytes": self.pool.leased,
                    "peak_leased_bytes": self.pool.peak_leased,
                    "leases_trimmed": self.pool.leases_trimmed,
                },
                "breaker": {
                    "state": self.breaker.state,
                    "trips": self.breaker.trips,
                    "fast_failures": self.breaker.fast_failures,
                    "probes": self.breaker.probes,
                },
                "tenants": tenants,
            }

    def describe(self) -> str:
        """Readable multi-line rendering (the shell's ``\\admission``)."""
        cfg = self.config
        snap = self.snapshot()
        pool = snap["pool"]
        lines = [
            f"slots:              {snap['running']}/{cfg.max_concurrency} "
            f"running, {snap['waiting']}/{cfg.queue_depth} queued",
            f"admitted:           {snap['admitted']} "
            f"({snap['queued']} waited in queue)",
            f"shed:               {snap['shed_queue_full']} queue-full, "
            f"{snap['shed_rate_limited']} rate-limited, "
            f"{snap['queue_timeouts']} queue-timeout",
            f"queue wait total:   "
            f"{snap['total_queue_wait_seconds'] * 1000.0:.1f}ms "
            f"(peak depth {snap['peak_queue_depth']})",
            f"memory pool:        {pool['leased_bytes']}/"
            f"{pool['capacity_bytes']}B leased "
            f"(peak {pool['peak_leased_bytes']}B, "
            f"{pool['leases_trimmed']} leases trimmed)",
            f"circuit breaker:    {self.breaker.describe()}",
            f"retry tokens:       denied {snap['retries_denied']} "
            f"(rate {cfg.retry_tokens_per_second:g}/s)",
        ]
        tenants = snap["tenants"]
        if tenants:
            lines.append("tenants:")
            for name, st in tenants.items():
                lines.append(
                    f"  {name:16s} running={st['running']} "
                    f"admitted={st['admitted']} shed={st['shed']} "
                    f"leased={st['leased_bytes']}B"
                )
        return "\n".join(lines)
