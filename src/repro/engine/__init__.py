"""Execution engine: physical-plan executor, reference interpreter, buffer
pool, per-query resource governance, and server-wide admission control."""

from repro.engine.adaptive import (
    AdaptiveConfig,
    AdaptiveState,
    ReoptimizeSignal,
)
from repro.engine.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionTicket,
    CircuitBreaker,
    MemoryPool,
    TokenBucket,
)
from repro.engine.context import (
    BufferPool,
    ExecContext,
    ExecCounters,
    QueryMetrics,
)
from repro.engine.executor import execute
from repro.engine.governor import (
    CancellationToken,
    QueryBudget,
    ResourceGovernor,
    RetryPolicy,
    call_with_retries,
)
from repro.engine.interpreter import InterpreterStats, interpret
from repro.engine.runtime_stats import (
    OpRuntimeStats,
    RuntimeStats,
    render_explain_analyze,
)

__all__ = [
    "AdaptiveConfig",
    "AdaptiveState",
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionTicket",
    "BufferPool",
    "CircuitBreaker",
    "MemoryPool",
    "TokenBucket",
    "CancellationToken",
    "ReoptimizeSignal",
    "ExecContext",
    "ExecCounters",
    "InterpreterStats",
    "OpRuntimeStats",
    "QueryBudget",
    "QueryMetrics",
    "ResourceGovernor",
    "RetryPolicy",
    "RuntimeStats",
    "call_with_retries",
    "execute",
    "interpret",
    "render_explain_analyze",
]
