"""Execution engine: physical-plan executor, reference interpreter, buffer pool."""

from repro.engine.context import (
    BufferPool,
    ExecContext,
    ExecCounters,
    QueryMetrics,
)
from repro.engine.executor import execute
from repro.engine.interpreter import InterpreterStats, interpret
from repro.engine.runtime_stats import (
    OpRuntimeStats,
    RuntimeStats,
    render_explain_analyze,
)

__all__ = [
    "BufferPool",
    "ExecContext",
    "ExecCounters",
    "InterpreterStats",
    "OpRuntimeStats",
    "QueryMetrics",
    "RuntimeStats",
    "execute",
    "interpret",
    "render_explain_analyze",
]
