"""Execution engine: physical-plan executor, reference interpreter, buffer pool."""

from repro.engine.context import BufferPool, ExecContext, ExecCounters
from repro.engine.executor import execute
from repro.engine.interpreter import InterpreterStats, interpret

__all__ = [
    "BufferPool",
    "ExecContext",
    "ExecCounters",
    "InterpreterStats",
    "execute",
    "interpret",
]
