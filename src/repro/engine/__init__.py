"""Execution engine: physical-plan executor, reference interpreter, buffer
pool, and per-query resource governance."""

from repro.engine.adaptive import (
    AdaptiveConfig,
    AdaptiveState,
    ReoptimizeSignal,
)
from repro.engine.context import (
    BufferPool,
    ExecContext,
    ExecCounters,
    QueryMetrics,
)
from repro.engine.executor import execute
from repro.engine.governor import (
    CancellationToken,
    QueryBudget,
    ResourceGovernor,
    RetryPolicy,
    call_with_retries,
)
from repro.engine.interpreter import InterpreterStats, interpret
from repro.engine.runtime_stats import (
    OpRuntimeStats,
    RuntimeStats,
    render_explain_analyze,
)

__all__ = [
    "AdaptiveConfig",
    "AdaptiveState",
    "BufferPool",
    "CancellationToken",
    "ReoptimizeSignal",
    "ExecContext",
    "ExecCounters",
    "InterpreterStats",
    "OpRuntimeStats",
    "QueryBudget",
    "QueryMetrics",
    "ResourceGovernor",
    "RetryPolicy",
    "RuntimeStats",
    "call_with_retries",
    "execute",
    "interpret",
    "render_explain_analyze",
]
