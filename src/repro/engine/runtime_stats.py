"""Per-operator runtime statistics -- the EXPLAIN ANALYZE machinery.

The paper's entire framework rests on the cost model *predicting*
runtime behavior (Section 5): estimated cardinalities drive plan
choice, and estimation error compounds up the plan.  This module
records what actually happened -- rows produced, invocations, wall
time, and buffer-pool misses per physical operator -- so estimated and
observed behavior can be rendered side by side and the estimate-vs-
actual gap measured instead of assumed.

A :class:`RuntimeStats` tree is created fresh for every execution (see
``executor.execute``), keyed by operator identity, so re-running a
cached prepared-statement plan never accumulates stale counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.physical.plans import PhysicalOp


@dataclass
class PartitionStats:
    """Observed work of one worker partition of a parallel region.

    Attached to the region's Gather operator so EXPLAIN ANALYZE can
    surface the two-phase optimizer's response-time split (work/p +
    comm + startup) against reality: per-partition rows expose skew,
    ``queue_wait_seconds`` is time the partition spent blocked on its
    bounded output queue (worker-side backpressure plus driver-side
    merge wait), and ``degraded`` marks partitions whose build side
    fell back to Grace-style sub-partitioning.
    """

    index: int
    rows: int = 0
    wall_seconds: float = 0.0
    queue_wait_seconds: float = 0.0
    degraded: bool = False
    # The partition's measured work in cost-model units (the worker
    # counter shard priced by CostParameters): max over partitions is
    # the measured ``work/p`` term of the response-time model.
    work_cost: float = 0.0


@dataclass
class OpRuntimeStats:
    """Observed work of one physical operator during one execution.

    Attributes:
        label: the operator's display label.
        est_rows: the optimizer's cardinality estimate (copied from the
            plan so renderings survive plan mutation).
        actual_rows: rows actually produced (summed over invocations).
        invocations: number of times the operator ran (>1 only when a
            parent re-drives its input).
        wall_seconds: inclusive wall-clock time (children included).
        pages_read: inclusive physical page reads (buffer-pool misses).
        retries: inclusive transient-fault retries absorbed beneath this
            operator (the renderer subtracts children to localize them).
        degraded: the operator fell back to Grace-style partitioned
            execution under the memory budget.
        check_fired: a validity-range CHECK here triggered mid-query
            re-optimization.
        from_checkpoint: the operator replayed a materialized
            intermediate instead of recomputing it.
        peak_resident_rows: high-water mark of rows this operator held
            resident at once -- a batch for streaming operators, the
            materialized input (or build side) for pipeline breakers.
        partitions: per-partition stats when this operator is the
            Gather of a parallel region, else None.
    """

    label: str
    est_rows: float
    actual_rows: int = 0
    invocations: int = 0
    wall_seconds: float = 0.0
    pages_read: int = 0
    retries: int = 0
    degraded: bool = False
    check_fired: bool = False
    from_checkpoint: bool = False
    peak_resident_rows: int = 0
    partitions: Optional[List[PartitionStats]] = None

    @property
    def q_error(self) -> float:
        """The estimate/actual cardinality ratio, always >= 1.

        The standard q-error metric: max(est/act, act/est) with both
        sides clamped to 1 row so empty results stay finite.
        """
        est = max(1.0, self.est_rows)
        act = max(1.0, float(self.actual_rows))
        return max(est / act, act / est)


class RuntimeStats:
    """Actual per-operator statistics for one plan execution.

    Nodes are keyed by operator identity, so the same tree can be
    rendered by walking the plan again after execution.
    """

    def __init__(self) -> None:
        self._nodes: Dict[int, OpRuntimeStats] = {}
        self.total_seconds: float = 0.0

    def node_for(self, op: PhysicalOp) -> OpRuntimeStats:
        """The stats node for an operator, created on first use."""
        node = self._nodes.get(id(op))
        if node is None:
            node = OpRuntimeStats(label=op._label(), est_rows=op.est_rows)
            self._nodes[id(op)] = node
        return node

    def get(self, op: PhysicalOp) -> Optional[OpRuntimeStats]:
        """The stats node for an operator, or None if it never ran."""
        return self._nodes.get(id(op))

    def __len__(self) -> int:
        return len(self._nodes)


def render_explain_analyze(
    plan: PhysicalOp,
    stats: RuntimeStats,
    optimize_seconds: Optional[float] = None,
    context=None,
) -> str:
    """EXPLAIN ANALYZE rendering: estimated vs. actual, per operator.

    Each line shows the operator with the optimizer's estimates next to
    the measured values, flagging large cardinality misestimates --
    the diagnostic loop the survey's cost-model discussion implies but
    classical systems rarely closed.  When ``context`` (an ExecContext)
    is supplied, governor and adaptivity events surface on the operators
    they happened at -- retries absorbed, degraded execution, fired
    CHECKs, replayed checkpoints -- plus a re-optimization footer, all
    omitted when nothing happened so quiet plans render as before.
    """
    lines: List[str] = []

    def visit(op: PhysicalOp, indent: int) -> None:
        pad = "  " * indent
        node = stats.get(op)
        if node is None:
            lines.append(f"{pad}{op._label()}  [never executed]")
        else:
            flag = ""
            if node.q_error >= 10.0:
                flag = f" !q-err={node.q_error:.0f}"
            # node.retries is inclusive of children (like pages_read);
            # subtracting the children localizes retries to the operator
            # whose accesses actually absorbed them.
            own_retries = node.retries - sum(
                child_node.retries
                for child in op.children()
                for child_node in (stats.get(child),)
                if child_node is not None
            )
            if own_retries > 0:
                flag += f" retries={own_retries}"
            if node.degraded:
                flag += " degraded=grace-partitioned"
            if node.check_fired:
                flag += " CHECK-FIRED"
            if node.from_checkpoint:
                flag += " replayed-checkpoint"
            lines.append(
                f"{pad}{node.label}  "
                f"[est_rows={op.est_rows:.0f} act_rows={node.actual_rows} "
                f"loops={node.invocations} "
                f"time={node.wall_seconds * 1000.0:.3f}ms "
                f"pages={node.pages_read} "
                f"peak_rows={node.peak_resident_rows}{flag}]"
            )
            if node.partitions:
                parts = node.partitions
                rows = [p.rows for p in parts]
                low, high = min(rows), max(rows)
                mean = sum(rows) / len(rows)
                # Skew as max/mean: 1.00 is a perfectly even split; the
                # response-time model's work/p term assumes it.
                skew = (high / mean) if mean > 0 else 1.0
                wait = sum(p.queue_wait_seconds for p in parts)
                work = [p.work_cost for p in parts]
                detail = (
                    f"{pad}  partitions={len(parts)} "
                    f"rows/part={low}..{high} skew={skew:.2f} "
                    f"work/part={min(work):.1f}..{max(work):.1f} "
                    f"queue_wait={wait * 1000.0:.3f}ms"
                )
                degraded_parts = sum(1 for p in parts if p.degraded)
                if degraded_parts:
                    detail += f" degraded_parts={degraded_parts}"
                lines.append(detail)
        for child in op.children():
            visit(child, indent + 1)

    visit(plan, 0)
    if context is not None:
        counters = getattr(context, "counters", None)
        if counters is not None and counters.degraded_operators > 0:
            lines.append(f"degraded operators: {counters.degraded_operators}")
        if counters is not None and counters.retries > 0:
            lines.append(f"fault retries absorbed: {counters.retries}")
        if counters is not None and counters.breaker_fast_fails > 0:
            lines.append(
                f"breaker fast-fails: {counters.breaker_fast_fails}"
            )
        queue_wait = getattr(context, "queue_wait_seconds", 0.0)
        if queue_wait > 0.0:
            lines.append(f"queue wait: {queue_wait * 1000.0:.3f}ms")
        adaptive = getattr(context, "adaptive", None)
        if adaptive is not None and adaptive.events:
            lines.append(
                f"re-optimizations: {adaptive.reoptimizations} "
                f"(checkpoints reused: {adaptive.checkpoints_reused})"
            )
            lines.extend(
                "  check: " + event.describe() for event in adaptive.events
            )
    footer = f"execution time: {stats.total_seconds * 1000.0:.3f}ms"
    if optimize_seconds is not None:
        footer = (
            f"optimization time: {optimize_seconds * 1000.0:.3f}ms\n" + footer
        )
    lines.append(footer)
    return "\n".join(lines)
