"""Transactions, snapshots, and the MVCC lifecycle over heap tables.

Snapshot isolation in the classical MVCC formulation: each transaction
gets a txid and a frozen view of which transactions were in flight when
it began.  A row version is visible when its creator committed before
the snapshot and its deleter (if any) did not.  Readers never block
writers and vice versa; write-write conflicts are resolved
first-writer-wins, surfacing to the loser as a retryable
:class:`~repro.errors.SerializationError`.

Statement-level atomicity rides on per-statement undo lists: a failed
statement (injected storage fault, budget violation, conflict) rolls
back its own writes and leaves the table exactly as its snapshot saw it,
without disturbing earlier statements of the same transaction.

The manager also owns the write-ahead log (see :mod:`repro.storage.wal`)
and the vacuum that folds committed versions back into flat tables once
the system is quiescent, restoring the zero-overhead read paths.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.errors import TransactionError
from repro.storage.table import HeapTable, Row
from repro.storage.wal import (
    ABORT,
    COMMIT,
    DELETE,
    INSERT,
    UPDATE,
    WalRecord,
    WriteAheadLog,
)


class Snapshot:
    """A frozen view of transaction state at a point in time.

    A creator txid ``x`` is committed-for-us iff ``x < high`` and ``x``
    was not active at snapshot time and ``x`` has not aborted.  The
    aborted set is a *live* reference to the manager's set: a
    transaction that aborts after our snapshot was never committed, so
    consulting the live set is always sound.

    Attributes:
        high: txids >= high began after this snapshot.
        active: txids in flight when the snapshot was taken.
        txid: the owning transaction (0 for read-only snapshots).
        aborted: live reference to the manager's aborted-txid set.
    """

    __slots__ = ("high", "active", "txid", "aborted")

    def __init__(
        self,
        high: int,
        active: FrozenSet[int],
        txid: int,
        aborted: Set[int],
    ) -> None:
        self.high = high
        self.active = active
        self.txid = txid
        self.aborted = aborted

    def __repr__(self) -> str:
        return f"Snapshot(high={self.high}, active={sorted(self.active)}, txid={self.txid})"


# Undo entry kinds.
_UNDO_INSERT = "insert"
_UNDO_DELETE = "delete"


class Transaction:
    """One transaction: snapshot, undo log, and buffered WAL records.

    Args:
        txid: unique monotonically-increasing id.
        snapshot: the isolation snapshot all statements read through.
        session: True for explicit BEGIN..COMMIT transactions, False for
            single-statement autocommit wrappers.
    """

    def __init__(self, txid: int, snapshot: Snapshot, session: bool = False) -> None:
        self.txid = txid
        self.snapshot = snapshot
        self.session = session
        self.state = "active"
        # Back-reference set by TransactionManager.begin; the DML
        # executors reach the manager through the transaction on the
        # execution context.
        self.manager: Optional["TransactionManager"] = None
        # Undo entries for every write still standing, in apply order:
        # ("insert", table, row_id) / ("delete", table, row_id).
        self.undo: List[Tuple[str, HeapTable, int]] = []
        # WAL records buffered for the current statement; flushed
        # atomically at statement end, dropped on statement rollback.
        self.stmt_records: List[WalRecord] = []
        self._stmt_undo_start = 0
        self.written: Dict[str, HeapTable] = {}
        self.rows_written = 0

    # -- write bookkeeping (called by the DML executors) ----------------
    def note_insert(self, name: str, table: HeapTable, row_id: int, values: Row) -> None:
        self.undo.append((_UNDO_INSERT, table, row_id))
        self.stmt_records.append(WalRecord(INSERT, self.txid, name, tuple(values)))
        self.rows_written += 1

    def note_delete(self, name: str, table: HeapTable, row_id: int, values: Row) -> None:
        self.undo.append((_UNDO_DELETE, table, row_id))
        self.stmt_records.append(WalRecord(DELETE, self.txid, name, tuple(values)))
        self.rows_written += 1

    def note_update(
        self,
        name: str,
        table: HeapTable,
        old_row_id: int,
        new_row_id: int,
        old_values: Row,
        new_values: Row,
    ) -> None:
        self.undo.append((_UNDO_DELETE, table, old_row_id))
        self.undo.append((_UNDO_INSERT, table, new_row_id))
        self.stmt_records.append(
            WalRecord(
                UPDATE, self.txid, name, tuple(new_values), tuple(old_values)
            )
        )
        self.rows_written += 1

    def _apply_undo(self, entries: List[Tuple[str, HeapTable, int]]) -> None:
        for kind, table, row_id in reversed(entries):
            if kind == _UNDO_INSERT:
                table.undo_insert(row_id, self.txid)
            else:
                table.undo_delete(row_id)


class TransactionManager:
    """Allocates txids, tracks active/aborted sets, owns WAL and vacuum.

    Storage-pure: knows nothing about catalogs, plan caches, or
    statistics.  Higher layers register callbacks instead:

    * ``commit_hooks`` run once per commit (catalog-version bump, plan
      cache / feedback / statistics invalidation).
    * ``index_rebuilder`` rebuilds a table's indexes after vacuum or
      recovery shifts row ids.
    * ``recovery_hooks`` run after :meth:`recover` replaces table images.
    """

    def __init__(self, wal: Optional[WriteAheadLog] = None) -> None:
        self._lock = threading.RLock()
        self._next_txid = 1
        self.active: Set[int] = set()
        self.aborted: Set[int] = set()
        self.wal = wal if wal is not None else WriteAheadLog()
        self._tables: Dict[str, HeapTable] = {}
        self._pinned = 0
        self.commit_hooks: List[Callable[[Transaction], None]] = []
        self.recovery_hooks: List[Callable[[], None]] = []
        self.index_rebuilder: Optional[Callable[[str], None]] = None
        self.commits = 0
        self.aborts = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def begin(self, session: bool = False) -> Transaction:
        """Start a transaction with a fresh snapshot."""
        with self._lock:
            txid = self._next_txid
            self._next_txid += 1
            snapshot = Snapshot(
                high=txid,
                active=frozenset(self.active),
                txid=txid,
                aborted=self.aborted,
            )
            self.active.add(txid)
            txn = Transaction(txid, snapshot, session=session)
            txn.manager = self
            return txn

    def read_snapshot(self) -> Snapshot:
        """Pin a read-only snapshot (blocks vacuum until released)."""
        with self._lock:
            self._pinned += 1
            return Snapshot(
                high=self._next_txid,
                active=frozenset(self.active),
                txid=0,
                aborted=self.aborted,
            )

    def release_snapshot(self, snapshot: Snapshot) -> None:
        with self._lock:
            self._pinned = max(0, self._pinned - 1)
        self.maybe_vacuum()

    def register_write(self, txn: Transaction, name: str, table: HeapTable) -> None:
        """First write of ``txn`` against ``table``: take the WAL
        checkpoint (idempotent) and wire the table into MVCC."""
        with self._lock:
            if name not in self._tables:
                self.wal.ensure_checkpoint(name, table.rows())
                table.attach_mvcc(self.aborted)
                self._tables[name] = table
            txn.written[name] = table

    # ------------------------------------------------------------------
    # Statement boundaries
    # ------------------------------------------------------------------
    def begin_statement(self, txn: Transaction) -> None:
        self._require_active(txn)
        txn._stmt_undo_start = len(txn.undo)
        txn.stmt_records = []

    def rollback_statement(self, txn: Transaction) -> None:
        """Undo the current statement completely: the table is returned
        bit-identical to the statement's starting state, and no WAL
        record of the statement survives."""
        txn._apply_undo(txn.undo[txn._stmt_undo_start :])
        del txn.undo[txn._stmt_undo_start :]
        txn.stmt_records = []

    def end_statement(self, txn: Transaction) -> None:
        """Flush the statement's buffered records atomically to the WAL."""
        if txn.stmt_records:
            self.wal.extend(txn.stmt_records)
            txn.stmt_records = []

    # ------------------------------------------------------------------
    # Commit / abort
    # ------------------------------------------------------------------
    def commit(self, txn: Transaction) -> None:
        """Commit: write the commit record, publish versions, run the
        invalidation hooks, and bump each written table's data version
        (the only point where versions ever move)."""
        with self._lock:
            self._require_active(txn)
            if txn.written:
                self.wal.append(WalRecord(COMMIT, txn.txid))
            self.active.discard(txn.txid)
            txn.state = "committed"
            self.commits += 1
            for table in txn.written.values():
                table.bump_data_version()
                table.runtime_cache.clear()
            hooks = list(self.commit_hooks) if txn.written else []
        for hook in hooks:
            hook(txn)
        self.maybe_vacuum()

    def abort(self, txn: Transaction) -> None:
        """Abort: undo every surviving write, mark the txid aborted.

        No version bumps: uncommitted rows were never visible, so every
        cached plan and column image built against committed state stays
        valid.
        """
        with self._lock:
            self._require_active(txn)
            txn._apply_undo(txn.undo)
            txn.undo = []
            txn.stmt_records = []
            self.aborted.add(txn.txid)
            self.active.discard(txn.txid)
            if txn.written:
                self.wal.append(WalRecord(ABORT, txn.txid))
            txn.state = "aborted"
            self.aborts += 1
        self.maybe_vacuum()

    def _require_active(self, txn: Transaction) -> None:
        if txn.state != "active":
            raise TransactionError(
                f"transaction {txn.txid} is already {txn.state}"
            )

    # ------------------------------------------------------------------
    # Vacuum
    # ------------------------------------------------------------------
    def maybe_vacuum(self) -> None:
        """Fold version metadata back into flat tables when quiescent.

        Runs only with no active transactions and no pinned snapshots,
        so nobody can observe the dead versions being reclaimed.  Rows
        are only ever appended, so a same-length survivor list is
        physically identical and needs no version bump or index rebuild.
        """
        with self._lock:
            if self.active or self._pinned:
                return
            for name, table in self._tables.items():
                if table.is_flat:
                    continue
                survivors = [
                    row
                    for row_id, row in enumerate(table.rows())
                    if table.row_visible(row_id, None)
                ]
                if len(survivors) != len(table.rows()):
                    table.replace_rows(survivors)
                    if self.index_rebuilder is not None:
                        self.index_rebuilder(name)
                else:
                    table._xmin.clear()
                    table._xmax.clear()

    # ------------------------------------------------------------------
    # Crash / recovery simulation
    # ------------------------------------------------------------------
    def crash(self, prefix: Optional[int] = None) -> None:
        """Simulate a crash: in-flight transactions are lost (treated as
        aborted) and the WAL tail past ``prefix`` records is gone."""
        with self._lock:
            self.wal.truncate(prefix)
            for txid in self.active:
                self.aborted.add(txid)
            self.active.clear()
            self._pinned = 0

    def recover(self) -> List[str]:
        """Rebuild every checkpointed table to committed-only state from
        the WAL.  Idempotent: a pure function of the retained log, so
        recover-twice is identical to recover-once.  Returns the names
        of the tables rebuilt."""
        with self._lock:
            images = self.wal.replay()
            rebuilt = []
            for name, rows in images.items():
                table = self._tables.get(name)
                if table is None:
                    continue
                table.replace_rows(rows)
                table.attach_mvcc(self.aborted)
                if self.index_rebuilder is not None:
                    self.index_rebuilder(name)
                rebuilt.append(name)
            hooks = list(self.recovery_hooks)
        for hook in hooks:
            hook()
        return rebuilt
