"""Deterministic, seeded fault injection for the storage layer.

Chaos testing needs failures that are *reproducible*: a chaos run that
cannot be replayed is a flake generator, not a test.  The
:class:`FaultInjector` therefore draws every decision -- whether a page
read or index lookup faults, whether latency is injected, the jitter on
retry backoff -- from one ``random.Random`` seeded at construction.  The
executor touches storage in a deterministic order, so the same seed and
the same :class:`FaultConfig` reproduce the identical fault schedule,
retry counts, and outcomes on every run.

Faults surface as :class:`~repro.errors.TransientStorageError`
(``retryable=True``); the executor's retry wrapper absorbs most of them,
and the ones that exhaust their attempts propagate as clean typed errors.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import TransientStorageError


@dataclass(frozen=True)
class FaultConfig:
    """Where and how often to inject storage faults.

    Attributes:
        seed: RNG seed; the whole fault schedule is a function of it.
        page_read_error_rate: probability a page read raises.
        index_lookup_error_rate: probability an index lookup raises.
        latency_rate: probability an access accrues simulated latency.
        latency_seconds: simulated latency per injected slow access
            (accounted, not slept, so chaos suites stay fast).
        sites: restrict injection to these table/index names, or None
            for everywhere.
    """

    seed: int = 0
    page_read_error_rate: float = 0.0
    index_lookup_error_rate: float = 0.0
    latency_rate: float = 0.0
    latency_seconds: float = 0.0
    sites: Optional[Tuple[str, ...]] = None


class FaultInjector:
    """Seeded chaos source wrapping page reads and index lookups.

    The executor consults :meth:`on_page_read` /
    :meth:`on_index_lookup` before touching storage; either may raise
    :class:`TransientStorageError`.  :meth:`jitter` feeds the retry
    wrapper's backoff from the same RNG so entire runs replay bit-for-bit.
    """

    def __init__(self, config: FaultConfig) -> None:
        self.config = config
        self._rng = random.Random(config.seed)
        self.injected_faults = 0
        self.injected_latency_seconds = 0.0
        self.faults_by_site: Dict[str, int] = {}

    def reset(self) -> None:
        """Re-seed the RNG and zero counters: replay the same schedule."""
        self._rng = random.Random(self.config.seed)
        self.injected_faults = 0
        self.injected_latency_seconds = 0.0
        self.faults_by_site = {}

    # ------------------------------------------------------------------
    def _applies_to(self, site: str) -> bool:
        return self.config.sites is None or site in self.config.sites

    def _maybe_latency(self) -> None:
        if self.config.latency_rate <= 0.0:
            return
        if self._rng.random() < self.config.latency_rate:
            self.injected_latency_seconds += self.config.latency_seconds

    def _fault(self, site: str, kind: str) -> None:
        self.injected_faults += 1
        self.faults_by_site[site] = self.faults_by_site.get(site, 0) + 1
        raise TransientStorageError(
            f"injected transient {kind} fault on {site!r}", site=site
        )

    # ------------------------------------------------------------------
    def on_page_read(self, site: str, page_no: int) -> None:
        """Chaos hook for one page read; may raise TransientStorageError."""
        if not self._applies_to(site):
            return
        self._maybe_latency()
        rate = self.config.page_read_error_rate
        if rate > 0.0 and self._rng.random() < rate:
            self._fault(site, "page-read")

    def on_index_lookup(self, site: str) -> None:
        """Chaos hook for one index lookup; may raise TransientStorageError."""
        if not self._applies_to(site):
            return
        self._maybe_latency()
        rate = self.config.index_lookup_error_rate
        if rate > 0.0 and self._rng.random() < rate:
            self._fault(site, "index-lookup")

    def jitter(self) -> float:
        """Deterministic backoff jitter in [0, 1) from the injector's seed."""
        return self._rng.random()

    def __repr__(self) -> str:
        return (
            f"FaultInjector(seed={self.config.seed}, "
            f"page_rate={self.config.page_read_error_rate}, "
            f"index_rate={self.config.index_lookup_error_rate}, "
            f"injected={self.injected_faults})"
        )
