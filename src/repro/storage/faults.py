"""Deterministic, seeded fault injection for the storage layer.

Chaos testing needs failures that are *reproducible*: a chaos run that
cannot be replayed is a flake generator, not a test.  The
:class:`FaultInjector` therefore draws every decision -- whether a page
read or index lookup faults, whether latency is injected, the jitter on
retry backoff -- from seeded ``random.Random`` streams.  The executor
touches storage in a deterministic order, so the same seed and the same
:class:`FaultConfig` reproduce the identical fault schedule, retry
counts, and outcomes on every run.

Thread safety: one injector is shared by every session of a database,
so each thread draws from its *own* RNG stream, derived from the seed
and a stream index assigned on the thread's first access.  A
single-threaded run uses stream 0 -- seeded exactly as the legacy
shared RNG was, so existing chaos schedules replay bit-for-bit -- and
concurrent clients each get a deterministic schedule of their own
instead of racing interleaved draws on one shared stream (which made
multi-threaded chaos runs order-dependent).  Counters are updated under
a lock.

Faults surface as :class:`~repro.errors.TransientStorageError`
(``retryable=True``); the executor's retry wrapper absorbs most of them,
and the ones that exhaust their attempts propagate as clean typed errors.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import TransientStorageError

# Multiplier decorrelating per-thread RNG streams derived from one seed.
_STREAM_STRIDE = 0x9E3779B9


@dataclass(frozen=True)
class FaultConfig:
    """Where and how often to inject storage faults.

    Attributes:
        seed: RNG seed; the whole fault schedule is a function of it
            (per thread: stream ``i`` is seeded from ``(seed, i)``).
        page_read_error_rate: probability a page read raises.
        index_lookup_error_rate: probability an index lookup raises.
        page_write_error_rate: probability a page write raises (the DML
            path consults this before mutating a heap page, so a fault
            aborts the statement with the table untouched).
        wal_append_error_rate: probability buffering a WAL record raises
            (write-ahead ordering: the fault fires before the mutation
            the record describes).
        latency_rate: probability an access accrues simulated latency.
        latency_seconds: simulated latency per injected slow access
            (accounted, not slept, so chaos suites stay fast).
        sites: restrict injection to these table/index names, or None
            for everywhere.
    """

    seed: int = 0
    page_read_error_rate: float = 0.0
    index_lookup_error_rate: float = 0.0
    page_write_error_rate: float = 0.0
    wal_append_error_rate: float = 0.0
    latency_rate: float = 0.0
    latency_seconds: float = 0.0
    sites: Optional[Tuple[str, ...]] = None


class FaultInjector:
    """Seeded chaos source wrapping page reads and index lookups.

    The executor consults :meth:`on_page_read` /
    :meth:`on_index_lookup` before touching storage; either may raise
    :class:`TransientStorageError`.  :meth:`jitter` feeds the retry
    wrapper's backoff from the calling thread's stream so entire runs
    replay bit-for-bit.
    """

    def __init__(self, config: FaultConfig) -> None:
        self.config = config
        self._lock = threading.Lock()
        self._local = threading.local()
        self._streams_assigned = 0
        self._epoch = 0
        self.injected_faults = 0
        self.injected_latency_seconds = 0.0
        self.faults_by_site: Dict[str, int] = {}

    def reset(self) -> None:
        """Restart every RNG stream and zero counters: replay the
        same schedule.  Threads re-derive their streams on next use
        (the resetting thread, first to draw again, gets stream 0 --
        so single-threaded replays are unchanged)."""
        with self._lock:
            self._epoch += 1
            self._streams_assigned = 0
            self.injected_faults = 0
            self.injected_latency_seconds = 0.0
            self.faults_by_site = {}

    def _rng(self) -> random.Random:
        """The calling thread's RNG stream (assigned on first use).

        Stream 0 is seeded ``Random(seed)`` -- identical to the legacy
        shared RNG -- and stream ``i`` decorrelates with a fixed
        stride, so every thread's schedule is a pure function of
        ``(seed, i)``.
        """
        local = self._local
        if getattr(local, "epoch", None) != self._epoch:
            with self._lock:
                index = self._streams_assigned
                self._streams_assigned += 1
                epoch = self._epoch
            seed = self.config.seed + _STREAM_STRIDE * index
            local.rng = random.Random(seed)
            local.epoch = epoch
        return local.rng

    # ------------------------------------------------------------------
    def _applies_to(self, site: str) -> bool:
        return self.config.sites is None or site in self.config.sites

    def _maybe_latency(self, rng: random.Random) -> None:
        if self.config.latency_rate <= 0.0:
            return
        if rng.random() < self.config.latency_rate:
            with self._lock:
                self.injected_latency_seconds += self.config.latency_seconds

    def _fault(self, site: str, kind: str) -> None:
        with self._lock:
            self.injected_faults += 1
            self.faults_by_site[site] = self.faults_by_site.get(site, 0) + 1
        raise TransientStorageError(
            f"injected transient {kind} fault on {site!r}", site=site
        )

    # ------------------------------------------------------------------
    def on_page_read(self, site: str, page_no: int) -> None:
        """Chaos hook for one page read; may raise TransientStorageError."""
        if not self._applies_to(site):
            return
        rng = self._rng()
        self._maybe_latency(rng)
        rate = self.config.page_read_error_rate
        if rate > 0.0 and rng.random() < rate:
            self._fault(site, "page-read")

    def on_index_lookup(self, site: str) -> None:
        """Chaos hook for one index lookup; may raise TransientStorageError."""
        if not self._applies_to(site):
            return
        rng = self._rng()
        self._maybe_latency(rng)
        rate = self.config.index_lookup_error_rate
        if rate > 0.0 and rng.random() < rate:
            self._fault(site, "index-lookup")

    def on_page_write(self, site: str, page_no: int) -> None:
        """Chaos hook for one page write; may raise TransientStorageError.

        Fires *before* the heap mutation, so an injected write fault
        leaves the page untouched and statement rollback restores the
        pre-statement image exactly.
        """
        if not self._applies_to(site):
            return
        rng = self._rng()
        self._maybe_latency(rng)
        rate = self.config.page_write_error_rate
        if rate > 0.0 and rng.random() < rate:
            self._fault(site, "page-write")

    def on_wal_append(self, site: str) -> None:
        """Chaos hook for buffering one WAL record; may raise
        TransientStorageError (before the mutation it describes)."""
        if not self._applies_to(site):
            return
        rng = self._rng()
        self._maybe_latency(rng)
        rate = self.config.wal_append_error_rate
        if rate > 0.0 and rng.random() < rate:
            self._fault(site, "wal-append")

    def jitter(self) -> float:
        """Deterministic backoff jitter in [0, 1) from the calling
        thread's stream."""
        return self._rng().random()

    def __repr__(self) -> str:
        return (
            f"FaultInjector(seed={self.config.seed}, "
            f"page_rate={self.config.page_read_error_rate}, "
            f"index_rate={self.config.index_lookup_error_rate}, "
            f"injected={self.injected_faults})"
        )
