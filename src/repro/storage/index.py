"""Secondary index structures: ordered (B-tree-like) and hash indexes.

The ordered index stores ``(key, row_id)`` pairs in sorted order and
supports point lookups, range scans, and full ordered scans -- the three
access patterns the optimizer cares about.  A real B-tree's node structure
is irrelevant to optimization decisions; what matters is the *page count*
of the index and whether it is clustered, both of which are modelled.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.catalog.schema import IndexDef
from repro.errors import StorageError
from repro.storage.table import HeapTable

Key = Tuple[Any, ...]

# Modelled size of one index entry: key bytes are approximated by the
# indexed columns' widths plus an 8-byte row pointer.
_ROW_POINTER_BYTES = 8


class OrderedIndex:
    """A sorted ``(key, row_id)`` index supporting point and range access.

    Keys with ``None`` components are excluded, matching SQL semantics where
    NULL never satisfies an index-seek predicate.

    Args:
        definition: index metadata (columns, clustered/unique flags).
        table: the indexed heap table.
    """

    def __init__(self, definition: IndexDef, table: HeapTable) -> None:
        self.definition = definition
        self.table = table
        self._column_positions = [
            table.schema.column_index(name) for name in definition.columns
        ]
        key_width = sum(
            table.schema.column(name).width_bytes for name in definition.columns
        )
        self._entry_width = key_width + _ROW_POINTER_BYTES
        self._keys: List[Key] = []
        self._row_ids: List[int] = []
        self.build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def build(self) -> None:
        """(Re)build the index from the current table contents."""
        entries: List[Tuple[Key, int]] = []
        for row_id, row in self.table.scan():
            key = tuple(row[position] for position in self._column_positions)
            if any(part is None for part in key):
                continue
            entries.append((key, row_id))
        entries.sort(key=lambda entry: entry[0])
        if self.definition.unique:
            for left, right in zip(entries, entries[1:]):
                if left[0] == right[0]:
                    raise StorageError(
                        f"duplicate key {left[0]!r} in unique index "
                        f"{self.definition.name!r}"
                    )
        self._keys = [entry[0] for entry in entries]
        self._row_ids = [entry[1] for entry in entries]

    def insert_entry(self, row: Sequence[Any], row_id: int) -> None:
        """Incrementally index one newly inserted row.

        Keys with NULL components are skipped, matching :meth:`build`.
        Unique indexes are enforced here, at insert time: an existing
        entry with the same key conflicts iff its heap version is still
        live (dead versions -- committed deletes, aborted inserts, and
        the old half of an in-flight UPDATE -- share keys legally and
        are ignored).  The raise is a statement-level error, so the
        failing INSERT/UPDATE rolls back cleanly before the duplicate
        ever commits.

        Raises:
            StorageError: the key already exists in a unique index.
        """
        key = tuple(row[position] for position in self._column_positions)
        if any(part is None for part in key):
            return
        if self.definition.unique:
            self._check_unique(key, row_id)
        position = bisect.bisect_right(self._keys, key)
        self._keys.insert(position, key)
        self._row_ids.insert(position, row_id)

    def _check_unique(self, key: Key, row_id: int) -> None:
        left = bisect.bisect_left(self._keys, key)
        right = bisect.bisect_right(self._keys, key)
        for existing in self._row_ids[left:right]:
            if existing != row_id and self.table.row_visible(existing, None):
                raise StorageError(
                    f"duplicate key {key!r} in unique index "
                    f"{self.definition.name!r}"
                )

    # ------------------------------------------------------------------
    # Modelled size
    # ------------------------------------------------------------------
    @property
    def entry_count(self) -> int:
        """Number of index entries."""
        return len(self._keys)

    @property
    def page_count(self) -> int:
        """Modelled leaf-page count of the index."""
        if not self._keys:
            return 0
        per_page = max(1, self.table.page_size_bytes // self._entry_width)
        return (len(self._keys) + per_page - 1) // per_page

    @property
    def height(self) -> int:
        """Modelled B-tree height (root-to-leaf), used for seek cost."""
        pages = self.page_count
        height = 1
        fanout = max(2, self.table.page_size_bytes // self._entry_width)
        while pages > 1:
            pages = (pages + fanout - 1) // fanout
            height += 1
        return height

    # ------------------------------------------------------------------
    # Access paths
    # ------------------------------------------------------------------
    def _as_key(self, value: Any) -> Key:
        if isinstance(value, tuple):
            return value
        return (value,)

    def seek(self, key: Any) -> List[int]:
        """Row ids whose full key equals ``key`` (point lookup).

        NULL key components never match (SQL seek semantics).
        """
        key = self._as_key(key)
        if any(part is None for part in key):
            return []
        left = bisect.bisect_left(self._keys, key)
        right = bisect.bisect_right(self._keys, key)
        return self._row_ids[left:right]

    def seek_prefix(self, prefix: Any) -> List[int]:
        """Row ids whose key starts with ``prefix`` (leading-column lookup).

        NULL prefix components never match.
        """
        prefix = self._as_key(prefix)
        if any(part is None for part in prefix):
            return []
        left = bisect.bisect_left(self._keys, prefix)
        row_ids: List[int] = []
        for position in range(left, len(self._keys)):
            if self._keys[position][: len(prefix)] != prefix:
                break
            row_ids.append(self._row_ids[position])
        return row_ids

    def range(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> List[int]:
        """Row ids with keys in ``[low, high]`` (bounds optional/inclusive)."""
        if low is None:
            left = 0
        else:
            low_key = self._as_key(low)
            left = (
                bisect.bisect_left(self._keys, low_key)
                if include_low
                else bisect.bisect_right(self._keys, low_key)
            )
        if high is None:
            right = len(self._keys)
        else:
            high_key = self._as_key(high)
            right = (
                bisect.bisect_right(self._keys, high_key)
                if include_high
                else bisect.bisect_left(self._keys, high_key)
            )
        return self._row_ids[left:right]

    def ordered_row_ids(self, descending: bool = False) -> List[int]:
        """All row ids in key order -- an ordered index scan."""
        if descending:
            return list(reversed(self._row_ids))
        return list(self._row_ids)

    def ordered_entries(self) -> Iterator[Tuple[Key, int]]:
        """Yield ``(key, row_id)`` in ascending key order."""
        return zip(iter(self._keys), iter(self._row_ids))

    def __repr__(self) -> str:
        kind = "clustered" if self.definition.clustered else "unclustered"
        return (
            f"OrderedIndex({self.definition.name} on "
            f"{self.definition.table}({', '.join(self.definition.columns)}), "
            f"{kind}, entries={self.entry_count})"
        )


class HashIndex:
    """An equality-only index mapping keys to row-id lists.

    Useful to model hash-based access paths; has no order, so it never
    contributes an interesting order to the optimizer.
    """

    def __init__(self, definition: IndexDef, table: HeapTable) -> None:
        self.definition = definition
        self.table = table
        self._column_positions = [
            table.schema.column_index(name) for name in definition.columns
        ]
        self._buckets: Dict[Key, List[int]] = {}
        self.build()

    def build(self) -> None:
        """(Re)build the hash buckets from the current table contents."""
        buckets: Dict[Key, List[int]] = {}
        for row_id, row in self.table.scan():
            key = tuple(row[position] for position in self._column_positions)
            if any(part is None for part in key):
                continue
            buckets.setdefault(key, []).append(row_id)
        if self.definition.unique:
            for key, ids in buckets.items():
                if len(ids) > 1:
                    raise StorageError(
                        f"duplicate key {key!r} in unique index "
                        f"{self.definition.name!r}"
                    )
        self._buckets = buckets

    def insert_entry(self, row: Sequence[Any], row_id: int) -> None:
        """Incrementally index one newly inserted row (NULL keys skipped).

        Unique hash indexes conflict only with *live* heap versions,
        mirroring :meth:`OrderedIndex.insert_entry`.

        Raises:
            StorageError: the key already exists in a unique index.
        """
        key = tuple(row[position] for position in self._column_positions)
        if any(part is None for part in key):
            return
        bucket = self._buckets.get(key)
        if self.definition.unique and bucket:
            for existing in bucket:
                if existing != row_id and self.table.row_visible(
                    existing, None
                ):
                    raise StorageError(
                        f"duplicate key {key!r} in unique index "
                        f"{self.definition.name!r}"
                    )
        self._buckets.setdefault(key, []).append(row_id)

    @property
    def entry_count(self) -> int:
        """Number of indexed rows."""
        return sum(len(ids) for ids in self._buckets.values())

    @property
    def distinct_keys(self) -> int:
        """Number of distinct key values."""
        return len(self._buckets)

    def seek(self, key: Any) -> List[int]:
        """Row ids whose key equals ``key``."""
        if not isinstance(key, tuple):
            key = (key,)
        return list(self._buckets.get(key, ()))

    def __repr__(self) -> str:
        return (
            f"HashIndex({self.definition.name} on "
            f"{self.definition.table}({', '.join(self.definition.columns)}), "
            f"keys={self.distinct_keys})"
        )
