"""Storage engine: page-modelled heap tables and index structures."""

from repro.storage.index import HashIndex, OrderedIndex
from repro.storage.table import DEFAULT_PAGE_SIZE_BYTES, HeapTable

__all__ = ["HashIndex", "OrderedIndex", "HeapTable", "DEFAULT_PAGE_SIZE_BYTES"]
