"""Storage engine: page-modelled heap tables, index structures, and
deterministic fault injection."""

from repro.storage.faults import FaultConfig, FaultInjector
from repro.storage.index import HashIndex, OrderedIndex
from repro.storage.table import DEFAULT_PAGE_SIZE_BYTES, HeapTable

__all__ = [
    "FaultConfig",
    "FaultInjector",
    "HashIndex",
    "OrderedIndex",
    "HeapTable",
    "DEFAULT_PAGE_SIZE_BYTES",
]
