"""In-memory heap tables with a simulated page model.

The survey's cost discussion (Section 5) is phrased in terms of *pages*:
the number of data pages in a relation, pages in an index, and buffer-pool
behaviour.  We therefore store rows in memory but expose a faithful page
abstraction -- each table reports how many pages it occupies and the
executor counts page reads, so that measured I/O matches the analytic cost
model's vocabulary.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.catalog.schema import TableSchema
from repro.errors import StorageError

DEFAULT_PAGE_SIZE_BYTES = 8192

Row = Tuple[Any, ...]


class HeapTable:
    """A heap of rows honouring a :class:`TableSchema`, organised into pages.

    Rows are stored in insertion order.  ``rows_per_page`` is derived from
    the schema's modelled row width and the page size, mimicking how a disk
    based system packs fixed-width rows into slotted pages.

    Args:
        schema: the table schema.
        page_size_bytes: modelled page capacity (default 8 KiB).
    """

    def __init__(
        self, schema: TableSchema, page_size_bytes: int = DEFAULT_PAGE_SIZE_BYTES
    ) -> None:
        if page_size_bytes <= 0:
            raise StorageError("page size must be positive")
        self.schema = schema
        self.page_size_bytes = page_size_bytes
        self.rows_per_page = max(1, page_size_bytes // schema.row_width_bytes)
        self._rows: List[Row] = []
        # Monotonic mutation counter plus a scratch dict for engines that
        # cache derived images of the table (e.g. the columnar engine's
        # column arrays); a cache entry is valid only while data_version
        # matches the version it was built against.
        self._data_version = 0
        self.runtime_cache: dict = {}

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, row: Sequence[Any]) -> int:
        """Validate and append one row; returns its row id (position)."""
        validated = self.schema.validate_row(row)
        self._rows.append(validated)
        self._data_version += 1
        return len(self._rows) - 1

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        """Insert many rows; returns the number inserted."""
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def truncate(self) -> None:
        """Remove all rows."""
        self._rows.clear()
        self._data_version += 1
        self.runtime_cache.clear()

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def data_version(self) -> int:
        """Bumped on every mutation; keys cached derived images."""
        return self._data_version

    @property
    def row_count(self) -> int:
        """Number of stored rows (the paper's cardinality statistic)."""
        return len(self._rows)

    @property
    def page_count(self) -> int:
        """Number of pages the table occupies (the paper's pages statistic)."""
        if not self._rows:
            return 0
        return (len(self._rows) + self.rows_per_page - 1) // self.rows_per_page

    def fetch(self, row_id: int) -> Row:
        """Fetch one row by id.

        Raises:
            StorageError: if the id is out of range.
        """
        if not 0 <= row_id < len(self._rows):
            raise StorageError(
                f"row id {row_id} out of range for table {self.schema.name!r}"
            )
        return self._rows[row_id]

    def page_of(self, row_id: int) -> int:
        """The page number holding a given row id."""
        return row_id // self.rows_per_page

    def scan(self) -> Iterator[Tuple[int, Row]]:
        """Yield ``(row_id, row)`` pairs in heap order."""
        return enumerate(iter(self._rows))

    def rows(self) -> List[Row]:
        """All rows as a list (copy-free view; callers must not mutate)."""
        return self._rows

    def column_values(self, column: str) -> List[Any]:
        """All values of one column, in heap order."""
        index = self.schema.column_index(column)
        return [row[index] for row in self._rows]

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:
        return (
            f"HeapTable({self.schema.name}, rows={self.row_count}, "
            f"pages={self.page_count})"
        )
