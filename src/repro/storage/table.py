"""In-memory heap tables with a simulated page model.

The survey's cost discussion (Section 5) is phrased in terms of *pages*:
the number of data pages in a relation, pages in an index, and buffer-pool
behaviour.  We therefore store rows in memory but expose a faithful page
abstraction -- each table reports how many pages it occupies and the
executor counts page reads, so that measured I/O matches the analytic cost
model's vocabulary.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.catalog.schema import TableSchema
from repro.errors import SerializationError, StorageError

DEFAULT_PAGE_SIZE_BYTES = 8192

Row = Tuple[Any, ...]


class HeapTable:
    """A heap of rows honouring a :class:`TableSchema`, organised into pages.

    Rows are stored in insertion order.  ``rows_per_page`` is derived from
    the schema's modelled row width and the page size, mimicking how a disk
    based system packs fixed-width rows into slotted pages.

    Args:
        schema: the table schema.
        page_size_bytes: modelled page capacity (default 8 KiB).
    """

    def __init__(
        self, schema: TableSchema, page_size_bytes: int = DEFAULT_PAGE_SIZE_BYTES
    ) -> None:
        if page_size_bytes <= 0:
            raise StorageError("page size must be positive")
        self.schema = schema
        self.page_size_bytes = page_size_bytes
        self.rows_per_page = max(1, page_size_bytes // schema.row_width_bytes)
        self._rows: List[Row] = []
        # Monotonic mutation counter plus a scratch dict for engines that
        # cache derived images of the table (e.g. the columnar engine's
        # column arrays); a cache entry is valid only while data_version
        # matches the version it was built against.
        self._data_version = 0
        self.runtime_cache: dict = {}
        # MVCC version metadata, kept *sparse*: a row id appears in these
        # dicts only when a transaction created or deleted it.  A table
        # with both dicts empty is "flat" -- every row is committed and
        # visible -- and all read paths skip visibility checks entirely,
        # so read-only workloads pay nothing for the machinery.
        self._xmin: Dict[int, int] = {}
        self._xmax: Dict[int, int] = {}
        # Live reference to the transaction manager's aborted-txid set,
        # installed when the first transaction writes to this table; lets
        # snapshot-free readers (legacy direct-execute paths) skip rows
        # created by aborted transactions.
        self._mvcc_aborted: Set[int] = set()
        # Guards every heap mutation: append + row-id assignment and the
        # conflict check + version-stamp write must be atomic under
        # concurrent writer threads.  Reentrant so the DML executors can
        # hold it across a whole per-row sequence (heap mutation plus
        # incremental index maintenance) while the methods below still
        # lock when called directly.
        self.lock = threading.RLock()

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, row: Sequence[Any]) -> int:
        """Validate and append one row; returns its row id (position)."""
        validated = self.schema.validate_row(row)
        with self.lock:
            self._rows.append(validated)
            self._data_version += 1
            return len(self._rows) - 1

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        """Insert many rows; returns the number inserted."""
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def truncate(self) -> None:
        """Remove all rows."""
        with self.lock:
            self._rows.clear()
            self._xmin.clear()
            self._xmax.clear()
            self._data_version += 1
            self.runtime_cache.clear()

    # ------------------------------------------------------------------
    # MVCC version store
    # ------------------------------------------------------------------
    @property
    def is_flat(self) -> bool:
        """Whether every row is committed-visible (no version metadata).

        Flat tables take the fast read paths: raw ``scan()``, cached
        columnar images, no per-row visibility checks.
        """
        return not self._xmin and not self._xmax

    def bump_data_version(self) -> None:
        """Advance the mutation counter (called once per commit per table,
        never mid-statement, so cached plans and column images only ever
        observe committed states)."""
        self._data_version += 1

    def attach_mvcc(self, aborted: Set[int]) -> None:
        """Install the transaction manager's live aborted-txid set."""
        self._mvcc_aborted = aborted

    def mvcc_insert(self, row: Sequence[Any], txid: int) -> int:
        """Append a row created by ``txid``; invisible to other snapshots
        until that transaction commits.  Does NOT bump ``data_version`` --
        version bumps happen at commit only."""
        validated = self.schema.validate_row(row)
        with self.lock:
            self._rows.append(validated)
            row_id = len(self._rows) - 1
            self._xmin[row_id] = txid
            return row_id

    def mvcc_delete(self, row_id: int, txid: int) -> None:
        """Mark a row deleted by ``txid`` (first-writer-wins).

        Raises:
            SerializationError: a concurrent, non-aborted transaction
                already deleted (or updated) this row version.
            StorageError: the row id is out of range.
        """
        with self.lock:
            if not 0 <= row_id < len(self._rows):
                raise StorageError(
                    f"row id {row_id} out of range for table "
                    f"{self.schema.name!r}"
                )
            current = self._xmax.get(row_id, 0)
            if (
                current
                and current != txid
                and current not in self._mvcc_aborted
            ):
                raise SerializationError(
                    f"row {row_id} of {self.schema.name!r} already written "
                    f"by concurrent transaction {current}",
                    table=self.schema.name,
                    row_id=row_id,
                )
            self._xmax[row_id] = txid

    def undo_insert(self, row_id: int, txid: int) -> None:
        """Undo an insert by marking the row self-deleted; with
        ``xmin == xmax == txid`` the row is invisible to every snapshot
        (including its creator) and is reclaimed by the next vacuum."""
        with self.lock:
            self._xmax[row_id] = txid

    def undo_delete(self, row_id: int) -> None:
        """Undo a delete mark, releasing the row version for other writers."""
        with self.lock:
            self._xmax.pop(row_id, None)

    def row_visible(self, row_id: int, snapshot: Optional[Any] = None) -> bool:
        """Whether a row version is visible to ``snapshot``.

        With ``snapshot=None`` (legacy direct-execute paths) the check is
        read-latest: rows from aborted transactions and committed deletes
        are hidden, everything else is visible.
        """
        if not self._xmin and not self._xmax:
            return True
        xmin = self._xmin.get(row_id, 0)
        xmax = self._xmax.get(row_id, 0)
        if snapshot is None:
            if xmin and xmin in self._mvcc_aborted:
                return False
            return not xmax or xmax in self._mvcc_aborted
        aborted = snapshot.aborted
        if xmin and xmin != snapshot.txid:
            # Created by someone else: must have committed before us.
            if xmin in aborted or xmin >= snapshot.high or xmin in snapshot.active:
                return False
        if not xmax:
            return True
        if xmax == snapshot.txid:
            return False  # our own delete
        # Deleted by someone else: the delete hides the row only if the
        # deleter committed before our snapshot.
        if xmax in aborted or xmax >= snapshot.high or xmax in snapshot.active:
            return True
        return False

    def visible_rows(
        self, snapshot: Optional[Any] = None
    ) -> Iterator[Tuple[int, Row]]:
        """Yield visible ``(row_id, row)`` pairs in heap order."""
        if not self._xmin and not self._xmax:
            return enumerate(iter(self._rows))
        return (
            (row_id, row)
            for row_id, row in enumerate(self._rows)
            if self.row_visible(row_id, snapshot)
        )

    def replace_rows(self, rows: List[Row]) -> None:
        """Swap in a fully-committed row image (vacuum / crash recovery):
        clears all version metadata and cached derived images."""
        with self.lock:
            self._rows = list(rows)
            self._xmin.clear()
            self._xmax.clear()
            self.runtime_cache.clear()
            self._data_version += 1

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def data_version(self) -> int:
        """Bumped on every mutation; keys cached derived images."""
        return self._data_version

    @property
    def row_count(self) -> int:
        """Number of stored rows (the paper's cardinality statistic)."""
        return len(self._rows)

    @property
    def page_count(self) -> int:
        """Number of pages the table occupies (the paper's pages statistic)."""
        if not self._rows:
            return 0
        return (len(self._rows) + self.rows_per_page - 1) // self.rows_per_page

    def fetch(self, row_id: int) -> Row:
        """Fetch one row by id.

        Raises:
            StorageError: if the id is out of range.
        """
        if not 0 <= row_id < len(self._rows):
            raise StorageError(
                f"row id {row_id} out of range for table {self.schema.name!r}"
            )
        return self._rows[row_id]

    def page_of(self, row_id: int) -> int:
        """The page number holding a given row id."""
        return row_id // self.rows_per_page

    def scan(self) -> Iterator[Tuple[int, Row]]:
        """Yield ``(row_id, row)`` pairs in heap order."""
        return enumerate(iter(self._rows))

    def rows(self) -> List[Row]:
        """All rows as a list (copy-free view; callers must not mutate)."""
        return self._rows

    def column_values(self, column: str) -> List[Any]:
        """All values of one column, in heap order."""
        index = self.schema.column_index(column)
        return [row[index] for row in self._rows]

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:
        return (
            f"HeapTable({self.schema.name}, rows={self.row_count}, "
            f"pages={self.page_count})"
        )
