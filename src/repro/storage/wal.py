"""Write-ahead log of logical undo/redo records with crash simulation.

The log records *logical* operations (row values, not byte images): an
insert carries the inserted row, a delete the deleted row, an update both
the old and new rows.  Statements buffer their records on the owning
transaction and flush them to the shared log atomically at statement end,
so the log never contains a torn statement.  Commit durability is a
single ``commit`` record: recovery replays exactly the transactions whose
commit record survives in the retained prefix.

Checkpoints are kept out-of-band (not subject to ``crash`` truncation):
the first DML against a table snapshots its committed rows, and recovery
rebuilds the table as checkpoint + redo of committed records.  Because
every logged mutation happens after the checkpoint was taken, this is
correct for *any* prefix of the record list -- which is what the chaos
suite exercises.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

Row = Tuple[Any, ...]

# Record kinds.
INSERT = "insert"
DELETE = "delete"
UPDATE = "update"
COMMIT = "commit"
ABORT = "abort"


@dataclass(frozen=True)
class WalRecord:
    """One logical log record.

    Attributes:
        kind: ``insert`` / ``delete`` / ``update`` / ``commit`` / ``abort``.
        txid: the owning transaction.
        table: target table name (empty for commit/abort).
        values: inserted row, deleted row, or the *new* row of an update.
        old_values: the pre-image row of an update.
    """

    kind: str
    txid: int
    table: str = ""
    values: Optional[Row] = None
    old_values: Optional[Row] = None


def _same_row(a: Row, b: Row) -> bool:
    """Row equality with NaN treated as identical to NaN (a redo replay
    must find the row it logged even when a float column holds NaN)."""
    if len(a) != len(b):
        return False
    for x, y in zip(a, b):
        if x is y or x == y:
            continue
        if isinstance(x, float) and isinstance(y, float) and x != x and y != y:
            continue
        return False
    return True


class WriteAheadLog:
    """An append-only record list plus out-of-band table checkpoints."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._records: List[WalRecord] = []
        self._checkpoints: Dict[str, List[Row]] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def records(self) -> List[WalRecord]:
        """A snapshot copy of the record list."""
        with self._lock:
            return list(self._records)

    def checkpointed_tables(self) -> List[str]:
        with self._lock:
            return list(self._checkpoints)

    def ensure_checkpoint(self, table: str, rows: Iterable[Row]) -> None:
        """Snapshot a table's committed rows the first time it is written.

        Idempotent: later calls are no-ops, so the checkpoint always
        reflects the state before any logged mutation of the table.
        """
        with self._lock:
            if table not in self._checkpoints:
                self._checkpoints[table] = [tuple(row) for row in rows]

    def append(self, record: WalRecord) -> None:
        with self._lock:
            self._records.append(record)

    def extend(self, records: Iterable[WalRecord]) -> None:
        """Append a statement's records atomically (statement-atomic log)."""
        with self._lock:
            self._records.extend(records)

    def truncate(self, prefix: Optional[int] = None) -> None:
        """Simulate losing the log tail: keep only the first ``prefix``
        records (``None`` keeps everything -- a crash that lost no log)."""
        with self._lock:
            if prefix is not None:
                self._records = self._records[: max(0, prefix)]

    def replay(self) -> Dict[str, List[Row]]:
        """Rebuild every checkpointed table's committed-only image.

        Returns a dict of table name -> row list: the checkpoint plus the
        redo of every record whose transaction has a ``commit`` record in
        the retained log.  Deterministic and idempotent: a pure function
        of (checkpoints, records).
        """
        with self._lock:
            records = list(self._records)
            images = {
                name: list(rows) for name, rows in self._checkpoints.items()
            }
        committed = {r.txid for r in records if r.kind == COMMIT}
        for rec in records:
            if rec.txid not in committed:
                continue
            rows = images.get(rec.table)
            if rows is None:
                continue
            if rec.kind == INSERT:
                assert rec.values is not None
                rows.append(rec.values)
            elif rec.kind == DELETE:
                assert rec.values is not None
                for i, row in enumerate(rows):
                    if _same_row(row, rec.values):
                        del rows[i]
                        break
            elif rec.kind == UPDATE:
                assert rec.values is not None and rec.old_values is not None
                for i, row in enumerate(rows):
                    if _same_row(row, rec.old_values):
                        rows[i] = rec.values
                        break
        return images
