"""SQL front end: lexer, parser, and binder."""

from repro.sql.ast import SelectStmt
from repro.sql.binder import Binder, UdfRegistration
from repro.sql.lexer import Token, TokenType, tokenize
from repro.sql.parser import parse

__all__ = [
    "Binder",
    "SelectStmt",
    "Token",
    "TokenType",
    "UdfRegistration",
    "parse",
    "tokenize",
]
