"""Tokenizer for the SQL subset."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.errors import LexerError

KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER",
    "ASC", "DESC", "AND", "OR", "NOT", "IN", "EXISTS", "IS", "NULL", "AS",
    "JOIN", "LEFT", "OUTER", "INNER", "CROSS", "ON", "UNION", "ALL",
    "BETWEEN", "COUNT", "SUM", "AVG", "MIN", "MAX", "TRUE", "FALSE",
    "CREATE", "VIEW", "EXPLAIN", "ANALYZE", "PREPARE", "EXECUTE",
    "DEALLOCATE", "LIMIT", "OFFSET",
    "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE",
    "BEGIN", "COMMIT", "ROLLBACK", "TRANSACTION", "WORK",
}


class TokenType(enum.Enum):
    """Lexical token categories."""

    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    type: TokenType
    value: str
    position: int

    def is_keyword(self, *words: str) -> bool:
        """Whether this token is one of the given keywords."""
        return self.type is TokenType.KEYWORD and self.value in words


_OPERATORS = ("<>", "<=", ">=", "!=", "=", "<", ">", "+", "-", "*", "/")
_PUNCT = "(),.?"


def tokenize(sql: str) -> List[Token]:
    """Tokenize SQL text.

    Raises:
        LexerError: on unterminated strings or unexpected characters.
    """
    tokens: List[Token] = []
    i = 0
    length = len(sql)
    while i < length:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and i + 1 < length and sql[i + 1] == "-":
            while i < length and sql[i] != "\n":
                i += 1
            continue
        if ch == "'":
            end = i + 1
            parts = []
            while True:
                if end >= length:
                    raise LexerError("unterminated string literal", i)
                if sql[end] == "'":
                    if end + 1 < length and sql[end + 1] == "'":
                        parts.append("'")
                        end += 2
                        continue
                    break
                parts.append(sql[end])
                end += 1
            tokens.append(Token(TokenType.STRING, "".join(parts), i))
            i = end + 1
            continue
        if ch.isdigit() or (
            ch == "." and i + 1 < length and sql[i + 1].isdigit()
        ):
            end = i
            seen_dot = False
            while end < length and (
                sql[end].isdigit() or (sql[end] == "." and not seen_dot)
            ):
                if sql[end] == ".":
                    # A dot followed by a non-digit is punctuation (t.col).
                    if end + 1 >= length or not sql[end + 1].isdigit():
                        break
                    seen_dot = True
                end += 1
            tokens.append(Token(TokenType.NUMBER, sql[i:end], i))
            i = end
            continue
        if ch.isalpha() or ch == "_":
            end = i
            while end < length and (sql[end].isalnum() or sql[end] in "_#"):
                end += 1
            word = sql[i:end]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, i))
            else:
                tokens.append(Token(TokenType.IDENT, word, i))
            i = end
            continue
        matched = False
        for operator in _OPERATORS:
            if sql.startswith(operator, i):
                tokens.append(Token(TokenType.OPERATOR, operator, i))
                i += len(operator)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenType.PUNCT, ch, i))
            i += 1
            continue
        raise LexerError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.EOF, "", length))
    return tokens
