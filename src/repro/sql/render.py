"""Render parsed SQL statements back to text, per target dialect.

Differential testing against an external oracle needs our SQL dialect
translated into the oracle's.  The subset this front end accepts is
nearly a subset of SQLite's, with four deliberate divergences the
``sqlite`` dialect normalizes at render time:

* **Division**: our ``/`` is true division (Python semantics) for any
  operand types; SQLite truncates when both operands are INTEGER.  The
  sqlite dialect renders ``l / r`` as ``(CAST(l AS REAL) / r)`` so both
  systems compute the same value.
* **Bare OFFSET**: we accept ``OFFSET n`` without LIMIT; SQLite only
  accepts OFFSET after a LIMIT, so the sqlite dialect emits
  ``LIMIT -1 OFFSET n`` (SQLite's spelling of "no limit").
* **Boolean literals**: rendered as ``1`` / ``0`` for SQLite (they are
  integers there anyway; the keywords TRUE/FALSE only parse in
  SQLite >= 3.23).
* **NULL ordering**: both systems place NULLs first on ascending keys
  and last on descending keys, so ORDER BY renders unchanged -- but the
  agreement is a checked assumption, pinned by the oracle suite, not a
  coincidence we silently rely on.

UDF calls have no SQLite-side implementation and raise
:class:`RenderError` under the sqlite dialect.

The ``repro`` dialect round-trips through our own parser (the
property-style generator tests rely on this), which makes the renderer
usable for logging and for replaying workload traffic.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.sql.ast import (
    AstAggregate,
    AstArith,
    AstBetween,
    AstBool,
    AstColumn,
    AstComparison,
    AstExists,
    AstExpr,
    AstFuncCall,
    AstInList,
    AstInSubquery,
    AstIsNull,
    AstLiteral,
    AstNot,
    AstParam,
    AstScalarSubquery,
    DeleteStmt,
    FromItem,
    InsertStmt,
    JoinType,
    OrderItem,
    SelectItem,
    SelectStmt,
    UpdateStmt,
)

SQLITE = "sqlite"
REPRO = "repro"
_DIALECTS = (SQLITE, REPRO)


class RenderError(ReproError):
    """A statement contains a construct the target dialect cannot express."""


def render_select(stmt: SelectStmt, dialect: str = REPRO) -> str:
    """Render a SELECT statement as SQL text for the given dialect.

    Raises:
        RenderError: on constructs without a dialect equivalent (UDF
            calls under ``sqlite``) or an unknown dialect name.
    """
    if dialect not in _DIALECTS:
        raise RenderError(f"unknown dialect {dialect!r}")
    parts = ["SELECT"]
    if stmt.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(_select_item(item, dialect) for item in stmt.select_items))
    parts.append("FROM")
    parts.append(_from_list(stmt.from_items, dialect))
    if stmt.where is not None:
        parts.append("WHERE")
        parts.append(_expr(stmt.where, dialect))
    if stmt.group_by:
        parts.append("GROUP BY")
        parts.append(", ".join(_expr(e, dialect) for e in stmt.group_by))
    if stmt.having is not None:
        parts.append("HAVING")
        parts.append(_expr(stmt.having, dialect))
    if stmt.order_by:
        parts.append("ORDER BY")
        parts.append(", ".join(_order_item(item, dialect) for item in stmt.order_by))
    if stmt.limit is not None:
        parts.append(f"LIMIT {stmt.limit}")
    elif stmt.offset and dialect == SQLITE:
        # SQLite's OFFSET requires a LIMIT; -1 means "unbounded".
        parts.append("LIMIT -1")
    if stmt.offset:
        parts.append(f"OFFSET {stmt.offset}")
    return " ".join(parts)


def render_sqlite(stmt: SelectStmt) -> str:
    """Shorthand: render for the stdlib ``sqlite3`` oracle."""
    return render_select(stmt, SQLITE)


def render_insert(stmt: InsertStmt, dialect: str = REPRO) -> str:
    """Render an INSERT statement for the given dialect."""
    if dialect not in _DIALECTS:
        raise RenderError(f"unknown dialect {dialect!r}")
    parts = [f"INSERT INTO {stmt.table}"]
    if stmt.columns:
        parts.append(f"({', '.join(stmt.columns)})")
    if stmt.select is not None:
        parts.append(render_select(stmt.select, dialect))
    else:
        rows = ", ".join(
            f"({', '.join(_expr(value, dialect) for value in row)})"
            for row in stmt.values
        )
        parts.append(f"VALUES {rows}")
    return " ".join(parts)


def render_update(stmt: UpdateStmt, dialect: str = REPRO) -> str:
    """Render an UPDATE statement for the given dialect."""
    if dialect not in _DIALECTS:
        raise RenderError(f"unknown dialect {dialect!r}")
    assignments = ", ".join(
        f"{column} = {_expr(value, dialect)}"
        for column, value in stmt.assignments
    )
    text = f"UPDATE {stmt.table} SET {assignments}"
    if stmt.where is not None:
        text += f" WHERE {_expr(stmt.where, dialect)}"
    return text


def render_delete(stmt: DeleteStmt, dialect: str = REPRO) -> str:
    """Render a DELETE statement for the given dialect."""
    if dialect not in _DIALECTS:
        raise RenderError(f"unknown dialect {dialect!r}")
    text = f"DELETE FROM {stmt.table}"
    if stmt.where is not None:
        text += f" WHERE {_expr(stmt.where, dialect)}"
    return text


def render_dml(
    stmt: "InsertStmt | UpdateStmt | DeleteStmt", dialect: str = REPRO
) -> str:
    """Render any DML statement for the given dialect."""
    if isinstance(stmt, InsertStmt):
        return render_insert(stmt, dialect)
    if isinstance(stmt, UpdateStmt):
        return render_update(stmt, dialect)
    if isinstance(stmt, DeleteStmt):
        return render_delete(stmt, dialect)
    raise RenderError(f"cannot render statement type {type(stmt).__name__}")


# ----------------------------------------------------------------------
# Clause pieces
# ----------------------------------------------------------------------
def _select_item(item: SelectItem, dialect: str) -> str:
    if item.star:
        if item.star_qualifier:
            return f"{item.star_qualifier}.*"
        return "*"
    text = _expr(item.expr, dialect)
    if item.alias:
        return f"{text} AS {item.alias}"
    return text


def _from_list(items, dialect: str) -> str:
    rendered = [_table_ref(items[0].table, dialect)]
    for item in items[1:]:
        table = _table_ref(item.table, dialect)
        if item.join_type is JoinType.CROSS and item.on is None:
            rendered.append(f", {table}")
        elif item.join_type is JoinType.CROSS:
            rendered.append(f" CROSS JOIN {table}")
        else:
            keyword = (
                "LEFT OUTER JOIN"
                if item.join_type is JoinType.LEFT_OUTER
                else "JOIN"
            )
            on = _expr(item.on, dialect)
            rendered.append(f" {keyword} {table} ON {on}")
    return "".join(rendered)


def _table_ref(ref, dialect: str) -> str:
    if ref.subquery is not None:
        inner = render_select(ref.subquery, dialect)
        return f"({inner}) AS {ref.alias}"
    if ref.alias and ref.alias != ref.name:
        return f"{ref.name} {ref.alias}"
    return ref.name


def _order_item(item: OrderItem, dialect: str) -> str:
    direction = "ASC" if item.ascending else "DESC"
    return f"{_expr(item.expr, dialect)} {direction}"


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
def _expr(expr: AstExpr, dialect: str) -> str:
    if isinstance(expr, AstLiteral):
        return _literal(expr.value, dialect)
    if isinstance(expr, AstParam):
        return "?"
    if isinstance(expr, AstColumn):
        if expr.qualifier:
            return f"{expr.qualifier}.{expr.name}"
        return expr.name
    if isinstance(expr, AstComparison):
        return f"{_operand(expr.left, dialect)} {expr.op} {_operand(expr.right, dialect)}"
    if isinstance(expr, AstBool):
        joiner = f" {expr.op} "
        return joiner.join(_operand(arg, dialect) for arg in expr.args)
    if isinstance(expr, AstNot):
        return f"NOT ({_expr(expr.arg, dialect)})"
    if isinstance(expr, AstArith):
        left = _operand(expr.left, dialect)
        right = _operand(expr.right, dialect)
        if expr.op == "/" and dialect == SQLITE:
            # SQLite truncates INTEGER / INTEGER; ours never does.
            return f"(CAST({left} AS REAL) / {right})"
        return f"{left} {expr.op} {right}"
    if isinstance(expr, AstIsNull):
        negation = "NOT " if expr.negated else ""
        return f"{_operand(expr.arg, dialect)} IS {negation}NULL"
    if isinstance(expr, AstInList):
        values = ", ".join(_expr(value, dialect) for value in expr.values)
        negation = "NOT " if expr.negated else ""
        return f"{_operand(expr.arg, dialect)} {negation}IN ({values})"
    if isinstance(expr, AstBetween):
        return (
            f"{_operand(expr.arg, dialect)} BETWEEN "
            f"{_operand(expr.low, dialect)} AND {_operand(expr.high, dialect)}"
        )
    if isinstance(expr, AstAggregate):
        arg = "*" if expr.arg is None else _expr(expr.arg, dialect)
        distinct = "DISTINCT " if expr.distinct else ""
        return f"{expr.func}({distinct}{arg})"
    if isinstance(expr, AstInSubquery):
        inner = render_select(expr.subquery, dialect)
        negation = "NOT " if expr.negated else ""
        return f"{_operand(expr.arg, dialect)} {negation}IN ({inner})"
    if isinstance(expr, AstExists):
        inner = render_select(expr.subquery, dialect)
        negation = "NOT " if expr.negated else ""
        return f"{negation}EXISTS ({inner})"
    if isinstance(expr, AstScalarSubquery):
        return f"({render_select(expr.subquery, dialect)})"
    if isinstance(expr, AstFuncCall):
        if dialect == SQLITE:
            raise RenderError(
                f"function call {expr.name!r} has no SQLite equivalent"
            )
        args = ", ".join(_expr(arg, dialect) for arg in expr.args)
        return f"{expr.name}({args})"
    raise RenderError(f"cannot render expression type {type(expr).__name__}")


def _operand(expr: AstExpr, dialect: str) -> str:
    """Render a sub-expression, parenthesizing compound forms.

    Leaves (columns, literals, params, aggregates, subqueries) never
    need parentheses; everything else gets them so the rendering is
    precedence-proof in both dialects.
    """
    text = _expr(expr, dialect)
    if isinstance(
        expr,
        (AstColumn, AstLiteral, AstParam, AstAggregate, AstScalarSubquery),
    ):
        return text
    return f"({text})"


def _literal(value, dialect: str) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        if dialect == SQLITE:
            return "1" if value else "0"
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, float):
        return repr(value)
    return str(value)
