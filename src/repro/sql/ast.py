"""Abstract syntax trees produced by the SQL parser.

The AST is name-based (unresolved); the binder resolves identifiers
against the catalog and scope chain and produces QGM query blocks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple, Union


# ----------------------------------------------------------------------
# Scalar expressions (unresolved)
# ----------------------------------------------------------------------
class AstExpr:
    """Base class of unresolved scalar expressions."""


@dataclass(frozen=True)
class AstColumn(AstExpr):
    """A possibly qualified column name: ``[qualifier.]name``."""

    qualifier: Optional[str]
    name: str


@dataclass(frozen=True)
class AstLiteral(AstExpr):
    """A constant (int, float, str, bool, or None)."""

    value: Any


@dataclass(frozen=True)
class AstParam(AstExpr):
    """A positional parameter placeholder ``?`` (0-indexed in order)."""

    index: int


@dataclass(frozen=True)
class AstComparison(AstExpr):
    """Binary comparison ``left op right`` (op as SQL text)."""

    op: str
    left: AstExpr
    right: AstExpr


@dataclass(frozen=True)
class AstBool(AstExpr):
    """AND/OR over arguments."""

    op: str
    args: Tuple[AstExpr, ...]


@dataclass(frozen=True)
class AstNot(AstExpr):
    """Logical negation."""

    arg: AstExpr


@dataclass(frozen=True)
class AstArith(AstExpr):
    """Binary arithmetic."""

    op: str
    left: AstExpr
    right: AstExpr


@dataclass(frozen=True)
class AstIsNull(AstExpr):
    """``expr IS [NOT] NULL``."""

    arg: AstExpr
    negated: bool


@dataclass(frozen=True)
class AstInList(AstExpr):
    """``expr [NOT] IN (literal, ...)``."""

    arg: AstExpr
    values: Tuple[AstExpr, ...]
    negated: bool


@dataclass(frozen=True)
class AstBetween(AstExpr):
    """``expr BETWEEN low AND high``."""

    arg: AstExpr
    low: AstExpr
    high: AstExpr


@dataclass(frozen=True)
class AstAggregate(AstExpr):
    """Aggregate call: func, argument (None for ``COUNT(*)``), DISTINCT."""

    func: str
    arg: Optional[AstExpr]
    distinct: bool = False


@dataclass(frozen=True)
class AstFuncCall(AstExpr):
    """A non-aggregate (user-defined) function call."""

    name: str
    args: Tuple[AstExpr, ...]


@dataclass(frozen=True)
class AstInSubquery(AstExpr):
    """``expr [NOT] IN (SELECT ...)``."""

    arg: AstExpr
    subquery: "SelectStmt"
    negated: bool


@dataclass(frozen=True)
class AstExists(AstExpr):
    """``[NOT] EXISTS (SELECT ...)``."""

    subquery: "SelectStmt"
    negated: bool


@dataclass(frozen=True)
class AstScalarSubquery(AstExpr):
    """A parenthesized SELECT used as a scalar value."""

    subquery: "SelectStmt"


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
class JoinType(enum.Enum):
    """FROM-clause join flavours."""

    INNER = "INNER"
    LEFT_OUTER = "LEFT OUTER"
    CROSS = "CROSS"


@dataclass
class TableRef:
    """One FROM entry: a table/view name or a derived table (subquery)."""

    name: Optional[str] = None
    subquery: Optional["SelectStmt"] = None
    alias: Optional[str] = None

    @property
    def effective_alias(self) -> str:
        """The alias used to address this entry's columns."""
        if self.alias:
            return self.alias
        if self.name:
            return self.name
        raise ValueError("derived table requires an alias")


@dataclass
class FromItem:
    """A FROM-clause element with how it joins the elements before it."""

    table: TableRef
    join_type: JoinType = JoinType.CROSS
    on: Optional[AstExpr] = None


@dataclass
class SelectItem:
    """One SELECT-list entry: expression with optional alias, or a star."""

    expr: Optional[AstExpr] = None
    alias: Optional[str] = None
    star: bool = False
    star_qualifier: Optional[str] = None


@dataclass
class OrderItem:
    """One ORDER BY key."""

    expr: AstExpr
    ascending: bool = True


@dataclass
class SelectStmt:
    """A (possibly nested) SELECT statement."""

    select_items: List[SelectItem] = field(default_factory=list)
    distinct: bool = False
    from_items: List[FromItem] = field(default_factory=list)
    where: Optional[AstExpr] = None
    group_by: List[AstExpr] = field(default_factory=list)
    having: Optional[AstExpr] = None
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: int = 0
    param_count: int = 0


@dataclass
class ExplainStmt:
    """``EXPLAIN [ANALYZE] <select>``: show the plan, optionally run it."""

    query: SelectStmt
    analyze: bool = False
    sql_text: str = ""


@dataclass
class PrepareStmt:
    """``PREPARE <name> AS <select>`` with ``?`` parameter markers."""

    name: str
    query: SelectStmt
    sql_text: str = ""


@dataclass
class ExecuteStmt:
    """``EXECUTE <name> [(value, ...)]``: run a prepared statement."""

    name: str
    args: Tuple[Any, ...] = ()


@dataclass
class DeallocateStmt:
    """``DEALLOCATE <name>``: drop a prepared statement."""

    name: str


@dataclass
class InsertStmt:
    """``INSERT INTO t [(col, ...)] VALUES (...), ...`` or
    ``INSERT INTO t [(col, ...)] <select>``."""

    table: str
    columns: List[str] = field(default_factory=list)
    values: List[List[AstExpr]] = field(default_factory=list)
    select: Optional[SelectStmt] = None
    param_count: int = 0


@dataclass
class UpdateStmt:
    """``UPDATE t SET col = expr, ... [WHERE ...]``."""

    table: str
    assignments: List[Tuple[str, AstExpr]] = field(default_factory=list)
    where: Optional[AstExpr] = None
    param_count: int = 0


@dataclass
class DeleteStmt:
    """``DELETE FROM t [WHERE ...]``."""

    table: str
    where: Optional[AstExpr] = None
    param_count: int = 0


@dataclass
class BeginStmt:
    """``BEGIN [TRANSACTION|WORK]``: open an explicit transaction."""


@dataclass
class CommitStmt:
    """``COMMIT [TRANSACTION|WORK]``: commit the open transaction."""


@dataclass
class RollbackStmt:
    """``ROLLBACK [TRANSACTION|WORK]``: abort the open transaction."""


# Every statement kind the front end can dispatch on.
Statement = Union[
    SelectStmt, ExplainStmt, PrepareStmt, ExecuteStmt, DeallocateStmt,
    InsertStmt, UpdateStmt, DeleteStmt, BeginStmt, CommitStmt, RollbackStmt,
]
