"""Recursive-descent parser for the SQL subset.

Grammar (informal):

    select    := SELECT [DISTINCT] items FROM from_list [WHERE pred]
                 [GROUP BY cols] [HAVING pred] [ORDER BY keys]
    from_list := from_item { (',' | [LEFT [OUTER] | INNER | CROSS] JOIN)
                 from_item [ON pred] }
    pred      := or_expr with AND/OR/NOT, comparisons, IN, EXISTS,
                 BETWEEN, IS [NOT] NULL, scalar subqueries
    expr      := additive arithmetic over primaries; aggregates and
                 function calls as primaries
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ParseError
from repro.sql.ast import (
    AstAggregate,
    AstArith,
    AstBetween,
    AstBool,
    AstColumn,
    AstComparison,
    AstExists,
    AstExpr,
    AstFuncCall,
    AstInList,
    AstInSubquery,
    AstIsNull,
    AstLiteral,
    AstNot,
    AstParam,
    AstScalarSubquery,
    BeginStmt,
    CommitStmt,
    DeallocateStmt,
    DeleteStmt,
    ExecuteStmt,
    ExplainStmt,
    FromItem,
    InsertStmt,
    JoinType,
    OrderItem,
    PrepareStmt,
    RollbackStmt,
    SelectItem,
    SelectStmt,
    Statement,
    TableRef,
    UpdateStmt,
)
from repro.sql.lexer import Token, TokenType, tokenize

_AGGREGATES = {"COUNT", "SUM", "AVG", "MIN", "MAX"}
_COMPARISONS = {"=", "<>", "!=", "<", "<=", ">", ">="}


def parse(sql: str) -> SelectStmt:
    """Parse one SELECT statement.

    Raises:
        ParseError: on syntax errors.
        LexerError: on bad tokens.
    """
    parser = _Parser(tokenize(sql))
    stmt = parser.parse_select()
    parser.expect_eof()
    stmt.param_count = parser.param_count
    return stmt


def parse_statement(sql: str) -> Statement:
    """Parse one top-level statement.

    Recognizes ``EXPLAIN [ANALYZE] <select>``, ``PREPARE <name> AS
    <select>``, ``EXECUTE <name> [(args)]``, ``DEALLOCATE <name>``, and
    plain ``SELECT``.

    Raises:
        ParseError: on syntax errors.
        LexerError: on bad tokens.
    """
    parser = _Parser(tokenize(sql))
    stmt = parser.parse_statement(sql)
    parser.expect_eof()
    return stmt


def normalize_sql(sql: str) -> str:
    """Canonical single-line rendering of SQL text, via the lexer.

    Whitespace, comments, and keyword case are erased so textually
    different but lexically identical statements share one plan-cache
    key.  Identifiers keep their case (catalog names are case
    sensitive); string literals keep their exact contents.
    """
    parts: List[str] = []
    for token in tokenize(sql):
        if token.type is TokenType.EOF:
            break
        if token.type is TokenType.STRING:
            escaped = token.value.replace("'", "''")
            parts.append(f"'{escaped}'")
        else:
            parts.append(token.value)
    return " ".join(parts)


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0
        self.param_count = 0

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------
    def _peek(self, ahead: int = 0) -> Token:
        index = min(self._pos + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _next(self) -> Token:
        token = self._peek()
        self._pos += 1
        return token

    def _accept_keyword(self, *words: str) -> Optional[Token]:
        if self._peek().is_keyword(*words):
            return self._next()
        return None

    def _expect_keyword(self, word: str) -> Token:
        token = self._next()
        if not token.is_keyword(word):
            raise ParseError(f"expected {word}, got {token.value!r}", token.position)
        return token

    def _accept_punct(self, value: str) -> Optional[Token]:
        token = self._peek()
        if token.type is TokenType.PUNCT and token.value == value:
            return self._next()
        return None

    def _expect_punct(self, value: str) -> Token:
        token = self._next()
        if token.type is not TokenType.PUNCT or token.value != value:
            raise ParseError(
                f"expected {value!r}, got {token.value!r}", token.position
            )
        return token

    def _expect_ident(self) -> str:
        token = self._next()
        if token.type is not TokenType.IDENT:
            raise ParseError(
                f"expected identifier, got {token.value!r}", token.position
            )
        return token.value

    def expect_eof(self) -> None:
        token = self._peek()
        if token.type is not TokenType.EOF:
            raise ParseError(
                f"unexpected trailing input {token.value!r}", token.position
            )

    # ------------------------------------------------------------------
    # Top-level statements
    # ------------------------------------------------------------------
    def parse_statement(self, sql_text: str = "") -> Statement:
        token = self._peek()
        if token.is_keyword("EXPLAIN"):
            self._next()
            analyze = bool(self._accept_keyword("ANALYZE"))
            body_start = self._peek().position
            query = self.parse_select()
            query.param_count = self.param_count
            return ExplainStmt(
                query=query, analyze=analyze, sql_text=sql_text[body_start:]
            )
        if token.is_keyword("PREPARE"):
            self._next()
            name = self._expect_ident()
            self._expect_keyword("AS")
            body_start = self._peek().position
            query = self.parse_select()
            query.param_count = self.param_count
            return PrepareStmt(
                name=name, query=query, sql_text=sql_text[body_start:]
            )
        if token.is_keyword("EXECUTE"):
            self._next()
            name = self._expect_ident()
            args: List[object] = []
            if self._accept_punct("("):
                if not (
                    self._peek().type is TokenType.PUNCT
                    and self._peek().value == ")"
                ):
                    args.append(self._parse_execute_arg())
                    while self._accept_punct(","):
                        args.append(self._parse_execute_arg())
                self._expect_punct(")")
            return ExecuteStmt(name=name, args=tuple(args))
        if token.is_keyword("DEALLOCATE"):
            self._next()
            return DeallocateStmt(name=self._expect_ident())
        if token.is_keyword("INSERT"):
            return self._parse_insert()
        if token.is_keyword("UPDATE"):
            return self._parse_update()
        if token.is_keyword("DELETE"):
            return self._parse_delete()
        if token.is_keyword("BEGIN"):
            self._next()
            self._accept_keyword("TRANSACTION", "WORK")
            return BeginStmt()
        if token.is_keyword("COMMIT"):
            self._next()
            self._accept_keyword("TRANSACTION", "WORK")
            return CommitStmt()
        if token.is_keyword("ROLLBACK"):
            self._next()
            self._accept_keyword("TRANSACTION", "WORK")
            return RollbackStmt()
        stmt = self.parse_select()
        stmt.param_count = self.param_count
        return stmt

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------
    def _parse_insert(self) -> InsertStmt:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_ident()
        columns: List[str] = []
        if self._accept_punct("("):
            columns.append(self._expect_ident())
            while self._accept_punct(","):
                columns.append(self._expect_ident())
            self._expect_punct(")")
        if self._accept_keyword("VALUES"):
            values = [self._parse_values_row()]
            while self._accept_punct(","):
                values.append(self._parse_values_row())
            stmt = InsertStmt(table=table, columns=columns, values=values)
        elif self._peek().is_keyword("SELECT"):
            select = self.parse_select()
            select.param_count = self.param_count
            stmt = InsertStmt(table=table, columns=columns, select=select)
        else:
            raise ParseError(
                "expected VALUES or SELECT after INSERT INTO",
                self._peek().position,
            )
        stmt.param_count = self.param_count
        return stmt

    def _parse_values_row(self) -> List[AstExpr]:
        self._expect_punct("(")
        row = [self._parse_expr()]
        while self._accept_punct(","):
            row.append(self._parse_expr())
        self._expect_punct(")")
        return row

    def _parse_update(self) -> UpdateStmt:
        self._expect_keyword("UPDATE")
        table = self._expect_ident()
        self._expect_keyword("SET")
        assignments = [self._parse_assignment()]
        while self._accept_punct(","):
            assignments.append(self._parse_assignment())
        where = None
        if self._accept_keyword("WHERE"):
            where = self._parse_predicate()
        stmt = UpdateStmt(table=table, assignments=assignments, where=where)
        stmt.param_count = self.param_count
        return stmt

    def _parse_assignment(self):
        column = self._expect_ident()
        token = self._next()
        if token.type is not TokenType.OPERATOR or token.value != "=":
            raise ParseError(
                f"expected '=' in SET assignment, got {token.value!r}",
                token.position,
            )
        return (column, self._parse_expr())

    def _parse_delete(self) -> DeleteStmt:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect_ident()
        where = None
        if self._accept_keyword("WHERE"):
            where = self._parse_predicate()
        stmt = DeleteStmt(table=table, where=where)
        stmt.param_count = self.param_count
        return stmt

    def _parse_execute_arg(self) -> object:
        """One EXECUTE argument: a literal constant (sign allowed)."""
        expr = self._parse_primary()
        if isinstance(expr, AstLiteral):
            return expr.value
        raise ParseError(
            "EXECUTE arguments must be literal constants",
            self._peek().position,
        )

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------
    def parse_select(self) -> SelectStmt:
        self._expect_keyword("SELECT")
        stmt = SelectStmt()
        if self._accept_keyword("DISTINCT"):
            stmt.distinct = True
        stmt.select_items.append(self._parse_select_item())
        while self._accept_punct(","):
            stmt.select_items.append(self._parse_select_item())
        self._expect_keyword("FROM")
        stmt.from_items = self._parse_from_list()
        if self._accept_keyword("WHERE"):
            stmt.where = self._parse_predicate()
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            stmt.group_by.append(self._parse_expr())
            while self._accept_punct(","):
                stmt.group_by.append(self._parse_expr())
        if self._accept_keyword("HAVING"):
            stmt.having = self._parse_predicate()
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            stmt.order_by.append(self._parse_order_item())
            while self._accept_punct(","):
                stmt.order_by.append(self._parse_order_item())
        if self._accept_keyword("LIMIT"):
            stmt.limit = self._parse_row_count("LIMIT")
        if self._accept_keyword("OFFSET"):
            stmt.offset = self._parse_row_count("OFFSET")
        return stmt

    def _parse_row_count(self, clause: str) -> int:
        """A LIMIT/OFFSET operand: a non-negative integer literal."""
        token = self._peek()
        if token.type is not TokenType.NUMBER:
            raise ParseError(
                f"{clause} expects a non-negative integer literal",
                token.position,
            )
        self._next()
        value = token.value
        if isinstance(value, str):
            if "." in value:
                raise ParseError(
                    f"{clause} expects an integer, got {value!r}", token.position
                )
            value = int(value)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise ParseError(
                f"{clause} expects a non-negative integer, got {value!r}",
                token.position,
            )
        return value

    def _parse_select_item(self) -> SelectItem:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value == "*":
            self._next()
            return SelectItem(star=True)
        if (
            token.type is TokenType.IDENT
            and self._peek(1).type is TokenType.PUNCT
            and self._peek(1).value == "."
            and self._peek(2).type is TokenType.OPERATOR
            and self._peek(2).value == "*"
        ):
            qualifier = self._expect_ident()
            self._expect_punct(".")
            self._next()  # *
            return SelectItem(star=True, star_qualifier=qualifier)
        expr = self._parse_expr()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident()
        elif self._peek().type is TokenType.IDENT:
            alias = self._expect_ident()
        return SelectItem(expr=expr, alias=alias)

    def _parse_order_item(self) -> OrderItem:
        expr = self._parse_expr()
        ascending = True
        if self._accept_keyword("DESC"):
            ascending = False
        else:
            self._accept_keyword("ASC")
        return OrderItem(expr=expr, ascending=ascending)

    # ------------------------------------------------------------------
    # FROM
    # ------------------------------------------------------------------
    def _parse_from_list(self) -> List[FromItem]:
        items = [FromItem(self._parse_table_ref(), JoinType.CROSS, None)]
        while True:
            if self._accept_punct(","):
                items.append(FromItem(self._parse_table_ref(), JoinType.CROSS, None))
                continue
            join_type = self._parse_join_type()
            if join_type is None:
                break
            table = self._parse_table_ref()
            on = None
            if join_type is not JoinType.CROSS:
                self._expect_keyword("ON")
                on = self._parse_predicate()
            items.append(FromItem(table, join_type, on))
        return items

    def _parse_join_type(self) -> Optional[JoinType]:
        if self._accept_keyword("JOIN"):
            return JoinType.INNER
        if self._peek().is_keyword("INNER"):
            self._next()
            self._expect_keyword("JOIN")
            return JoinType.INNER
        if self._peek().is_keyword("LEFT"):
            self._next()
            self._accept_keyword("OUTER")
            self._expect_keyword("JOIN")
            return JoinType.LEFT_OUTER
        if self._peek().is_keyword("CROSS"):
            self._next()
            self._expect_keyword("JOIN")
            return JoinType.CROSS
        return None

    def _parse_table_ref(self) -> TableRef:
        if self._accept_punct("("):
            subquery = self.parse_select()
            self._expect_punct(")")
            self._accept_keyword("AS")
            alias = self._expect_ident()
            return TableRef(subquery=subquery, alias=alias)
        name = self._expect_ident()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident()
        elif self._peek().type is TokenType.IDENT:
            alias = self._expect_ident()
        return TableRef(name=name, alias=alias)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def _parse_predicate(self) -> AstExpr:
        return self._parse_or()

    def _parse_or(self) -> AstExpr:
        left = self._parse_and()
        args = [left]
        while self._accept_keyword("OR"):
            args.append(self._parse_and())
        if len(args) == 1:
            return left
        return AstBool("OR", tuple(args))

    def _parse_and(self) -> AstExpr:
        left = self._parse_not()
        args = [left]
        while self._accept_keyword("AND"):
            args.append(self._parse_not())
        if len(args) == 1:
            return left
        return AstBool("AND", tuple(args))

    def _parse_not(self) -> AstExpr:
        if self._accept_keyword("NOT"):
            return AstNot(self._parse_not())
        return self._parse_condition()

    def _parse_condition(self) -> AstExpr:
        if self._peek().is_keyword("EXISTS"):
            self._next()
            self._expect_punct("(")
            subquery = self.parse_select()
            self._expect_punct(")")
            return AstExists(subquery, negated=False)
        left = self._parse_expr()
        token = self._peek()
        negated = False
        if token.is_keyword("NOT"):
            self._next()
            token = self._peek()
            negated = True
        if token.is_keyword("IN"):
            self._next()
            return self._parse_in_rhs(left, negated)
        if token.is_keyword("BETWEEN"):
            self._next()
            low = self._parse_expr()
            self._expect_keyword("AND")
            high = self._parse_expr()
            between = AstBetween(left, low, high)
            return AstNot(between) if negated else between
        if negated:
            raise ParseError("expected IN or BETWEEN after NOT", token.position)
        if token.is_keyword("IS"):
            self._next()
            is_negated = bool(self._accept_keyword("NOT"))
            self._expect_keyword("NULL")
            return AstIsNull(left, is_negated)
        if token.type is TokenType.OPERATOR and token.value in _COMPARISONS:
            op = self._next().value
            if op == "!=":
                op = "<>"
            right = self._parse_expr()
            return AstComparison(op, left, right)
        return left

    def _parse_in_rhs(self, left: AstExpr, negated: bool) -> AstExpr:
        self._expect_punct("(")
        if self._peek().is_keyword("SELECT"):
            subquery = self.parse_select()
            self._expect_punct(")")
            return AstInSubquery(left, subquery, negated)
        values = [self._parse_expr()]
        while self._accept_punct(","):
            values.append(self._parse_expr())
        self._expect_punct(")")
        return AstInList(left, tuple(values), negated)

    # ------------------------------------------------------------------
    # Scalar expressions
    # ------------------------------------------------------------------
    def _parse_expr(self) -> AstExpr:
        left = self._parse_term()
        while True:
            token = self._peek()
            if token.type is TokenType.OPERATOR and token.value in ("+", "-"):
                op = self._next().value
                right = self._parse_term()
                left = AstArith(op, left, right)
            else:
                return left

    def _parse_term(self) -> AstExpr:
        left = self._parse_primary()
        while True:
            token = self._peek()
            if token.type is TokenType.OPERATOR and token.value in ("*", "/"):
                op = self._next().value
                right = self._parse_primary()
                left = AstArith(op, left, right)
            else:
                return left

    def _parse_primary(self) -> AstExpr:
        token = self._peek()
        if token.type is TokenType.PUNCT and token.value == "?":
            self._next()
            param = AstParam(self.param_count)
            self.param_count += 1
            return param
        if token.type is TokenType.NUMBER:
            self._next()
            if "." in token.value:
                return AstLiteral(float(token.value))
            return AstLiteral(int(token.value))
        if token.type is TokenType.STRING:
            self._next()
            return AstLiteral(token.value)
        if token.is_keyword("NULL"):
            self._next()
            return AstLiteral(None)
        if token.is_keyword("TRUE"):
            self._next()
            return AstLiteral(True)
        if token.is_keyword("FALSE"):
            self._next()
            return AstLiteral(False)
        if token.type is TokenType.OPERATOR and token.value == "-":
            self._next()
            inner = self._parse_primary()
            if isinstance(inner, AstLiteral) and isinstance(
                inner.value, (int, float)
            ):
                return AstLiteral(-inner.value)
            return AstArith("-", AstLiteral(0), inner)
        if token.type is TokenType.KEYWORD and token.value in _AGGREGATES:
            return self._parse_aggregate()
        if token.type is TokenType.PUNCT and token.value == "(":
            self._next()
            if self._peek().is_keyword("SELECT"):
                subquery = self.parse_select()
                self._expect_punct(")")
                return AstScalarSubquery(subquery)
            inner = self._parse_predicate()
            self._expect_punct(")")
            return inner
        if token.type is TokenType.IDENT:
            return self._parse_identifier_expr()
        raise ParseError(f"unexpected token {token.value!r}", token.position)

    def _parse_aggregate(self) -> AstExpr:
        func = self._next().value
        self._expect_punct("(")
        distinct = bool(self._accept_keyword("DISTINCT"))
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value == "*":
            self._next()
            self._expect_punct(")")
            return AstAggregate(func, None, distinct)
        # COUNT(Emp.*) is treated as COUNT(*) scoped to the relation.
        if (
            token.type is TokenType.IDENT
            and self._peek(1).value == "."
            and self._peek(2).type is TokenType.OPERATOR
            and self._peek(2).value == "*"
        ):
            self._next()
            self._next()
            self._next()
            self._expect_punct(")")
            return AstAggregate(func, None, distinct)
        arg = self._parse_expr()
        self._expect_punct(")")
        return AstAggregate(func, arg, distinct)

    def _parse_identifier_expr(self) -> AstExpr:
        name = self._expect_ident()
        if self._accept_punct("."):
            column = self._expect_ident()
            return AstColumn(name, column)
        if self._peek().type is TokenType.PUNCT and self._peek().value == "(":
            self._next()
            args: List[AstExpr] = []
            if not (
                self._peek().type is TokenType.PUNCT and self._peek().value == ")"
            ):
                args.append(self._parse_expr())
                while self._accept_punct(","):
                    args.append(self._parse_expr())
            self._expect_punct(")")
            return AstFuncCall(name, tuple(args))
        return AstColumn(None, name)
