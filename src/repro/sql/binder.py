"""Name resolution: AST -> QGM query blocks.

The binder resolves identifiers against the catalog and the scope chain
(for correlated subqueries), expands views (by parsing their defining
SQL into nested blocks), extracts aggregate calls, and classifies WHERE
conjuncts into ordinary predicates and subquery predicates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.catalog.catalog import Catalog
from repro.errors import BindError
from repro.expr.aggregates import AggFunc, AggregateCall
from repro.expr.expressions import (
    Arithmetic,
    ArithOp,
    BoolExpr,
    BoolOp,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Expr,
    InList,
    IsNull,
    Literal,
    NotExpr,
    Param,
    UdfCall,
)
from repro.logical.dml import LogicalDelete, LogicalInsert, LogicalUpdate
from repro.logical.operators import ProjectItem
from repro.logical.qgm import (
    QueryBlock,
    Quantifier,
    SubqueryKind,
    SubqueryPredicate,
    fresh_block_label,
)
from repro.sql.ast import (
    AstAggregate,
    AstArith,
    AstBetween,
    AstBool,
    AstColumn,
    AstComparison,
    AstExists,
    AstExpr,
    AstFuncCall,
    AstInList,
    AstInSubquery,
    AstIsNull,
    AstLiteral,
    AstNot,
    AstParam,
    AstScalarSubquery,
    DeleteStmt,
    InsertStmt,
    JoinType,
    SelectStmt,
    UpdateStmt,
)
from repro.sql.parser import parse

_COMPARISON_OPS = {
    "=": ComparisonOp.EQ,
    "<>": ComparisonOp.NE,
    "<": ComparisonOp.LT,
    "<=": ComparisonOp.LE,
    ">": ComparisonOp.GT,
    ">=": ComparisonOp.GE,
}

_ARITH_OPS = {
    "+": ArithOp.ADD,
    "-": ArithOp.SUB,
    "*": ArithOp.MUL,
    "/": ArithOp.DIV,
}


@dataclass(frozen=True)
class UdfRegistration:
    """A registered user-defined function (Section 7.2).

    Attributes:
        fn: the Python callable.
        per_tuple_cost: modelled evaluation cost per invocation.
        selectivity: expected pass fraction when used as a predicate.
    """

    fn: Callable
    per_tuple_cost: float = 100.0
    selectivity: float = 0.5


def _and_conjuncts(expr: AstExpr) -> List[AstExpr]:
    """Top-level AND conjuncts of an unresolved predicate."""
    if isinstance(expr, AstBool) and expr.op == "AND":
        result: List[AstExpr] = []
        for arg in expr.args:
            result.extend(_and_conjuncts(arg))
        return result
    return [expr]


class _Scope:
    """One name-resolution scope: the quantifiers of a block being bound."""

    def __init__(self, catalog: Catalog, block: QueryBlock) -> None:
        self.catalog = catalog
        self.block = block
        # alias -> list of addressable column names
        self.columns: Dict[str, List[str]] = {}

    def add_quantifier(self, quantifier: Quantifier) -> None:
        if quantifier.alias in self.columns:
            raise BindError(f"duplicate alias {quantifier.alias!r}")
        if quantifier.over_block:
            names = [item.name for item in quantifier.block.select_items]
        else:
            names = self.catalog.schema(quantifier.table).column_names
        self.columns[quantifier.alias] = names

    def resolve(self, qualifier: Optional[str], name: str) -> Optional[ColumnRef]:
        if qualifier is not None:
            names = self.columns.get(qualifier)
            if names is None:
                return None
            if name not in names:
                raise BindError(f"no column {name!r} in {qualifier!r}")
            return ColumnRef(qualifier, name)
        matches = [
            alias for alias, names in self.columns.items() if name in names
        ]
        if not matches:
            return None
        if len(matches) > 1:
            raise BindError(f"ambiguous column {name!r} (in {sorted(matches)})")
        return ColumnRef(matches[0], name)


class Binder:
    """Binds parsed statements into QGM query blocks.

    Args:
        catalog: tables and views.
        udfs: registered user-defined functions by (lowercased) name.
    """

    def __init__(
        self, catalog: Catalog, udfs: Optional[Dict[str, UdfRegistration]] = None
    ) -> None:
        self.catalog = catalog
        self.udfs = {name.lower(): reg for name, reg in (udfs or {}).items()}
        self._collectors: List[_CorrelationCollector] = []

    # ------------------------------------------------------------------
    def bind(self, stmt: SelectStmt) -> QueryBlock:
        """Bind a statement tree into a query block tree."""
        return self._bind_select(stmt, outer_scopes=[])

    def bind_sql(self, sql: str) -> QueryBlock:
        """Parse and bind SQL text."""
        return self.bind(parse(sql))

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------
    def _dml_schema(self, table: str):
        if not self.catalog.has_table(table):
            raise BindError(f"unknown table {table!r} (DML targets base tables)")
        return self.catalog.schema(table)

    def _target_positions(self, schema, columns: Sequence[str]) -> List[int]:
        """Schema positions of an INSERT column list (full schema order
        when the list is omitted)."""
        names = schema.column_names
        if not columns:
            return list(range(len(names)))
        positions: List[int] = []
        seen = set()
        for column in columns:
            if column not in names:
                raise BindError(
                    f"no column {column!r} in table {schema.name!r}"
                )
            if column in seen:
                raise BindError(f"duplicate column {column!r} in INSERT list")
            seen.add(column)
            positions.append(names.index(column))
        return positions

    def bind_insert(self, stmt: InsertStmt) -> LogicalInsert:
        """Bind INSERT ... VALUES / INSERT ... SELECT against the catalog."""
        schema = self._dml_schema(stmt.table)
        positions = self._target_positions(schema, stmt.columns)
        width = len(schema.column_names)
        if stmt.select is not None:
            source = self._bind_select(stmt.select, outer_scopes=[])
            if len(source.select_items) != len(positions):
                raise BindError(
                    f"INSERT target has {len(positions)} columns but the "
                    f"SELECT produces {len(source.select_items)}"
                )
            select_positions: List[Optional[int]] = [None] * width
            for source_pos, target_pos in enumerate(positions):
                select_positions[target_pos] = source_pos
            return LogicalInsert(
                table=stmt.table,
                select=source,
                select_positions=select_positions,
            )
        # VALUES rows: expressions are bound against an *empty* scope --
        # column references have nothing to resolve to and fail typed.
        block = QueryBlock(label=fresh_block_label())
        rows: List[List[Expr]] = []
        for values in stmt.values:
            if len(values) != len(positions):
                raise BindError(
                    f"INSERT row has {len(values)} values for "
                    f"{len(positions)} target columns"
                )
            widened: List[Expr] = [Literal(None)] * width
            for value, target_pos in zip(values, positions):
                widened[target_pos] = self._bind_scalar(value, [], block)
            rows.append(widened)
        return LogicalInsert(table=stmt.table, rows=rows)

    def _dml_scope(self, table: str, block: QueryBlock) -> _Scope:
        """A single-quantifier scope addressing the target table by its
        own name (``UPDATE Emp SET ... WHERE Emp.age > 5`` or bare
        ``age > 5`` both resolve)."""
        scope = _Scope(self.catalog, block)
        scope.add_quantifier(Quantifier(alias=table, table=table))
        return scope

    def bind_update(self, stmt: UpdateStmt) -> LogicalUpdate:
        """Bind UPDATE: SET expressions and WHERE see the target's columns."""
        schema = self._dml_schema(stmt.table)
        block = QueryBlock(label=fresh_block_label())
        scopes = [self._dml_scope(stmt.table, block)]
        names = schema.column_names
        assignments: List[Tuple[int, Expr]] = []
        assigned = set()
        for column, expr in stmt.assignments:
            if column not in names:
                raise BindError(
                    f"no column {column!r} in table {schema.name!r}"
                )
            if column in assigned:
                raise BindError(f"column {column!r} SET twice")
            assigned.add(column)
            assignments.append(
                (names.index(column), self._bind_scalar(expr, scopes, block))
            )
        predicate = None
        if stmt.where is not None:
            predicate = self._bind_scalar(stmt.where, scopes, block)
        return LogicalUpdate(
            table=stmt.table, assignments=assignments, predicate=predicate
        )

    def bind_delete(self, stmt: DeleteStmt) -> LogicalDelete:
        """Bind DELETE: WHERE sees the target's columns."""
        self._dml_schema(stmt.table)
        block = QueryBlock(label=fresh_block_label())
        scopes = [self._dml_scope(stmt.table, block)]
        predicate = None
        if stmt.where is not None:
            predicate = self._bind_scalar(stmt.where, scopes, block)
        return LogicalDelete(table=stmt.table, predicate=predicate)

    # ------------------------------------------------------------------
    def _bind_select(
        self, stmt: SelectStmt, outer_scopes: List[_Scope]
    ) -> QueryBlock:
        block = QueryBlock(label=fresh_block_label())
        scope = _Scope(self.catalog, block)

        # FROM clause: quantifiers + join chain.
        for item in stmt.from_items:
            quantifier = self._bind_table_ref(item, outer_scopes)
            block.quantifiers.append(quantifier)
            scope.add_quantifier(quantifier)
            kind = {
                JoinType.CROSS: "cross",
                JoinType.INNER: "inner",
                JoinType.LEFT_OUTER: "left",
            }[item.join_type]
            block.join_chain.append((kind, None))

        scopes = outer_scopes + [scope]

        # ON predicates (bound after all quantifiers so ON can reference
        # earlier tables; SQL visibility is stricter but this is a superset).
        for index, item in enumerate(stmt.from_items):
            if item.on is not None:
                predicate = self._bind_scalar(item.on, scopes, block)
                kind = block.join_chain[index][0]
                if kind == "left":
                    block.join_chain[index] = (kind, predicate)
                else:
                    block.predicates.append(predicate)

        # WHERE clause: split into plain and subquery conjuncts.
        if stmt.where is not None:
            self._bind_where(stmt.where, scopes, block)

        # GROUP BY.
        for expr in stmt.group_by:
            bound = self._bind_scalar(expr, scopes, block)
            if not isinstance(bound, ColumnRef):
                raise BindError("GROUP BY supports plain columns only")
            block.group_keys.append(bound)

        # SELECT list (aggregates are extracted into block.aggregates).
        self._bind_select_items(stmt, scopes, block, scope)

        # HAVING.
        if stmt.having is not None:
            block.having = self._bind_scalar(
                stmt.having, scopes, block, allow_aggregates=True
            )

        # ORDER BY.
        for order in stmt.order_by:
            bound = self._bind_order_key(order.expr, scopes, block)
            block.order_by.append((bound, order.ascending))

        block.distinct = stmt.distinct
        block.limit = stmt.limit
        block.offset = stmt.offset
        self._validate_grouping(block)
        return block

    # ------------------------------------------------------------------
    def _bind_table_ref(self, item, outer_scopes: List[_Scope]) -> Quantifier:
        ref = item.table
        if ref.subquery is not None:
            inner = self._bind_select(ref.subquery, outer_scopes)
            return Quantifier(alias=ref.effective_alias, block=inner)
        name = ref.name
        if self.catalog.has_table(name):
            return Quantifier(alias=ref.effective_alias, table=name)
        if self.catalog.has_view(name):
            view_stmt = parse(self.catalog.view_sql(name))
            inner = self._bind_select(view_stmt, outer_scopes)
            return Quantifier(alias=ref.effective_alias, block=inner)
        raise BindError(f"unknown table or view {name!r}")

    # ------------------------------------------------------------------
    def _bind_where(
        self, where: AstExpr, scopes: List[_Scope], block: QueryBlock
    ) -> None:
        for conjunct in _and_conjuncts(where):
            subquery = self._try_bind_subquery_conjunct(conjunct, scopes, block)
            if subquery is not None:
                block.subqueries.append(subquery)
            else:
                block.predicates.append(self._bind_scalar(conjunct, scopes, block))

    def _try_bind_subquery_conjunct(
        self, conjunct: AstExpr, scopes: List[_Scope], block: QueryBlock
    ) -> Optional[SubqueryPredicate]:
        if isinstance(conjunct, AstInSubquery):
            outer = self._bind_scalar(conjunct.arg, scopes, block)
            inner, correlations = self._bind_subquery(conjunct.subquery, scopes)
            kind = SubqueryKind.NOT_IN if conjunct.negated else SubqueryKind.IN
            return SubqueryPredicate(
                kind, inner, outer_expr=outer, correlations=correlations
            )
        if isinstance(conjunct, AstExists):
            inner, correlations = self._bind_subquery(conjunct.subquery, scopes)
            kind = (
                SubqueryKind.NOT_EXISTS if conjunct.negated else SubqueryKind.EXISTS
            )
            return SubqueryPredicate(kind, inner, correlations=correlations)
        if isinstance(conjunct, AstNot) and isinstance(conjunct.arg, AstExists):
            inner, correlations = self._bind_subquery(conjunct.arg.subquery, scopes)
            kind = (
                SubqueryKind.EXISTS
                if conjunct.arg.negated
                else SubqueryKind.NOT_EXISTS
            )
            return SubqueryPredicate(kind, inner, correlations=correlations)
        if isinstance(conjunct, AstComparison):
            left_sub = isinstance(conjunct.left, AstScalarSubquery)
            right_sub = isinstance(conjunct.right, AstScalarSubquery)
            if left_sub and right_sub:
                raise BindError("comparison of two subqueries is unsupported")
            if left_sub or right_sub:
                op = _COMPARISON_OPS[conjunct.op]
                if left_sub:
                    op = op.flip()
                    outer_ast, sub_ast = conjunct.right, conjunct.left
                else:
                    outer_ast, sub_ast = conjunct.left, conjunct.right
                outer = self._bind_scalar(outer_ast, scopes, block)
                inner, correlations = self._bind_subquery(
                    sub_ast.subquery, scopes
                )
                return SubqueryPredicate(
                    SubqueryKind.SCALAR,
                    inner,
                    outer_expr=outer,
                    comparison=op,
                    correlations=correlations,
                )
        return None

    def _bind_subquery(
        self, stmt: SelectStmt, scopes: List[_Scope]
    ) -> Tuple[QueryBlock, Tuple[ColumnRef, ...]]:
        marker = _CorrelationCollector()
        inner = self._bind_select_with_collector(stmt, scopes, marker)
        return inner, tuple(marker.refs)

    def _bind_select_with_collector(
        self, stmt: SelectStmt, scopes: List[_Scope], marker: "_CorrelationCollector"
    ) -> QueryBlock:
        self._collectors.append(marker)
        try:
            return self._bind_select(stmt, scopes)
        finally:
            self._collectors.pop()

    # ------------------------------------------------------------------
    def _bind_select_items(
        self,
        stmt: SelectStmt,
        scopes: List[_Scope],
        block: QueryBlock,
        scope: _Scope,
    ) -> None:
        used_names: Dict[str, int] = {}

        def unique_name(base: str) -> str:
            if base not in used_names:
                used_names[base] = 1
                return base
            used_names[base] += 1
            return f"{base}_{used_names[base]}"

        for item in stmt.select_items:
            if item.star:
                aliases = (
                    [item.star_qualifier]
                    if item.star_qualifier
                    else list(scope.columns)
                )
                for alias in aliases:
                    if alias not in scope.columns:
                        raise BindError(f"unknown alias {alias!r} in star")
                    for column in scope.columns[alias]:
                        block.select_items.append(
                            ProjectItem(
                                ColumnRef(alias, column),
                                unique_name(column),
                                alias=block.label,
                            )
                        )
                continue
            bound = self._bind_scalar(
                item.expr, scopes, block, allow_aggregates=True
            )
            if item.alias:
                name = item.alias
            elif isinstance(item.expr, AstColumn):
                name = item.expr.name
            elif isinstance(item.expr, AstAggregate) and isinstance(
                bound, ColumnRef
            ):
                name = bound.column
            else:
                name = f"col{len(block.select_items) + 1}"
            block.select_items.append(
                ProjectItem(bound, unique_name(name), alias=block.label)
            )

    def _bind_order_key(
        self, expr: AstExpr, scopes: List[_Scope], block: QueryBlock
    ) -> ColumnRef:
        if isinstance(expr, AstColumn) and expr.qualifier is None:
            for item in block.select_items:
                if item.name == expr.name:
                    return ColumnRef(block.label, item.name)
        bound = self._bind_scalar(expr, scopes, block, allow_aggregates=True)
        if isinstance(bound, ColumnRef):
            # Order keys must survive the projection: prefer the output slot.
            for item in block.select_items:
                if item.expr == bound:
                    return ColumnRef(block.label, item.name)
            return bound
        raise BindError("ORDER BY supports plain columns only")

    # ------------------------------------------------------------------
    def _bind_scalar(
        self,
        expr: AstExpr,
        scopes: List[_Scope],
        block: QueryBlock,
        allow_aggregates: bool = False,
    ) -> Expr:
        if isinstance(expr, AstLiteral):
            return Literal(expr.value)
        if isinstance(expr, AstParam):
            return Param(expr.index)
        if isinstance(expr, AstColumn):
            return self._resolve_column(expr, scopes)
        if isinstance(expr, AstComparison):
            if isinstance(expr.left, AstScalarSubquery) or isinstance(
                expr.right, AstScalarSubquery
            ):
                raise BindError(
                    "scalar subqueries are only supported as top-level "
                    "WHERE conjuncts"
                )
            return Comparison(
                _COMPARISON_OPS[expr.op],
                self._bind_scalar(expr.left, scopes, block, allow_aggregates),
                self._bind_scalar(expr.right, scopes, block, allow_aggregates),
            )
        if isinstance(expr, AstBool):
            op = BoolOp.AND if expr.op == "AND" else BoolOp.OR
            return BoolExpr(
                op,
                [
                    self._bind_scalar(arg, scopes, block, allow_aggregates)
                    for arg in expr.args
                ],
            )
        if isinstance(expr, AstNot):
            return NotExpr(
                self._bind_scalar(expr.arg, scopes, block, allow_aggregates)
            )
        if isinstance(expr, AstArith):
            return Arithmetic(
                _ARITH_OPS[expr.op],
                self._bind_scalar(expr.left, scopes, block, allow_aggregates),
                self._bind_scalar(expr.right, scopes, block, allow_aggregates),
            )
        if isinstance(expr, AstIsNull):
            return IsNull(
                self._bind_scalar(expr.arg, scopes, block, allow_aggregates),
                expr.negated,
            )
        if isinstance(expr, AstBetween):
            arg = self._bind_scalar(expr.arg, scopes, block, allow_aggregates)
            low = self._bind_scalar(expr.low, scopes, block, allow_aggregates)
            high = self._bind_scalar(expr.high, scopes, block, allow_aggregates)
            return BoolExpr(
                BoolOp.AND,
                [
                    Comparison(ComparisonOp.GE, arg, low),
                    Comparison(ComparisonOp.LE, arg, high),
                ],
            )
        if isinstance(expr, AstInList):
            arg = self._bind_scalar(expr.arg, scopes, block, allow_aggregates)
            values = [
                self._bind_scalar(value, scopes, block, allow_aggregates)
                for value in expr.values
            ]
            in_list = InList(arg, values)
            return NotExpr(in_list) if expr.negated else in_list
        if isinstance(expr, AstAggregate):
            if not allow_aggregates:
                raise BindError("aggregate not allowed in this clause")
            return self._bind_aggregate(expr, scopes, block)
        if isinstance(expr, AstFuncCall):
            registration = self.udfs.get(expr.name.lower())
            if registration is None:
                raise BindError(f"unknown function {expr.name!r}")
            args = [
                self._bind_scalar(arg, scopes, block, allow_aggregates)
                for arg in expr.args
            ]
            return UdfCall(
                expr.name,
                args,
                per_tuple_cost=registration.per_tuple_cost,
                selectivity=registration.selectivity,
                fn=registration.fn,
            )
        raise BindError(f"unsupported expression {type(expr).__name__}")

    def _bind_aggregate(
        self, expr: AstAggregate, scopes: List[_Scope], block: QueryBlock
    ) -> ColumnRef:
        arg = (
            self._bind_scalar(expr.arg, scopes, block)
            if expr.arg is not None
            else None
        )
        call = AggregateCall(AggFunc[expr.func], arg, distinct=expr.distinct)
        for existing in block.aggregates:
            if (
                existing.func is call.func
                and existing.arg == call.arg
                and existing.distinct == call.distinct
            ):
                return ColumnRef(block.label, existing.alias)
        block.aggregates.append(call)
        return ColumnRef(block.label, call.alias)

    def _resolve_column(
        self, expr: AstColumn, scopes: List[_Scope]
    ) -> ColumnRef:
        local = scopes[-1]
        resolved = local.resolve(expr.qualifier, expr.name)
        if resolved is not None:
            return resolved
        # Correlated reference: search enclosing scopes outermost-last.
        for depth, scope in enumerate(reversed(scopes[:-1])):
            resolved = scope.resolve(expr.qualifier, expr.name)
            if resolved is not None:
                if self._collectors:
                    self._collectors[-1].refs.append(resolved)
                return resolved
        rendered = (
            f"{expr.qualifier}.{expr.name}" if expr.qualifier else expr.name
        )
        raise BindError(f"cannot resolve column {rendered!r}")

    # ------------------------------------------------------------------
    def _validate_grouping(self, block: QueryBlock) -> None:
        if not block.has_grouping:
            return
        key_set = set(block.group_keys)
        for item in block.select_items:
            for ref in item.expr.columns():
                if ref.table == block.label:
                    continue  # aggregate output
                if ref not in key_set:
                    raise BindError(
                        f"column {ref.to_sql()} must appear in GROUP BY or "
                        "inside an aggregate"
                    )


class _CorrelationCollector:
    """Accumulates the outer-scope references found while binding a block."""

    def __init__(self) -> None:
        self.refs: List[ColumnRef] = []
