"""Quickstart: create a database, load data, run SQL, inspect the plan.

Run:  python examples/quickstart.py
"""

from repro import Database
from repro.datagen import build_emp_dept


def main() -> None:
    # 1. A database bundles a catalog, an optimizer, and an executor.
    db = Database()

    # 2. Load the paper's running example: Emp and Dept, with indexes.
    build_emp_dept(db.catalog, emp_rows=2_000, dept_rows=100)

    # 3. Collect statistics (histograms included) -- the optimizer is
    #    only as good as its estimates (paper Section 5).
    db.analyze()

    # 4. Run a select-project-join query.
    result = db.sql(
        "SELECT E.name, E.sal, D.name AS dept "
        "FROM Emp E, Dept D "
        "WHERE E.dept_no = D.dept_no AND E.sal > 120000 AND D.loc = 'Denver' "
        "ORDER BY E.sal DESC"
    )
    print(f"-- {len(result)} well-paid Denver employees; first three:")
    for row in result.rows[:3]:
        print("  ", row)

    # 5. Inspect the physical plan the optimizer chose (Figure 1's
    #    operator tree, annotated with estimated rows and cost).
    print("\n-- chosen plan:")
    print(result.plan.explain())

    # 6. The executor measured its actual work through a simulated
    #    buffer pool -- compare with the estimates above.
    counters = result.context.counters
    print(
        f"\n-- observed work: {counters.total_page_reads} page reads "
        f"({result.context.buffer_pool.hit_ratio:.0%} buffer hits), "
        f"{counters.rows_compared} comparisons"
    )

    # 7. A nested query: the rewrite engine unnests it (Section 4.2.2);
    #    the trace shows which transformations fired.
    nested = db.sql(
        "SELECT E.name FROM Emp E WHERE E.sal > "
        "(SELECT AVG(E2.sal) FROM Emp E2 WHERE E2.dept_no = E.dept_no)"
    )
    print(f"\n-- {len(nested)} employees above their department average")
    print(f"-- rewrites applied: {nested.rewrite_trace}")


if __name__ == "__main__":
    main()
