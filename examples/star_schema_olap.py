"""Decision-support workload on a star schema (paper Section 4.1.1).

Demonstrates the OLAP-flavoured optimizations the paper motivates:

* the join enumerator's search-space knobs (linear vs bushy trees,
  deferred vs early Cartesian products) on a star-shaped query graph;
* group-by pushdown cutting the cost of an aggregate star join;
* materialized summary views answering aggregate queries transparently.

Run:  python examples/star_schema_olap.py
"""

from repro import Database, EnumeratorConfig
from repro.core.matviews import create_materialized_view, optimize_with_views
from repro.core.systemr import SystemRJoinEnumerator
from repro.datagen import build_star_schema, graph_stats, sales_star_query_graph


def main() -> None:
    db = Database()
    build_star_schema(
        db.catalog, fact_rows=20_000, dimension_count=3, dimension_rows=50
    )
    db.analyze()

    # ------------------------------------------------------------------
    # 1. Search-space knobs on the star join (Section 4.1.1).
    # ------------------------------------------------------------------
    graph = sales_star_query_graph(3)
    stats = graph_stats(db.catalog, graph)
    print("-- star-join enumeration under different search spaces:")
    for label, config in [
        ("linear, deferred cartesian", EnumeratorConfig()),
        ("bushy", EnumeratorConfig(bushy=True)),
        ("bushy + cartesian", EnumeratorConfig(bushy=True, allow_cartesian=True)),
    ]:
        enumerator = SystemRJoinEnumerator(
            db.catalog, graph, stats, db.params, config
        )
        _plan, cost = enumerator.best_plan()
        print(
            f"   {label:28s} plans={enumerator.stats.plans_considered:5d} "
            f"best_cost={cost.total:10.1f}"
        )

    # ------------------------------------------------------------------
    # 2. An aggregate star query: the rewrite engine decides (cost-based)
    #    whether to push the group-by below the join (Section 4.1.3).
    # ------------------------------------------------------------------
    sql = (
        "SELECT D.category, SUM(S.amount), COUNT(*) "
        "FROM Sales S, Dim1 D WHERE S.d1_id = D.id "
        "GROUP BY D.category"
    )
    result = db.sql(sql)
    print(f"\n-- revenue by Dim1 category ({len(result)} groups):")
    for row in sorted(result.rows):
        print(f"   {row[0]:8s} amount={row[1]:12.2f} sales={row[2]}")
    print(f"   rewrites applied: {result.rewrite_trace}")

    # ------------------------------------------------------------------
    # 3. Materialized summary view (Section 7.3): the same query answered
    #    from a precomputed aggregate at a finer granularity.
    # ------------------------------------------------------------------
    create_materialized_view(
        db.catalog,
        "sales_by_d1",
        "SELECT S.d1_id AS d1, SUM(S.amount) AS total, COUNT(*) AS cnt "
        "FROM Sales S GROUP BY S.d1_id",
    )
    optimizer = db.optimizer()
    question = "SELECT S.d1_id, SUM(S.amount) FROM Sales S GROUP BY S.d1_id"
    plain = optimizer.optimize(question)
    best, used = optimize_with_views(optimizer, question)
    print("\n-- materialized view usage (cost-based):")
    print(f"   without views: est cost {plain.physical.est_cost.total:10.1f}")
    print(
        f"   with views:    est cost {best.physical.est_cost.total:10.1f} "
        f"(uses {used.name if used else 'no view'})"
    )


if __name__ == "__main__":
    main()
