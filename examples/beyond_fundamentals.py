"""The paper's Section 7 extensions, end to end.

* parametric plans: a plan diagram over a runtime parameter and what a
  static plan costs when the parameter moves (Section 7.4);
* expensive user-defined predicates placed by rank (Section 7.2);
* a two-site distributed join choosing between shipping the relation
  and a semijoin program (Section 7.1);
* the CUBE operator computed by rollup (Section 7.4, [24]).

Run:  python examples/beyond_fundamentals.py
"""

import random

from repro import Database
from repro.catalog import Catalog, Column, ColumnType
from repro.core.cube import ALL, compute_cube_rollup
from repro.core.distributed import TwoSiteJoin
from repro.core.parametric import ParameterMarker, ParametricOptimizer
from repro.cost import CostParameters
from repro.datagen import build_emp_dept, graph_stats
from repro.expr import (
    AggFunc,
    AggregateCall,
    Comparison,
    ComparisonOp,
    col,
    lit,
)
from repro.logical.querygraph import QueryGraph
from repro.stats import analyze_table


def parametric_demo() -> None:
    print("=" * 72)
    print("-- parametric plans (Section 7.4)")
    catalog = Catalog()
    rng = random.Random(7)
    fact = catalog.create_table(
        "Fact", [Column("k", ColumnType.INT), Column("v", ColumnType.INT)]
    )
    for _ in range(10_000):
        fact.insert((rng.randint(1, 50), rng.randint(1, 10_000)))
    catalog.create_index("idx_v", "Fact", ["v"])
    small = catalog.create_table("Small", [Column("k", ColumnType.INT)])
    for k in range(1, 51):
        small.insert((k,))
    analyze_table(catalog, "Fact")
    analyze_table(catalog, "Small")

    def build_graph(value):
        graph = QueryGraph()
        graph.add_relation("F", "Fact")
        graph.add_relation("S", "Small")
        graph.add_predicate(
            Comparison(ComparisonOp.EQ, col("F", "k"), col("S", "k"))
        )
        graph.add_predicate(
            Comparison(ComparisonOp.LT, col("F", "v"), lit(value))
        )
        return graph

    optimizer = ParametricOptimizer(
        catalog,
        build_graph,
        graph_stats(catalog, build_graph(5000)),
        ParameterMarker(col("F", "v"), ComparisonOp.LT),
        params=CostParameters(buffer_pool_pages=8),
    )
    diagram = optimizer.plan_diagram([50, 500, 2000, 6000, 9500])
    print(f"   plan diagram: {len(diagram.regions)} regions, "
          f"{diagram.distinct_plans} distinct plans")
    for region in diagram.regions:
        root = type(region.plan).__name__
        print(f"   v in [{region.low}, {region.high}] -> {root}")
    regrets = optimizer.static_regret(50, [50, 9500])
    print(f"   static plan (anchored at 50) vs optimum at v=9500: "
          f"{regrets[1][1]:.0f} vs {regrets[1][2]:.0f} observed cost")


def udf_demo() -> None:
    print("=" * 72)
    print("-- expensive predicates (Section 7.2)")
    db = Database()
    build_emp_dept(db.catalog, emp_rows=2_000, dept_rows=50)
    db.analyze()
    db.register_udf("face_match", lambda v: v is not None and v % 3 == 0,
                    per_tuple_cost=800.0, selectivity=0.33)
    db.register_udf("cheap_flag", lambda v: v is not None and v % 2 == 0,
                    per_tuple_cost=5.0, selectivity=0.5)
    result = db.sql(
        "SELECT name FROM Emp WHERE face_match(emp_no) AND cheap_flag(emp_no)"
    )
    print(f"   {len(result)} rows; "
          f"{result.context.counters.udf_invocations} UDF invocations")
    print("   plan (cheap/selective predicate runs first):")
    for line in result.plan.explain().splitlines()[:3]:
        print(f"   {line}")


def distributed_demo() -> None:
    print("=" * 72)
    print("-- distributed join strategies (Section 7.1)")
    catalog = Catalog()
    rng = random.Random(9)
    r = catalog.create_table(
        "R", [Column("k", ColumnType.INT), Column("p", ColumnType.STR)]
    )
    for _ in range(300):
        r.insert((rng.randint(1, 40), "r" * 8))
    s = catalog.create_table(
        "S", [Column("k", ColumnType.INT), Column("p", ColumnType.STR)]
    )
    for _ in range(8_000):
        s.insert((rng.randint(1, 8_000), "s" * 8))
    for label, comm in (("fast network", 0.05), ("slow network", 25.0)):
        join = TwoSiteJoin(
            catalog, "R", "S", "k", "k",
            params=CostParameters(comm_cost_per_page=comm),
        )
        ship, semi = join.compare()
        best = join.best()
        print(f"   {label:14s} ship={ship.total:8.1f}  semi={semi.total:8.1f}"
              f"  -> {best.strategy}")


def cube_demo() -> None:
    print("=" * 72)
    print("-- the CUBE operator (Section 7.4)")
    catalog = Catalog()
    rng = random.Random(11)
    table = catalog.create_table(
        "Sales",
        [Column("region", ColumnType.INT), Column("quarter", ColumnType.INT),
         Column("amount", ColumnType.INT)],
    )
    for _ in range(5_000):
        table.insert((rng.randint(1, 3), rng.randint(1, 4),
                      rng.randint(1, 100)))
    cube = compute_cube_rollup(
        catalog, "Sales", ["region", "quarter"],
        [AggregateCall(AggFunc.SUM, col("Sales", "amount"), alias="total")],
    )
    print(f"   {len(cube.rows)} cube rows from 5000 base rows "
          f"({cube.work_rows} rows of work)")
    grand = cube.slice()[0]
    print(f"   grand total (ALL, ALL): {grand[2]}")
    for row in sorted(cube.slice(region=2)):
        print(f"   region 2 subtotal: {row}")


if __name__ == "__main__":
    parametric_demo()
    udf_demo()
    distributed_demo()
    cube_demo()
