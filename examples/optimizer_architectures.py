"""One query through three optimizer architectures (paper Sections 3, 6).

The same five-way chain join is optimized by:

* the System-R bottom-up DP enumerator (linear and bushy spaces),
* the naive exhaustive enumerator (the O(n!) baseline),
* the Cascades-style top-down memoized search.

All find the same optimal cost; the point is *how much work* each does
-- the engineering trade-off Section 6 is about.

Run:  python examples/optimizer_architectures.py
"""

import time

from repro.catalog import Catalog
from repro.core.cascades import CascadesConfig, CascadesOptimizer
from repro.core.systemr import (
    EnumeratorConfig,
    NaiveExhaustiveEnumerator,
    SystemRJoinEnumerator,
)
from repro.datagen import build_chain_tables, chain_query_graph, graph_stats


def main() -> None:
    catalog = Catalog()
    names = build_chain_tables(catalog, 5, rows_per_relation=120)
    graph = chain_query_graph(names)
    stats = graph_stats(catalog, graph)
    print(f"-- query graph: {graph}")

    results = []

    start = time.perf_counter()
    linear = SystemRJoinEnumerator(catalog, graph, stats)
    _plan_linear, cost_linear = linear.best_plan()
    results.append(
        ("System-R DP (linear)", linear.stats.plans_considered,
         cost_linear.total, time.perf_counter() - start)
    )

    start = time.perf_counter()
    bushy = SystemRJoinEnumerator(
        catalog, graph, stats, config=EnumeratorConfig(bushy=True)
    )
    bushy_plan, cost_bushy = bushy.best_plan()
    results.append(
        ("System-R DP (bushy)", bushy.stats.plans_considered,
         cost_bushy.total, time.perf_counter() - start)
    )

    start = time.perf_counter()
    naive = NaiveExhaustiveEnumerator(
        catalog, graph, stats, allow_cartesian=False
    )
    naive_cost = naive.best_cost()
    results.append(
        ("naive exhaustive (linear)", naive.stats.plans_considered,
         naive_cost, time.perf_counter() - start)
    )

    start = time.perf_counter()
    cascades = CascadesOptimizer(catalog, graph, stats)
    cascades_plan, cascades_cost = cascades.best_plan()
    results.append(
        ("Cascades (top-down memo)",
         cascades.stats.implementation_rules_fired,
         cascades_cost.total, time.perf_counter() - start)
    )

    print(f"\n{'architecture':28s} {'plans':>8s} {'best cost':>12s} {'ms':>8s}")
    for label, plans, cost, seconds in results:
        print(f"{label:28s} {plans:8d} {cost:12.1f} {seconds * 1000:8.1f}")

    print(
        f"\n-- cascades memo: {cascades.stats.groups} groups, "
        f"{cascades.stats.mexprs} multi-expressions, "
        f"{cascades.stats.memo_hits} memo hits, "
        f"{cascades.stats.pruned_by_bound} plans pruned by bound"
    )
    print("\n-- the plan every cost-equivalent search converges to:")
    print(cascades_plan.explain())


if __name__ == "__main__":
    main()
