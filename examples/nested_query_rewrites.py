"""The paper's Section 4.2 / 4.3 nested queries, rewritten step by step.

Shows the QGM block structure, the naive (tuple-iteration) logical
tree, the decorrelated tree the rewrite engine produces, and the work
each form performs.

Run:  python examples/nested_query_rewrites.py
"""

from repro import Database
from repro.core.rewrite import RewriteContext, default_rule_engine
from repro.datagen import build_emp_dept
from repro.engine import InterpreterStats, interpret
from repro.logical.lower import lower_block
from repro.sql import Binder

QUERIES = {
    "correlated IN (Kim/Dayal flattening)": (
        "SELECT Emp.name FROM Emp WHERE Emp.dept_no IN "
        "(SELECT Dept.dept_no FROM Dept WHERE Dept.loc = 'Denver' "
        "AND Emp.emp_no = Dept.mgr)"
    ),
    "correlated COUNT (outerjoin + group-by)": (
        "SELECT D.name FROM Dept D WHERE D.num_machines >= "
        "(SELECT COUNT(*) FROM Emp E WHERE D.dept_no = E.dept_no)"
    ),
    "uncorrelated scalar (evaluate once)": (
        "SELECT name FROM Emp WHERE sal > (SELECT AVG(sal) FROM Emp)"
    ),
}


def main() -> None:
    db = Database()
    build_emp_dept(db.catalog, emp_rows=500, dept_rows=50)
    db.analyze()
    binder = Binder(db.catalog)

    for title, sql in QUERIES.items():
        print("=" * 72)
        print(f"-- {title}")
        print(f"   {sql}")

        block = binder.bind_sql(sql)
        print(f"\n   QGM: {block.count_blocks()} blocks")
        for subquery in block.subqueries:
            print(f"   subquery predicate: {subquery.describe()}")

        naive_tree = lower_block(block, db.catalog)
        naive_stats = InterpreterStats()
        _schema, naive_rows = interpret(naive_tree, db.catalog, naive_stats)

        context = RewriteContext(catalog=db.catalog)
        rewritten = default_rule_engine().rewrite(naive_tree, context)
        rewritten_stats = InterpreterStats()
        _schema, rewritten_rows = interpret(
            rewritten, db.catalog, rewritten_stats
        )

        print(f"\n   rewrites fired: {context.trace}")
        print("\n   rewritten logical tree:")
        for line in rewritten.explain(indent=2).splitlines()[:8]:
            print(f"  {line}")
        print(
            f"\n   tuple iteration: {naive_stats.inner_evaluations} inner "
            f"evaluations, {naive_stats.rows_produced} rows of work"
        )
        print(
            f"   after rewriting: {rewritten_stats.inner_evaluations} inner "
            f"evaluations, {rewritten_stats.rows_produced} rows of work"
        )
        assert sorted(naive_rows) == sorted(rewritten_rows)
        print(f"   identical results: {len(naive_rows)} rows\n")


if __name__ == "__main__":
    main()
